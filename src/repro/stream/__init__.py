"""Streaming ingestion subsystem: online, shardable LDP aggregation.

The one-shot reproduction harness runs each protocol as a single batch;
this subpackage converts aggregation into an online system:

* :mod:`~repro.stream.accumulators` — mergeable per-mechanism support
  accumulators (``ingest_batch`` / associative ``merge``), built from any
  oracle via ``mechanism.accumulator()``.
* :mod:`~repro.stream.sharding` — :class:`ShardedAggregator`, fanning
  batches across worker shards and merging partial states.
* :mod:`~repro.stream.session` — :class:`OnlineFrameworkSession` per
  framework (HEC / PTJ / PTS / PTS-CP): ingest ``(labels, items)``
  batches, query ``estimate()`` / ``topk(k)`` at any time, merge across
  shards, checkpoint to ``.npz``.
* :mod:`~repro.stream.topk_session` — :class:`OnlineTopKSession`, the
  incremental top-k miner: ingest users round-by-round against a
  per-class candidate frontier, query per-class top-k mid-stream.
* :mod:`~repro.stream.drain` — drain adapters giving ingestion
  front-ends (e.g. the :mod:`repro.serve` collector) one submit / drain /
  snapshot interface over sharded sessions and the top-k miner, with an
  optional decayed-ingest hook and a replayable drain log.
* :mod:`~repro.stream.checkpoint` — the plain-data ``.npz`` state format.

Quickstart::

    import numpy as np
    from repro.stream import make_session

    session = make_session("pts-cp", epsilon=2.0, n_classes=3, n_items=50,
                           rng=np.random.default_rng(7))
    for labels, items in batches:          # any batch split
        session.ingest_batch(labels, items)
        partial = session.estimate()       # query mid-stream
    top = session.topk(10)
    session.save("checkpoint.npz")
"""

from .accumulators import (
    ACCUMULATORS,
    BitVectorAccumulator,
    CorrelatedAccumulator,
    CountAccumulator,
    FlagFilteredAccumulator,
    HadamardAccumulator,
    LocalHashAccumulator,
    SupportAccumulator,
    accumulator_for,
)
from .checkpoint import load_state, save_state
from .drain import (
    DECAY_EVENT,
    AggregatorDrain,
    BatchDrain,
    SessionDrain,
    replay_drain_log,
)
from .drift import DriftDetector, DriftReport
from .session import (
    SESSIONS,
    OnlineFrameworkSession,
    OnlineHEC,
    OnlinePTJ,
    OnlinePTS,
    OnlinePTSCP,
    make_session,
)
from .sharding import ShardedAggregator, default_shard_count
from .topk_session import OnlineTopKSession
from .window import WindowPolicy

__all__ = [
    "ACCUMULATORS",
    "AggregatorDrain",
    "BatchDrain",
    "BitVectorAccumulator",
    "CorrelatedAccumulator",
    "CountAccumulator",
    "DECAY_EVENT",
    "DriftDetector",
    "DriftReport",
    "FlagFilteredAccumulator",
    "HadamardAccumulator",
    "LocalHashAccumulator",
    "OnlineFrameworkSession",
    "OnlineHEC",
    "OnlinePTJ",
    "OnlinePTS",
    "OnlinePTSCP",
    "OnlineTopKSession",
    "SESSIONS",
    "SessionDrain",
    "ShardedAggregator",
    "SupportAccumulator",
    "WindowPolicy",
    "accumulator_for",
    "default_shard_count",
    "load_state",
    "make_session",
    "replay_drain_log",
    "save_state",
]
