"""Zero-copy shared-memory batch transport for process-mode sharding.

Process-mode :class:`~repro.stream.sharding.ShardedAggregator` workers
live in separate interpreters, so report batches have to cross a process
boundary somehow.  Pickling them through a pipe copies every array twice
(serialise, deserialise); this module instead packs all of a drain's
ndarray payloads into one :class:`multiprocessing.shared_memory.SharedMemory`
segment and ships only a tiny *manifest* — offsets, dtypes and shapes —
over the pipe.  The worker maps the same segment and reconstructs the
batches as zero-copy views onto it.

The packed layout is described by a tree of descriptor nodes, one per
batch:

``("array", offset, dtype, shape)``
    An ndarray leaf living in the segment at ``offset``.
``("tuple", [child, ...])``
    A tuple batch (sessions take ``(labels, items)``, the OLH accumulator
    ``(a, b, report)`` columns) whose leaves are described recursively.
``("pickle", payload)``
    Anything that is not an ndarray, pickled inline in the manifest.
    Only non-array batches (e.g. plain lists of reports) take this path —
    ndarrays never travel pickled.

Segment lifecycle: the parent creates, fills, sends the name, and
unlinks after the worker's reply; the worker attaches, ingests the views
and closes its mapping before replying.  On Python < 3.13 attaching
registers the segment with the ``resource_tracker`` as if the worker
owned it — :func:`attach_batches` suppresses that registration so
ownership (and unlinking) stays with the parent.
"""

from __future__ import annotations

import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Sequence

import numpy as np

#: Alignment of every array leaf inside the segment (cache-line sized,
#: comfortably above any NumPy dtype's alignment requirement).
ALIGNMENT = 64

_SUPPORTED: Optional[bool] = None


def shm_supported() -> bool:
    """Whether POSIX shared memory actually works on this host.

    Containers occasionally run without a usable ``/dev/shm``; the probe
    result is cached for the life of the process.
    """
    global _SUPPORTED
    if _SUPPORTED is None:
        try:
            segment = shared_memory.SharedMemory(create=True, size=1)
            segment.close()
            segment.unlink()
            _SUPPORTED = True
        except OSError:
            _SUPPORTED = False
    return _SUPPORTED


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def pack_batches(batches: Sequence) -> tuple:
    """Pack ``batches`` into ``(segment, manifest)``.

    ``segment`` is a freshly created shared-memory block holding every
    ndarray leaf back to back (``None`` when no batch contains an array —
    the manifest is then self-contained).  The caller owns the segment:
    close and unlink it once the consumer has replied.
    """
    leaves: list[tuple[int, np.ndarray]] = []
    cursor = 0

    def describe(obj):
        nonlocal cursor
        if isinstance(obj, np.ndarray):
            arr = np.ascontiguousarray(obj)
            start = _align(cursor)
            cursor = start + arr.nbytes
            leaves.append((start, arr))
            return ("array", start, arr.dtype.str, arr.shape)
        if isinstance(obj, tuple):
            return ("tuple", [describe(element) for element in obj])
        return ("pickle", pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    manifest = [describe(batch) for batch in batches]
    if cursor == 0:
        return None, manifest
    segment = shared_memory.SharedMemory(create=True, size=cursor)
    for start, arr in leaves:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=start)
        view[...] = arr
    return segment, manifest


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    Ownership (and unlinking) stays with the creating process.  On
    Python >= 3.13 ``track=False`` says exactly that; earlier versions
    register unconditionally on attach — under ``fork`` the consumer
    shares the creator's tracker, so an ``unregister`` after the fact
    would revoke the *creator's* registration, and under ``spawn`` the
    consumer's own tracker would unlink the live segment when the
    consumer exits.  Suppressing the registration call during attach is
    correct for both.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13: no track parameter
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_batches(name: Optional[str], manifest: list) -> tuple:
    """Rebuild batches from a manifest as ``(segment, batches)``.

    Array leaves come back as zero-copy views onto the attached segment;
    the caller must drop every view before closing the segment (a live
    view pins the underlying mapping).  ``segment`` is ``None`` when the
    manifest carried no arrays.
    """
    segment = _attach_untracked(name) if name is not None else None

    def rebuild(node):
        kind = node[0]
        if kind == "array":
            _, offset, dtype, shape = node
            return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        if kind == "tuple":
            return tuple(rebuild(child) for child in node[1])
        return pickle.loads(node[1])

    return segment, [rebuild(node) for node in manifest]


def manifest_nbytes(segment) -> int:
    """Bytes shipped through the segment (0 when no arrays travelled)."""
    return int(segment.size) if segment is not None else 0


def release(segment, *, unlink: bool) -> None:
    """Close (and optionally unlink) a segment, tolerating pinned buffers.

    A consumer that failed mid-ingest may still hold views; ``close``
    then raises :class:`BufferError`.  The mapping is released when the
    process exits anyway, so swallow it rather than masking the original
    ingest error.
    """
    if segment is None:
        return
    try:
        segment.close()
    except BufferError:  # pragma: no cover - views still alive
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
