"""Sliding-window serving policy over the decayed-ingest hook.

The drain adapters' decay hook (:mod:`repro.stream.drain`) ages the
underlying state by ``decay`` every ``decay_every`` ingested reports —
a geometric forgetting schedule.  Operators, however, think in *window
lengths*: "estimates should reflect roughly the last W reports".
:class:`WindowPolicy` maps between the two.

With period length ``E = decay_every`` and factor ``γ = decay``, a
report that is ``k`` periods old carries weight ``γ^k``, so just before
a decay tick the total retained mass is

    ``E (1 + γ + γ² + …) = E / (1 - γ)``.

Setting that equal to the target window ``W`` gives ``γ = 1 - E / W``:
the effective cohort size oscillates between ``W - E`` (right after a
tick) and ``W`` (right before one), so smaller ``E`` tracks the target
more tightly at the cost of more frequent (cheap) decay passes.  The
default period is ``W // 8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

#: Default number of decay periods per window (``decay_every = window // 8``).
PERIODS_PER_WINDOW = 8


@dataclass(frozen=True)
class WindowPolicy:
    """A target sliding window expressed as decay-hook knobs.

    ``window`` is the target effective cohort size in reports;
    ``decay_every`` the number of ingested reports between decay ticks.
    """

    window: int
    decay_every: int

    def __post_init__(self) -> None:
        window = int(self.window)
        every = int(self.decay_every)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2 reports, got {window}")
        if not 1 <= every < window:
            raise ConfigurationError(
                f"decay_every must be in [1, window), got {every} "
                f"for window {window}"
            )
        object.__setattr__(self, "window", window)
        object.__setattr__(self, "decay_every", every)

    @classmethod
    def from_window(
        cls, window: int, decay_every: Optional[int] = None
    ) -> "WindowPolicy":
        """Policy for a target ``window``; the decay period defaults to
        ``window // PERIODS_PER_WINDOW`` (at least 1)."""
        window = int(window)
        if decay_every is None:
            decay_every = max(1, window // PERIODS_PER_WINDOW)
        return cls(window=window, decay_every=int(decay_every))

    @property
    def decay(self) -> float:
        """Geometric factor ``γ = 1 - decay_every / window``."""
        return 1.0 - self.decay_every / self.window

    def knobs(self) -> tuple[float, int]:
        """The ``(decay, decay_every)`` pair the drain adapters take."""
        return self.decay, self.decay_every

    def effective_size(self) -> float:
        """Steady-state retained mass just before a decay tick
        (``decay_every / (1 - decay)`` — equals ``window`` by design)."""
        return self.decay_every / (1.0 - self.decay)
