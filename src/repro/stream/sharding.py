"""Shard-parallel batch ingestion with mergeable partial states.

A :class:`ShardedAggregator` owns ``n_shards`` independent aggregation
states — anything exposing ``ingest_batch`` and ``merge``, i.e. a
:class:`~repro.stream.accumulators.SupportAccumulator` or an
:class:`~repro.stream.session.OnlineFrameworkSession` — and fans
submitted batches across them round-robin.  Each shard is served by its
own single-worker executor, so batches bound for one shard execute in
submission order (keeping per-shard RNG streams deterministic) while
different shards ingest concurrently.  ``merged()`` reduces the partial
states with ``merge``; because merging is associative and commutative,
the result is independent of how batches were distributed.

Because support counts are additive, sharded ingestion of a report set
equals single-state ingestion of the same set *exactly* for protocol-mode
reports, and in distribution for simulate-mode sessions (each shard draws
from its own stream).

Two executors are available.  ``executor="thread"`` (default) serves each
shard from its own single-worker thread — cheap hand-off, shared memory,
concurrency bounded by the GIL outside NumPy kernels (and not at all
under a GIL-free kernel backend).  ``executor="process"`` keeps one
*persistent* worker process per shard: the shard state ships to its
worker once, stays resident there across drains, and only queued batches
cross the process boundary at :meth:`ShardedAggregator.drain` time.  How
they cross is the *transport*: ``"shm"`` (default where supported) packs
each drain's report arrays into one shared-memory segment per shard and
sends only a descriptor manifest over the pipe — the worker ingests
zero-copy views, nothing is pickled per report — while ``"pickle"``
falls back to serialising batches through the pipe.  Snapshots of the
resident states are pickled back only on demand (:meth:`partials`,
:meth:`merged`, :meth:`close`), never per drain.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ThreadPoolExecutor
from functools import reduce
from typing import Callable, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs
from . import shm as _shm

#: Anything shard-shaped: ingest_batch(batch) + merge(other).
Mergeable = object
ShardFactory = Callable[[], Mergeable]

#: The two batch executors.
EXECUTORS = ("thread", "process")

#: Process-mode batch transports (``"auto"`` resolves at construction).
TRANSPORTS = ("auto", "shm", "pickle")


def default_shard_count() -> int:
    """Shards used when the caller does not choose: one per CPU, capped."""
    return max(1, min(8, os.cpu_count() or 1))


def resolve_transport(transport: Optional[str]) -> str:
    """Effective process-mode transport for a requested name.

    ``None``/``"auto"`` picks shared memory when the host supports it and
    degrades to pickle quietly; an explicit ``"shm"`` on a host without
    usable shared memory is a configuration error.
    """
    requested = "auto" if transport is None else str(transport)
    if requested not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if requested == "auto":
        return "shm" if _shm.shm_supported() else "pickle"
    if requested == "shm" and not _shm.shm_supported():
        raise ConfigurationError(
            "transport='shm' requested but shared memory is unavailable"
        )
    return requested


def _shard_worker_main(connection, state) -> None:
    """Persistent shard worker: hold ``state`` resident, serve commands.

    Commands arrive as tuples on ``connection``:

    ``("ingest", "shm", (segment_name, manifest))`` /
    ``("ingest", "pickle", batches)``
        Replay the batches into the state in order.  Ingestion runs
        against a ``copy()`` that only replaces the resident state when
        *every* batch succeeds, so a failed drain leaves the shard
        exactly as it was (all-or-nothing, matching the old pool
        semantics where a failed worker's state never came back).
    ``("snapshot",)``
        Reply with the resident state (the one place states are pickled).
    ``("stop",)``
        Acknowledge and exit.

    Replies are ``("ok", payload)`` or ``("error", exception)``.
    """
    while True:
        command = connection.recv()
        kind = command[0]
        if kind == "stop":
            connection.send(("ok", None))
            return
        if kind == "snapshot":
            connection.send(("ok", state))
            continue
        # kind == "ingest"
        transport, payload = command[1], command[2]
        segment = None
        try:
            if transport == "shm":
                name, manifest = payload
                segment, batches = _shm.attach_batches(name, manifest)
            else:
                batches = payload
            work = state.copy()
            sizes = [int(work.ingest_batch(batch) or 0) for batch in batches]
            del batches  # drop the views before unmapping the segment
            state = work
            connection.send(("ok", sizes))
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            connection.send(("error", error))
        finally:
            _shm.release(segment, unlink=False)


class _ShardWorker:
    """Parent-side handle on one persistent shard worker process."""

    def __init__(self, state, transport: str) -> None:
        self.transport = transport
        context = multiprocessing.get_context()
        self._connection, child_connection = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_connection, state),
            daemon=True,
        )
        self._process.start()
        child_connection.close()

    def send_ingest(self, batches):
        """Ship ``batches`` to the worker; returns the in-flight segment
        (``None`` on the pickle transport) for :meth:`recv_ingest`."""
        if self.transport == "shm":
            segment, manifest = _shm.pack_batches(batches)
            name = segment.name if segment is not None else None
            try:
                self._connection.send(("ingest", "shm", (name, manifest)))
            except BaseException:
                _shm.release(segment, unlink=True)
                raise
            return segment
        self._connection.send(("ingest", "pickle", batches))
        return None

    def recv_ingest(self, segment) -> list[int]:
        """Collect the per-batch sizes for a :meth:`send_ingest`; always
        releases (and unlinks) the in-flight segment."""
        try:
            return self._recv()
        finally:
            _shm.release(segment, unlink=True)

    def snapshot(self):
        """The worker's resident state, pickled back on demand."""
        self._connection.send(("snapshot",))
        return self._recv()

    def stop(self) -> None:
        try:
            self._connection.send(("stop",))
            self._recv()
        except (BrokenPipeError, EOFError, OSError):  # already gone
            pass
        self._process.join(timeout=10)
        self._connection.close()

    def _recv(self):
        try:
            status, payload = self._connection.recv()
        except EOFError:
            raise RuntimeError("shard worker process terminated unexpectedly")
        if status == "error":
            raise payload
        return payload


class _DeferredFuture(Future):
    """Future resolved by the aggregator's next drain.

    Process-mode batches only ship at :meth:`ShardedAggregator.drain`
    time; waiting on the future before that would deadlock, so
    ``result``/``exception`` trigger the drain themselves, keeping the
    thread-mode contract (``submit(...).result()`` just works).
    """

    def __init__(self, drain) -> None:
        super().__init__()
        self._drain = drain

    def _drain_resolving(self) -> None:
        """Run the drain; if it fails before resolving this future (broken
        worker, another shard's error), park the failure here so waiting
        neither deadlocks nor raises an unrelated shard's exception."""
        try:
            self._drain()
        except BaseException as error:  # noqa: BLE001 - parked on the future
            if not self.done():
                self.set_exception(error)

    def result(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().result(timeout)

    def exception(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().exception(timeout)


class ShardedAggregator:
    """Fan report batches across worker shards and merge their states.

    Parameters
    ----------
    shards:
        Either a sequence of pre-built shard states (e.g. sessions seeded
        with independent generators via :func:`repro.rng.spawn`) or a
        zero-argument factory called ``n_shards`` times.
    n_shards:
        Number of shards when ``shards`` is a factory; ignored (and
        validated) otherwise.  Defaults to :func:`default_shard_count`.
    executor:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring.  Process mode requires picklable shard states (every
        accumulator and session qualifies) and defers actual ingestion to
        :meth:`drain`.
    transport:
        Process-mode batch transport: ``"shm"`` (zero-copy shared-memory
        views), ``"pickle"``, or ``"auto"``/``None`` (shared memory when
        the host supports it).  Thread mode shares one address space and
        accepts only the default.

    Use as a context manager (or call :meth:`close`) to release the
    workers.
    """

    def __init__(
        self,
        shards: Union[Sequence[Mergeable], ShardFactory],
        n_shards: Optional[int] = None,
        executor: str = "thread",
        transport: Optional[str] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if callable(shards):
            count = default_shard_count() if n_shards is None else int(n_shards)
            if count < 1:
                raise ConfigurationError(f"need at least one shard, got {count}")
            self._shards = [shards() for _ in range(count)]
        else:
            self._shards = list(shards)
            if not self._shards:
                raise ConfigurationError("need at least one shard")
            if n_shards is not None and int(n_shards) != len(self._shards):
                raise ConfigurationError(
                    f"n_shards={n_shards} but {len(self._shards)} shards given"
                )
        self.executor = executor
        if executor == "thread":
            if transport not in (None, "auto"):
                raise ConfigurationError(
                    "transport applies to the process executor only; "
                    f"got transport={transport!r} with executor='thread'"
                )
            self.transport = None
            # One single-worker executor per shard: batches for a shard run
            # FIFO (deterministic per-shard RNG consumption), shards overlap.
            self._executors = [
                ThreadPoolExecutor(max_workers=1) for _ in self._shards
            ]
            self._workers = None
            self._pending = None
        else:
            self.transport = resolve_transport(transport)
            self._executors = []
            # One persistent worker per shard: the state ships once and
            # stays resident; self._shards becomes a snapshot cache that
            # partials()/merged()/close() refresh from the workers.
            self._workers = [
                _ShardWorker(shard, self.transport) for shard in self._shards
            ]
            # Per-shard FIFO of (batch, future) awaiting the next drain.
            self._pending = [[] for _ in self._shards]
        self._futures: list[Future] = []
        self._next = 0
        self._closed = False
        self._snapshots_stale = False
        # Per-shard submitted-batch tallies (plain ints — cheap enough to
        # keep unconditionally; the imbalance gauge reads them at drain).
        self._shard_batches = [0] * len(self._shards)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(self, batch, shard: Optional[int] = None) -> Future:
        """Queue one batch for ingestion; returns its future.

        Batches rotate round-robin unless ``shard`` pins one.  ``batch``
        is handed to the shard's ``ingest_batch`` as a single argument —
        every shard type accepts its tuple batch form that way (sessions
        take ``(labels, items)``, the OLH accumulator ``(a, b, r)``
        columns, the correlated accumulator ``(labels, bits)``).
        """
        if self._closed:
            raise ConfigurationError("aggregator is closed")
        if shard is None:
            shard = self._next % len(self._shards)
            self._next += 1
        elif not 0 <= shard < len(self._shards):
            raise ConfigurationError(
                f"shard {shard} outside [0, {len(self._shards)})"
            )
        self._shard_batches[shard] += 1
        if self._pending is not None:
            # Process mode: queue locally; the batch ships at drain time
            # (or when the future itself is awaited).
            future: Future = _DeferredFuture(self._drain_process)
            self._pending[shard].append((batch, future))
            self._futures.append(future)
            return future
        target = self._shards[shard]
        future = self._executors[shard].submit(target.ingest_batch, batch)
        self._futures.append(future)
        return future

    def ingest(self, batches) -> int:
        """Submit every batch of an iterable, drain, and return the total
        number of reports ingested."""
        for batch in batches:
            self.submit(batch)
        return self.drain()

    def drain(self) -> int:
        """Block until all queued batches are ingested.

        Returns the summed batch sizes; re-raises the first shard error.
        In process mode this is where the work happens: each shard's
        queued batches ship to its resident worker over the configured
        transport and fold into the worker-held state — no state ever
        travels at drain time.
        """
        registry = _obs.get_registry()
        if not registry.enabled:
            return self._drain_all()
        with registry.span(
            "shard_drain_seconds", executor=self.executor
        ):
            total = self._drain_all()
        registry.counter("shard_drained_reports_total").inc(total)
        registry.gauge("shard_imbalance_batches").set(
            max(self._shard_batches) - min(self._shard_batches)
        )
        return total

    def _drain_all(self) -> int:
        if self._pending is not None:
            self._futures = []
            return self._drain_process()
        futures, self._futures = self._futures, []
        return sum(int(future.result() or 0) for future in futures)

    def _drain_process(self) -> int:
        if self._workers is None:  # closed: queues were drained then
            return 0
        # Phase 1: ship every shard's queue — all workers start folding
        # concurrently before we collect any reply.
        inflight = []
        first_error = None
        shipped_bytes = 0
        for index, worker in enumerate(self._workers):
            pending, self._pending[index] = self._pending[index], []
            if not pending:
                continue
            batches = [batch for batch, _future in pending]
            try:
                segment = worker.send_ingest(batches)
            except BaseException as error:  # noqa: BLE001 - parked on futures
                for _batch, submit_future in pending:
                    submit_future.set_exception(error)
                first_error = first_error or error
                continue
            shipped_bytes += _shm.manifest_nbytes(segment)
            inflight.append((worker, pending, segment))
        # Phase 2: collect replies in shard order.
        total = 0
        for worker, pending, segment in inflight:
            try:
                sizes = worker.recv_ingest(segment)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                for _batch, submit_future in pending:
                    submit_future.set_exception(error)
                first_error = first_error or error
                continue
            self._snapshots_stale = True
            for (_batch, submit_future), size in zip(pending, sizes):
                submit_future.set_result(size)
                total += size
        if inflight:
            registry = _obs.get_registry()
            if registry.enabled:
                registry.counter(
                    "shard_transport_bytes_total", transport=self.transport
                ).inc(shipped_bytes)
        if first_error is not None:
            raise first_error
        return total

    def _refresh_snapshots(self) -> None:
        """Pull the resident worker states into the local snapshot cache."""
        if self._workers is None or self._closed or not self._snapshots_stale:
            return
        self._shards = [worker.snapshot() for worker in self._workers]
        self._snapshots_stale = False

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def partials(self) -> list:
        """The live shard states (drains pending work first).

        In process mode these are snapshots of the worker-resident
        states, fetched on demand — mutating them does not affect
        subsequent ingestion.
        """
        self.drain()
        self._refresh_snapshots()
        return list(self._shards)

    def merged(self):
        """Reduce all shard states into one (drains pending work first).

        The result is always detached from the live shards, so a
        mid-stream snapshot stays frozen while ingestion continues —
        including in the single-shard configuration, where a bare reduce
        would hand back the live shard itself.
        """
        self.drain()
        self._refresh_snapshots()
        if len(self._shards) == 1:
            return self._shards[0].copy()
        return reduce(lambda left, right: left.merge(right), self._shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Wait for queued work, cache final states, release the workers."""
        if not self._closed:
            if self._pending is not None and any(self._pending):
                self._drain_process()
            self._refresh_snapshots()
            self._closed = True
            for executor in self._executors:
                executor.shutdown(wait=True)
            if self._workers is not None:
                for worker in self._workers:
                    worker.stop()
                self._workers = None

    def __enter__(self) -> "ShardedAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedAggregator(n_shards={len(self._shards)}, "
            f"pending={len(self._futures)})"
        )
