"""Shard-parallel batch ingestion with mergeable partial states.

A :class:`ShardedAggregator` owns ``n_shards`` independent aggregation
states — anything exposing ``ingest_batch`` and ``merge``, i.e. a
:class:`~repro.stream.accumulators.SupportAccumulator` or an
:class:`~repro.stream.session.OnlineFrameworkSession` — and fans
submitted batches across them round-robin.  Each shard is served by its
own single-worker executor, so batches bound for one shard execute in
submission order (keeping per-shard RNG streams deterministic) while
different shards ingest concurrently.  ``merged()`` reduces the partial
states with ``merge``; because merging is associative and commutative,
the result is independent of how batches were distributed.

Because support counts are additive, sharded ingestion of a report set
equals single-state ingestion of the same set *exactly* for protocol-mode
reports, and in distribution for simulate-mode sessions (each shard draws
from its own stream).

Two executors are available.  ``executor="thread"`` (default) serves each
shard from its own single-worker thread — cheap hand-off, shared memory,
concurrency bounded by the GIL outside NumPy kernels.
``executor="process"`` ships each shard's queued batches to a process
pool at :meth:`ShardedAggregator.drain` time: shard states are plain data
(count arrays plus picklable generators), so they round-trip through the
pool workers and come back replaced, sidestepping the GIL entirely for
CPU-bound ingest kernels at the cost of (de)serialising states per drain.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from functools import reduce
from typing import Callable, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs

#: Anything shard-shaped: ingest_batch(batch) + merge(other).
Mergeable = object
ShardFactory = Callable[[], Mergeable]

#: The two batch executors.
EXECUTORS = ("thread", "process")


def default_shard_count() -> int:
    """Shards used when the caller does not choose: one per CPU, capped."""
    return max(1, min(8, os.cpu_count() or 1))


def _ingest_into(shard, batches):
    """Process-pool worker: replay ``batches`` into ``shard`` in order.

    Module-level so it pickles; returns the mutated shard plus per-batch
    sizes so the parent can resolve the submit futures.
    """
    sizes = [int(shard.ingest_batch(batch) or 0) for batch in batches]
    return shard, sizes


class _DeferredFuture(Future):
    """Future resolved by the aggregator's next drain.

    Process-mode batches only ship at :meth:`ShardedAggregator.drain`
    time; waiting on the future before that would deadlock, so
    ``result``/``exception`` trigger the drain themselves, keeping the
    thread-mode contract (``submit(...).result()`` just works).
    """

    def __init__(self, drain) -> None:
        super().__init__()
        self._drain = drain

    def _drain_resolving(self) -> None:
        """Run the drain; if it fails before resolving this future (broken
        pool, another shard's error), park the failure here so waiting
        neither deadlocks nor raises an unrelated shard's exception."""
        try:
            self._drain()
        except BaseException as error:  # noqa: BLE001 - parked on the future
            if not self.done():
                self.set_exception(error)

    def result(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().result(timeout)

    def exception(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().exception(timeout)


class ShardedAggregator:
    """Fan report batches across worker shards and merge their states.

    Parameters
    ----------
    shards:
        Either a sequence of pre-built shard states (e.g. sessions seeded
        with independent generators via :func:`repro.rng.spawn`) or a
        zero-argument factory called ``n_shards`` times.
    n_shards:
        Number of shards when ``shards`` is a factory; ignored (and
        validated) otherwise.  Defaults to :func:`default_shard_count`.
    executor:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring.  Process mode requires picklable shard states (every
        accumulator and session qualifies) and defers actual ingestion to
        :meth:`drain`.

    Use as a context manager (or call :meth:`close`) to release the
    workers.
    """

    def __init__(
        self,
        shards: Union[Sequence[Mergeable], ShardFactory],
        n_shards: Optional[int] = None,
        executor: str = "thread",
    ) -> None:
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if callable(shards):
            count = default_shard_count() if n_shards is None else int(n_shards)
            if count < 1:
                raise ConfigurationError(f"need at least one shard, got {count}")
            self._shards = [shards() for _ in range(count)]
        else:
            self._shards = list(shards)
            if not self._shards:
                raise ConfigurationError("need at least one shard")
            if n_shards is not None and int(n_shards) != len(self._shards):
                raise ConfigurationError(
                    f"n_shards={n_shards} but {len(self._shards)} shards given"
                )
        self.executor = executor
        if executor == "thread":
            # One single-worker executor per shard: batches for a shard run
            # FIFO (deterministic per-shard RNG consumption), shards overlap.
            self._executors = [
                ThreadPoolExecutor(max_workers=1) for _ in self._shards
            ]
            self._pool = None
            self._pending = None
        else:
            self._executors = []
            self._pool = ProcessPoolExecutor(max_workers=len(self._shards))
            # Per-shard FIFO of (batch, future) awaiting the next drain.
            self._pending = [[] for _ in self._shards]
        self._futures: list[Future] = []
        self._next = 0
        self._closed = False
        # Per-shard submitted-batch tallies (plain ints — cheap enough to
        # keep unconditionally; the imbalance gauge reads them at drain).
        self._shard_batches = [0] * len(self._shards)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(self, batch, shard: Optional[int] = None) -> Future:
        """Queue one batch for ingestion; returns its future.

        Batches rotate round-robin unless ``shard`` pins one.  ``batch``
        is handed to the shard's ``ingest_batch`` as a single argument —
        every shard type accepts its tuple batch form that way (sessions
        take ``(labels, items)``, the OLH accumulator ``(a, b, r)``
        columns, the correlated accumulator ``(labels, bits)``).
        """
        if self._closed:
            raise ConfigurationError("aggregator is closed")
        if shard is None:
            shard = self._next % len(self._shards)
            self._next += 1
        elif not 0 <= shard < len(self._shards):
            raise ConfigurationError(
                f"shard {shard} outside [0, {len(self._shards)})"
            )
        self._shard_batches[shard] += 1
        if self._pending is not None:
            # Process mode: queue locally; the batch ships at drain time
            # (or when the future itself is awaited).
            future: Future = _DeferredFuture(self._drain_process)
            self._pending[shard].append((batch, future))
            self._futures.append(future)
            return future
        target = self._shards[shard]
        future = self._executors[shard].submit(target.ingest_batch, batch)
        self._futures.append(future)
        return future

    def ingest(self, batches) -> int:
        """Submit every batch of an iterable, drain, and return the total
        number of reports ingested."""
        for batch in batches:
            self.submit(batch)
        return self.drain()

    def drain(self) -> int:
        """Block until all queued batches are ingested.

        Returns the summed batch sizes; re-raises the first shard error.
        In process mode this is where the work happens: each shard's
        queued batches ship to a pool worker together with the shard's
        current state, and the returned state replaces it.
        """
        registry = _obs.get_registry()
        if not registry.enabled:
            return self._drain_all()
        with registry.span(
            "shard_drain_seconds", executor=self.executor
        ):
            total = self._drain_all()
        registry.counter("shard_drained_reports_total").inc(total)
        registry.gauge("shard_imbalance_batches").set(
            max(self._shard_batches) - min(self._shard_batches)
        )
        return total

    def _drain_all(self) -> int:
        if self._pending is not None:
            self._futures = []
            return self._drain_process()
        futures, self._futures = self._futures, []
        return sum(int(future.result() or 0) for future in futures)

    def _drain_process(self) -> int:
        remote = {}
        for index, pending in enumerate(self._pending):
            if pending:
                batches = [batch for batch, _future in pending]
                remote[index] = self._pool.submit(
                    _ingest_into, self._shards[index], batches
                )
        total = 0
        first_error = None
        for index, future in remote.items():
            pending, self._pending[index] = self._pending[index], []
            try:
                shard, sizes = future.result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                for _batch, submit_future in pending:
                    submit_future.set_exception(error)
                first_error = first_error or error
                continue
            self._shards[index] = shard
            for (_batch, submit_future), size in zip(pending, sizes):
                submit_future.set_result(size)
                total += size
        if first_error is not None:
            raise first_error
        return total

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def partials(self) -> list:
        """The live shard states (drains pending work first)."""
        self.drain()
        return list(self._shards)

    def merged(self):
        """Reduce all shard states into one (drains pending work first).

        The result is always detached from the live shards, so a
        mid-stream snapshot stays frozen while ingestion continues —
        including in the single-shard configuration, where a bare reduce
        would hand back the live shard itself.
        """
        self.drain()
        if len(self._shards) == 1:
            return self._shards[0].copy()
        return reduce(lambda left, right: left.merge(right), self._shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Wait for queued work and release the workers."""
        if not self._closed:
            if self._pending is not None and any(self._pending):
                self._drain_process()
            self._closed = True
            for executor in self._executors:
                executor.shutdown(wait=True)
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedAggregator(n_shards={len(self._shards)}, "
            f"pending={len(self._futures)})"
        )
