"""Shard-parallel batch ingestion with mergeable partial states.

A :class:`ShardedAggregator` owns ``n_shards`` independent aggregation
states — anything exposing ``ingest_batch`` and ``merge``, i.e. a
:class:`~repro.stream.accumulators.SupportAccumulator` or an
:class:`~repro.stream.session.OnlineFrameworkSession` — and fans
submitted batches across them round-robin.  Each shard is served by its
own single-worker executor, so batches bound for one shard execute in
submission order (keeping per-shard RNG streams deterministic) while
different shards ingest concurrently.  ``merged()`` reduces the partial
states with ``merge``; because merging is associative and commutative,
the result is independent of how batches were distributed.

Because support counts are additive, sharded ingestion of a report set
equals single-state ingestion of the same set *exactly* for protocol-mode
reports, and in distribution for simulate-mode sessions (each shard draws
from its own stream).
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from functools import reduce
from typing import Callable, Optional, Sequence, Union

from ..exceptions import ConfigurationError

#: Anything shard-shaped: ingest_batch(batch) + merge(other).
Mergeable = object
ShardFactory = Callable[[], Mergeable]


def default_shard_count() -> int:
    """Shards used when the caller does not choose: one per CPU, capped."""
    return max(1, min(8, os.cpu_count() or 1))


class ShardedAggregator:
    """Fan report batches across worker shards and merge their states.

    Parameters
    ----------
    shards:
        Either a sequence of pre-built shard states (e.g. sessions seeded
        with independent generators via :func:`repro.rng.spawn`) or a
        zero-argument factory called ``n_shards`` times.
    n_shards:
        Number of shards when ``shards`` is a factory; ignored (and
        validated) otherwise.  Defaults to :func:`default_shard_count`.

    Use as a context manager (or call :meth:`close`) to release the
    worker threads.
    """

    def __init__(
        self,
        shards: Union[Sequence[Mergeable], ShardFactory],
        n_shards: Optional[int] = None,
    ) -> None:
        if callable(shards):
            count = default_shard_count() if n_shards is None else int(n_shards)
            if count < 1:
                raise ConfigurationError(f"need at least one shard, got {count}")
            self._shards = [shards() for _ in range(count)]
        else:
            self._shards = list(shards)
            if not self._shards:
                raise ConfigurationError("need at least one shard")
            if n_shards is not None and int(n_shards) != len(self._shards):
                raise ConfigurationError(
                    f"n_shards={n_shards} but {len(self._shards)} shards given"
                )
        # One single-worker executor per shard: batches for a shard run
        # FIFO (deterministic per-shard RNG consumption), shards overlap.
        self._executors = [
            ThreadPoolExecutor(max_workers=1) for _ in self._shards
        ]
        self._futures: list[Future] = []
        self._next = 0
        self._closed = False

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(self, batch, shard: Optional[int] = None) -> Future:
        """Queue one batch for ingestion; returns its future.

        Batches rotate round-robin unless ``shard`` pins one.  ``batch``
        is handed to the shard's ``ingest_batch`` as a single argument —
        every shard type accepts its tuple batch form that way (sessions
        take ``(labels, items)``, the OLH accumulator ``(a, b, r)``
        columns, the correlated accumulator ``(labels, bits)``).
        """
        if self._closed:
            raise ConfigurationError("aggregator is closed")
        if shard is None:
            shard = self._next % len(self._shards)
            self._next += 1
        elif not 0 <= shard < len(self._shards):
            raise ConfigurationError(
                f"shard {shard} outside [0, {len(self._shards)})"
            )
        target = self._shards[shard]
        future = self._executors[shard].submit(target.ingest_batch, batch)
        self._futures.append(future)
        return future

    def ingest(self, batches) -> int:
        """Submit every batch of an iterable, drain, and return the total
        number of reports ingested."""
        for batch in batches:
            self.submit(batch)
        return self.drain()

    def drain(self) -> int:
        """Block until all queued batches are ingested.

        Returns the summed batch sizes; re-raises the first shard error.
        """
        futures, self._futures = self._futures, []
        return sum(int(future.result() or 0) for future in futures)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def partials(self) -> list:
        """The live shard states (drains pending work first)."""
        self.drain()
        return list(self._shards)

    def merged(self):
        """Reduce all shard states into one (drains pending work first).

        The result is always detached from the live shards, so a
        mid-stream snapshot stays frozen while ingestion continues —
        including in the single-shard configuration, where a bare reduce
        would hand back the live shard itself.
        """
        self.drain()
        if len(self._shards) == 1:
            return self._shards[0].copy()
        return reduce(lambda left, right: left.merge(right), self._shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Wait for queued work and release the worker threads."""
        if not self._closed:
            self._closed = True
            for executor in self._executors:
                executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedAggregator(n_shards={len(self._shards)}, "
            f"pending={len(self._futures)})"
        )
