"""Shard-parallel batch ingestion with mergeable partial states.

A :class:`ShardedAggregator` owns ``n_shards`` independent aggregation
states — anything exposing ``ingest_batch`` and ``merge``, i.e. a
:class:`~repro.stream.accumulators.SupportAccumulator` or an
:class:`~repro.stream.session.OnlineFrameworkSession` — and fans
submitted batches across them round-robin.  Each shard is served by its
own single-worker executor, so batches bound for one shard execute in
submission order (keeping per-shard RNG streams deterministic) while
different shards ingest concurrently.  ``merged()`` reduces the partial
states with ``merge``; because merging is associative and commutative,
the result is independent of how batches were distributed.

Because support counts are additive, sharded ingestion of a report set
equals single-state ingestion of the same set *exactly* for protocol-mode
reports, and in distribution for simulate-mode sessions (each shard draws
from its own stream).

Two executors are available.  ``executor="thread"`` (default) serves each
shard from its own single-worker thread — cheap hand-off, shared memory,
concurrency bounded by the GIL outside NumPy kernels (and not at all
under a GIL-free kernel backend).  ``executor="process"`` keeps one
*persistent* worker process per shard: the shard state ships to its
worker once, stays resident there across drains, and only queued batches
cross the process boundary at :meth:`ShardedAggregator.drain` time.  How
they cross is the *transport*: ``"shm"`` (default where supported) packs
each drain's report arrays into one shared-memory segment per shard and
sends only a descriptor manifest over the pipe — the worker ingests
zero-copy views, nothing is pickled per report — while ``"pickle"``
falls back to serialising batches through the pipe.  Snapshots of the
resident states are pickled back only on demand (:meth:`partials`,
:meth:`merged`, :meth:`close`), never per drain.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from functools import reduce
from typing import Callable, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs
from ..obs import trace as _trace
from . import shm as _shm

#: Anything shard-shaped: ingest_batch(batch) + merge(other).
Mergeable = object
ShardFactory = Callable[[], Mergeable]

#: The two batch executors.
EXECUTORS = ("thread", "process")

#: Process-mode batch transports (``"auto"`` resolves at construction).
TRANSPORTS = ("auto", "shm", "pickle")


def default_shard_count() -> int:
    """Shards used when the caller does not choose: one per CPU, capped."""
    return max(1, min(8, os.cpu_count() or 1))


def resolve_transport(transport: Optional[str]) -> str:
    """Effective process-mode transport for a requested name.

    ``None``/``"auto"`` picks shared memory when the host supports it and
    degrades to pickle quietly; an explicit ``"shm"`` on a host without
    usable shared memory is a configuration error.
    """
    requested = "auto" if transport is None else str(transport)
    if requested not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if requested == "auto":
        return "shm" if _shm.shm_supported() else "pickle"
    if requested == "shm" and not _shm.shm_supported():
        raise ConfigurationError(
            "transport='shm' requested but shared memory is unavailable"
        )
    return requested


def _shard_worker_main(connection, state, index: int = 0) -> None:
    """Persistent shard worker: hold ``state`` resident, serve commands.

    Commands arrive as tuples on ``connection``:

    ``("ingest", "shm", (segment_name, manifest), telemetry)`` /
    ``("ingest", "pickle", batches, telemetry)``
        Replay the batches into the state in order.  Ingestion runs
        against a ``copy()`` that only replaces the resident state when
        *every* batch succeeds, so a failed drain leaves the shard
        exactly as it was (all-or-nothing, matching the old pool
        semantics where a failed worker's state never came back).
        ``telemetry`` is ``None`` on the fast path (reply payload is
        the size list, unchanged); when the parent's telemetry plane is
        live it is ``{"traces": [...], "metrics": bool}`` and the reply
        payload becomes ``(sizes, spans, snapshot)`` — per-batch span
        records parented on the shipped ``(trace_id, span_id)`` tuples,
        plus this process's metrics snapshot for the parent to fold in.
    ``("snapshot",)``
        Reply with the resident state (the one place states are pickled).
    ``("stop",)``
        Acknowledge and exit.

    Replies are ``("ok", payload)`` or ``("error", exception)``.
    """
    # The registry was fork-copied from the parent; its values belong to
    # the parent's series.  Start from zero so a shipped-back snapshot
    # counts only work this shard actually did.
    _obs.get_registry().clear()
    service = f"shard{index}"
    while True:
        command = connection.recv()
        kind = command[0]
        if kind == "stop":
            connection.send(("ok", None))
            return
        if kind == "snapshot":
            connection.send(("ok", state))
            continue
        # kind == "ingest"
        transport, payload = command[1], command[2]
        telemetry = command[3] if len(command) > 3 else None
        segment = None
        try:
            if transport == "shm":
                name, manifest = payload
                segment, batches = _shm.attach_batches(name, manifest)
            else:
                batches = payload
            registry = _obs.get_registry()
            if telemetry is not None and telemetry.get("metrics"):
                registry.enable()
            work = state.copy()
            if telemetry is None:
                sizes = [
                    int(work.ingest_batch(batch) or 0) for batch in batches
                ]
                reply = sizes
            else:
                traces = telemetry.get("traces") or [None] * len(batches)
                sizes, spans = [], []
                for batch, wire in zip(batches, traces):
                    if wire is None:
                        sizes.append(int(work.ingest_batch(batch) or 0))
                        continue
                    trace_id, parent_id = wire
                    start = time.time()
                    clock = time.perf_counter()
                    size = int(work.ingest_batch(batch) or 0)
                    sizes.append(size)
                    spans.append(
                        {
                            "name": "shard.ingest",
                            "cat": "shard",
                            "trace_id": trace_id,
                            "span_id": _trace._new_id(),
                            "parent_id": parent_id,
                            "start": start,
                            "duration": time.perf_counter() - clock,
                            "service": service,
                            "thread": "worker",
                            "args": {"shard": index, "reports": size},
                        }
                    )
                snapshot = (
                    registry.snapshot() if telemetry.get("metrics") else None
                )
                reply = (sizes, spans, snapshot)
            del batches  # drop the views before unmapping the segment
            state = work
            connection.send(("ok", reply))
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            connection.send(("error", error))
        finally:
            _shm.release(segment, unlink=False)


class _ShardWorker:
    """Parent-side handle on one persistent shard worker process."""

    def __init__(self, state, transport: str, index: int = 0) -> None:
        self.transport = transport
        self.index = index
        context = multiprocessing.get_context()
        self._connection, child_connection = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_connection, state, index),
            daemon=True,
        )
        self._process.start()
        child_connection.close()

    def send_ingest(self, batches, telemetry=None):
        """Ship ``batches`` to the worker; returns the in-flight segment
        (``None`` on the pickle transport) for :meth:`recv_ingest`."""
        if self.transport == "shm":
            segment, manifest = _shm.pack_batches(batches)
            name = segment.name if segment is not None else None
            try:
                self._connection.send(
                    ("ingest", "shm", (name, manifest), telemetry)
                )
            except BaseException:
                _shm.release(segment, unlink=True)
                raise
            return segment
        self._connection.send(("ingest", "pickle", batches, telemetry))
        return None

    def recv_ingest(self, segment) -> list[int]:
        """Collect the per-batch sizes for a :meth:`send_ingest`; always
        releases (and unlinks) the in-flight segment."""
        try:
            return self._recv()
        finally:
            _shm.release(segment, unlink=True)

    def snapshot(self):
        """The worker's resident state, pickled back on demand."""
        self._connection.send(("snapshot",))
        return self._recv()

    def stop(self) -> None:
        try:
            self._connection.send(("stop",))
            self._recv()
        except (BrokenPipeError, EOFError, OSError):  # already gone
            pass
        self._process.join(timeout=10)
        self._connection.close()

    def _recv(self):
        try:
            status, payload = self._connection.recv()
        except EOFError:
            raise RuntimeError("shard worker process terminated unexpectedly")
        if status == "error":
            raise payload
        return payload


class _DeferredFuture(Future):
    """Future resolved by the aggregator's next drain.

    Process-mode batches only ship at :meth:`ShardedAggregator.drain`
    time; waiting on the future before that would deadlock, so
    ``result``/``exception`` trigger the drain themselves, keeping the
    thread-mode contract (``submit(...).result()`` just works).
    """

    def __init__(self, drain) -> None:
        super().__init__()
        self._drain = drain

    def _drain_resolving(self) -> None:
        """Run the drain; if it fails before resolving this future (broken
        worker, another shard's error), park the failure here so waiting
        neither deadlocks nor raises an unrelated shard's exception."""
        try:
            self._drain()
        except BaseException as error:  # noqa: BLE001 - parked on the future
            if not self.done():
                self.set_exception(error)

    def result(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().result(timeout)

    def exception(self, timeout=None):
        if not self.done():
            self._drain_resolving()
        return super().exception(timeout)


class ShardedAggregator:
    """Fan report batches across worker shards and merge their states.

    Parameters
    ----------
    shards:
        Either a sequence of pre-built shard states (e.g. sessions seeded
        with independent generators via :func:`repro.rng.spawn`) or a
        zero-argument factory called ``n_shards`` times.
    n_shards:
        Number of shards when ``shards`` is a factory; ignored (and
        validated) otherwise.  Defaults to :func:`default_shard_count`.
    executor:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring.  Process mode requires picklable shard states (every
        accumulator and session qualifies) and defers actual ingestion to
        :meth:`drain`.
    transport:
        Process-mode batch transport: ``"shm"`` (zero-copy shared-memory
        views), ``"pickle"``, or ``"auto"``/``None`` (shared memory when
        the host supports it).  Thread mode shares one address space and
        accepts only the default.

    Use as a context manager (or call :meth:`close`) to release the
    workers.
    """

    def __init__(
        self,
        shards: Union[Sequence[Mergeable], ShardFactory],
        n_shards: Optional[int] = None,
        executor: str = "thread",
        transport: Optional[str] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if callable(shards):
            count = default_shard_count() if n_shards is None else int(n_shards)
            if count < 1:
                raise ConfigurationError(f"need at least one shard, got {count}")
            self._shards = [shards() for _ in range(count)]
        else:
            self._shards = list(shards)
            if not self._shards:
                raise ConfigurationError("need at least one shard")
            if n_shards is not None and int(n_shards) != len(self._shards):
                raise ConfigurationError(
                    f"n_shards={n_shards} but {len(self._shards)} shards given"
                )
        self.executor = executor
        if executor == "thread":
            if transport not in (None, "auto"):
                raise ConfigurationError(
                    "transport applies to the process executor only; "
                    f"got transport={transport!r} with executor='thread'"
                )
            self.transport = None
            # One single-worker executor per shard: batches for a shard run
            # FIFO (deterministic per-shard RNG consumption), shards overlap.
            self._executors = [
                ThreadPoolExecutor(max_workers=1) for _ in self._shards
            ]
            self._workers = None
            self._pending = None
        else:
            self.transport = resolve_transport(transport)
            self._executors = []
            # One persistent worker per shard: the state ships once and
            # stays resident; self._shards becomes a snapshot cache that
            # partials()/merged()/close() refresh from the workers.
            self._workers = [
                _ShardWorker(shard, self.transport, index)
                for index, shard in enumerate(self._shards)
            ]
            # Per-shard FIFO of (batch, future, trace) awaiting the drain.
            self._pending = [[] for _ in self._shards]
        self._futures: list[Future] = []
        # Latest worker-process metrics snapshots, relabelled per shard
        # (process mode only; populated when the parent registry is live).
        self._worker_metrics: dict[int, dict] = {}
        self._next = 0
        self._closed = False
        self._snapshots_stale = False
        # Per-shard submitted-batch tallies (plain ints — cheap enough to
        # keep unconditionally; the imbalance gauge reads them at drain).
        self._shard_batches = [0] * len(self._shards)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def submit(
        self,
        batch,
        shard: Optional[int] = None,
        trace: Optional[_trace.TraceContext] = None,
    ) -> Future:
        """Queue one batch for ingestion; returns its future.

        Batches rotate round-robin unless ``shard`` pins one.  ``batch``
        is handed to the shard's ``ingest_batch`` as a single argument —
        every shard type accepts its tuple batch form that way (sessions
        take ``(labels, items)``, the OLH accumulator ``(a, b, r)``
        columns, the correlated accumulator ``(labels, bits)``).

        ``trace`` attaches a :class:`~repro.obs.trace.TraceContext` to
        the batch: the shard ingest records a child span (in-process for
        the thread executor, shipped back from the worker process
        otherwise).  ``None`` — the default — is the zero-cost path.
        """
        if self._closed:
            raise ConfigurationError("aggregator is closed")
        if shard is None:
            shard = self._next % len(self._shards)
            self._next += 1
        elif not 0 <= shard < len(self._shards):
            raise ConfigurationError(
                f"shard {shard} outside [0, {len(self._shards)})"
            )
        self._shard_batches[shard] += 1
        if self._pending is not None:
            # Process mode: queue locally; the batch ships at drain time
            # (or when the future itself is awaited).
            future: Future = _DeferredFuture(self._drain_process)
            self._pending[shard].append((batch, future, trace))
            self._futures.append(future)
            return future
        target = self._shards[shard]
        if trace is not None and _trace.get_tracer().enabled:
            future = self._executors[shard].submit(
                self._traced_ingest, target, batch, trace, shard
            )
        else:
            future = self._executors[shard].submit(target.ingest_batch, batch)
        self._futures.append(future)
        return future

    @staticmethod
    def _traced_ingest(target, batch, trace, shard):
        with _trace.get_tracer().span(
            "shard.ingest", trace, cat="shard", shard=shard
        ):
            return target.ingest_batch(batch)

    def ingest(self, batches) -> int:
        """Submit every batch of an iterable, drain, and return the total
        number of reports ingested."""
        for batch in batches:
            self.submit(batch)
        return self.drain()

    def drain(self) -> int:
        """Block until all queued batches are ingested.

        Returns the summed batch sizes; re-raises the first shard error.
        In process mode this is where the work happens: each shard's
        queued batches ship to its resident worker over the configured
        transport and fold into the worker-held state — no state ever
        travels at drain time.
        """
        registry = _obs.get_registry()
        if not registry.enabled:
            return self._drain_all()
        with registry.span(
            "shard_drain_seconds", executor=self.executor
        ):
            total = self._drain_all()
        registry.counter("shard_drained_reports_total").inc(total)
        registry.gauge("shard_imbalance_batches").set(
            max(self._shard_batches) - min(self._shard_batches)
        )
        return total

    def _drain_all(self) -> int:
        if self._pending is not None:
            self._futures = []
            return self._drain_process()
        futures, self._futures = self._futures, []
        return sum(int(future.result() or 0) for future in futures)

    def _drain_process(self) -> int:
        if self._workers is None:  # closed: queues were drained then
            return 0
        # When either telemetry plane is live, piggyback on the drain
        # round-trip: ship trace contexts out, collect spans and metrics
        # snapshots back.  ``None`` keeps the wire format untouched.
        tracer = _trace.get_tracer()
        want_metrics = _obs.get_registry().enabled
        want_telemetry = tracer.enabled or want_metrics
        # Phase 1: ship every shard's queue — all workers start folding
        # concurrently before we collect any reply.
        inflight = []
        first_error = None
        shipped_bytes = 0
        for index, worker in enumerate(self._workers):
            pending, self._pending[index] = self._pending[index], []
            if not pending:
                continue
            batches = [batch for batch, _future, _trace_ctx in pending]
            telemetry = None
            if want_telemetry:
                traces = None
                if tracer.enabled:
                    traces = [
                        None
                        if ctx is None
                        else (ctx.trace_id, ctx.span_id)
                        for _batch, _future, ctx in pending
                    ]
                telemetry = {"traces": traces, "metrics": want_metrics}
            try:
                segment = worker.send_ingest(batches, telemetry)
            except BaseException as error:  # noqa: BLE001 - parked on futures
                for _batch, submit_future, _trace_ctx in pending:
                    submit_future.set_exception(error)
                first_error = first_error or error
                continue
            shipped_bytes += _shm.manifest_nbytes(segment)
            inflight.append((worker, pending, segment, telemetry))
        # Phase 2: collect replies in shard order.
        total = 0
        for worker, pending, segment, telemetry in inflight:
            try:
                reply = worker.recv_ingest(segment)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                for _batch, submit_future, _trace_ctx in pending:
                    submit_future.set_exception(error)
                first_error = first_error or error
                continue
            if telemetry is None:
                sizes = reply
            else:
                sizes, spans, snapshot = reply
                if spans:
                    tracer.adopt(spans)
                if snapshot is not None:
                    self._worker_metrics[worker.index] = _obs.relabel_snapshot(
                        snapshot, worker=f"shard{worker.index}"
                    )
            self._snapshots_stale = True
            for (_batch, submit_future, _trace_ctx), size in zip(
                pending, sizes
            ):
                submit_future.set_result(size)
                total += size
        if inflight:
            registry = _obs.get_registry()
            if registry.enabled:
                registry.counter(
                    "shard_transport_bytes_total", transport=self.transport
                ).inc(shipped_bytes)
        if first_error is not None:
            raise first_error
        return total

    def _refresh_snapshots(self) -> None:
        """Pull the resident worker states into the local snapshot cache."""
        if self._workers is None or self._closed or not self._snapshots_stale:
            return
        self._shards = [worker.snapshot() for worker in self._workers]
        self._snapshots_stale = False

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def partials(self) -> list:
        """The live shard states (drains pending work first).

        In process mode these are snapshots of the worker-resident
        states, fetched on demand — mutating them does not affect
        subsequent ingestion.
        """
        self.drain()
        self._refresh_snapshots()
        return list(self._shards)

    def merged(self):
        """Reduce all shard states into one (drains pending work first).

        The result is always detached from the live shards, so a
        mid-stream snapshot stays frozen while ingestion continues —
        including in the single-shard configuration, where a bare reduce
        would hand back the live shard itself.
        """
        self.drain()
        self._refresh_snapshots()
        if len(self._shards) == 1:
            return self._shards[0].copy()
        return reduce(lambda left, right: left.merge(right), self._shards)

    def worker_metrics(self) -> list[dict]:
        """Latest metrics snapshots shipped back from the shard worker
        processes, one per shard that has drained since the registry went
        live.  Series are relabelled with ``worker="shard<i>"`` so they
        merge next to — never over — the parent's own series (fold them
        in with :func:`repro.obs.merge_snapshots`).  Thread mode shares
        the parent registry, so this is empty there.
        """
        return [
            self._worker_metrics[index]
            for index in sorted(self._worker_metrics)
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Wait for queued work, cache final states, release the workers."""
        if not self._closed:
            if self._pending is not None and any(self._pending):
                self._drain_process()
            self._refresh_snapshots()
            self._closed = True
            for executor in self._executors:
                executor.shutdown(wait=True)
            if self._workers is not None:
                for worker in self._workers:
                    worker.stop()
                self._workers = None

    def __enter__(self) -> "ShardedAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedAggregator(n_shards={len(self._shards)}, "
            f"pending={len(self._futures)})"
        )
