"""Incremental multi-class top-k mining — the streaming miner.

The one-shot pipelines (:class:`~repro.core.topk.pem.PEMMiner`,
:class:`~repro.core.topk.scheme.MultiClassTopK`) hold the whole user
population and split it over iterations internally.  An
:class:`OnlineTopKSession` inverts that control flow for streams: users
arrive in ``(labels, items)`` batches, every batch reports against the
*current* mining round's per-class candidate frontier, and the server
advances rounds explicitly once a round has seen enough users:

* :meth:`~OnlineTopKSession.ingest_batch` — fold one batch of users into
  the current round's per-class supports (labels GRR-routed with ε₁,
  items reported over the candidate frontier with ε₂);
* :meth:`~OnlineTopKSession.advance_round` — prune each class's frontier
  to the ``keep`` best candidates and extend prefixes by ``m`` bits (the
  PEM schedule), or finalise the per-class top-k on the last round;
* :meth:`~OnlineTopKSession.topk` — per-class top candidates mid-stream,
  at any point: full item ids once the frontier reaches full depth,
  prefix previews before that.

Both execution modes of the report plane are supported per batch:
``"simulate"`` draws each round's supports from their exact sufficient
statistics, ``"protocol"`` privatises one report per user through the
vectorised batch engine (:mod:`repro.mechanisms.engine`).  Each user
reports in exactly one round, as the privacy analysis requires — the
stream's arrival order supplies the cohort split that the one-shot
miners sample explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.frameworks.pts import route_labels_grr
from ..core.topk.reporting import (
    EXECUTION_MODES,
    INVALID_MODES,
    simulate_iteration_support,
    top_indices,
)
from ..core.topk.trie import bits_needed, extend_prefixes, prefix_counts
from ..exceptions import ConfigurationError, DomainError, ProtocolError
from ..mechanisms.base import check_domain_size, check_epsilon
from ..mechanisms.budget import split_budget
from ..mechanisms.engine import batch_support
from ..mechanisms.grr import GeneralizedRandomResponse
from ..mechanisms.ue import OptimizedUnaryEncoding, oue_probabilities
from ..mechanisms.validity import ValidityPerturbation
from ..obs import metrics as _obs
from ..rng import RngLike, ensure_rng


class OnlineTopKSession:
    """Round-by-round streaming top-k miner over ``(labels, items)``.

    Parameters
    ----------
    k:
        Items to mine per class.
    epsilon:
        Total per-user budget; split ε₁/ε₂ between label and item reports
        when there is more than one class (``label_fraction``, paper
        default 0.5), spent entirely on items otherwise.
    keep:
        Candidates kept per class per round (default ``k`` — the PEM
        retention).
    extension_bits:
        Prefix bits added per round (the paper's ``m``).
    invalid_mode:
        ``"vp"`` (validity perturbation, default) or ``"random"``
        (classic random replacement) for users whose item left the
        frontier.
    mode:
        ``"simulate"`` or ``"protocol"`` per-batch execution.
    """

    def __init__(
        self,
        k: int,
        epsilon: float,
        n_classes: int,
        n_items: int,
        label_fraction: float = 0.5,
        keep: Optional[int] = None,
        extension_bits: int = 1,
        invalid_mode: str = "vp",
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        if k < 1:
            raise DomainError(f"k must be >= 1, got {k}")
        if extension_bits < 1:
            raise DomainError(f"extension_bits must be >= 1, got {extension_bits}")
        if invalid_mode not in INVALID_MODES:
            raise ConfigurationError(
                f"invalid_mode must be one of {INVALID_MODES}, got {invalid_mode!r}"
            )
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        self.k = int(k)
        self.epsilon = check_epsilon(epsilon)
        self.n_classes = check_domain_size(n_classes)
        self.n_items = check_domain_size(n_items)
        self.keep = self.k if keep is None else int(keep)
        if self.keep < 1:
            raise DomainError(f"keep must be >= 1, got {self.keep}")
        self.extension_bits = int(extension_bits)
        self.invalid_mode = invalid_mode
        self.mode = mode
        self.label_fraction = float(label_fraction)
        self.rng = ensure_rng(rng)

        if self.n_classes > 1:
            self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
            self._label_oracle: Optional[GeneralizedRandomResponse] = (
                GeneralizedRandomResponse(self.epsilon1, self.n_classes, rng=self.rng)
            )
        else:
            self.epsilon1, self.epsilon2 = 0.0, self.epsilon
            self._label_oracle = None

        self.total_bits = bits_needed(self.n_items)
        self.start_bits = min(
            self.total_bits,
            bits_needed(min(self.n_items, self.keep << self.extension_bits)),
        )
        extensions = int(
            np.ceil((self.total_bits - self.start_bits) / self.extension_bits)
        )
        #: Total rounds: prefix extensions plus the final estimation round.
        self.n_rounds = extensions + 1

        start = np.arange(1 << self.start_bits, dtype=np.int64)
        if self.start_bits == self.total_bits:
            start = start[start < self.n_items]
        self._depth = self.start_bits
        self._candidates = [start.copy() for _ in range(self.n_classes)]
        self._support = [
            np.zeros(start.size, dtype=np.int64) for _ in range(self.n_classes)
        ]
        self._round = 0
        self._round_n = 0
        self._round_class_n = np.zeros(self.n_classes, dtype=np.int64)
        self._n = 0
        self._result: Optional[dict[int, list[int]]] = None

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def round(self) -> int:
        """Index of the current mining round (0-based)."""
        return self._round

    @property
    def depth(self) -> int:
        """Prefix depth of the current candidate frontier."""
        return self._depth

    @property
    def finished(self) -> bool:
        """True once the final round has been advanced."""
        return self._round >= self.n_rounds

    @property
    def n_ingested(self) -> int:
        """Users ingested across all rounds."""
        return self._n

    @property
    def round_ingested(self) -> int:
        """Users ingested in the current round so far."""
        return self._round_n

    def frontier(self, label: int) -> np.ndarray:
        """Copy of one class's current candidate frontier."""
        return self._candidates[label].copy()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_batch(self, labels, items=None) -> int:
        """Fold one batch of users into the current round's supports."""
        if self.finished:
            raise ProtocolError("mining is finished; no further rounds accept data")
        if items is None:
            labels, items = labels
        labels = np.asarray(labels, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if labels.shape != items.shape:
            raise DomainError(
                f"labels ({labels.shape}) and items ({items.shape}) must align"
            )
        if labels.size == 0:
            return 0
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise DomainError(f"labels outside [0, {self.n_classes})")
        if items.min() < 0 or items.max() >= self.n_items:
            raise DomainError(f"items outside [0, {self.n_items})")
        if self.mode == "protocol":
            self._ingest_protocol(labels, items)
        else:
            self._ingest_simulated(labels, items)
        self._round_n += labels.size
        self._n += labels.size
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter(
                "stream_ingested_total", framework="topk"
            ).inc(int(labels.size))
        return int(labels.size)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        flat = labels * self.n_items + items
        counts = np.bincount(flat, minlength=self.n_classes * self.n_items)
        counts = counts.reshape(self.n_classes, self.n_items)
        if self._label_oracle is not None:
            counts = route_labels_grr(counts, self._label_oracle.p, self.rng)
        self._round_class_n += counts.sum(axis=1)
        for label in range(self.n_classes):
            cand = self._candidates[label]
            class_counts = counts[label]
            total = int(class_counts.sum())
            if cand.size == 0 or total == 0:
                continue
            per_prefix = prefix_counts(class_counts, self.total_bits, self._depth)
            valid = per_prefix[cand]
            self._support[label] += simulate_iteration_support(
                valid_counts=valid,
                n_invalid=total - int(valid.sum()),
                epsilon=self.epsilon2,
                invalid_mode=self.invalid_mode,
                rng=self.rng,
            )

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        if self._label_oracle is not None:
            routed = self._label_oracle.privatize_many(labels)
        else:
            routed = labels
        self._round_class_n += np.bincount(routed, minlength=self.n_classes)
        for label in range(self.n_classes):
            mask = routed == label
            if not mask.any():
                continue
            self._accumulate_protocol(label, items[mask])

    def _accumulate_protocol(self, label: int, class_items: np.ndarray) -> None:
        cand = self._candidates[label]
        if cand.size == 0:
            return
        prefixes = class_items >> (self.total_bits - self._depth)
        clipped = np.minimum(np.searchsorted(cand, prefixes), cand.size - 1)
        valid = cand[clipped] == prefixes
        values = np.where(valid, clipped, -1)
        if self.invalid_mode == "vp":
            oracle = ValidityPerturbation(self.epsilon2, cand.size, rng=self.rng)
            support = batch_support(oracle, values)[: cand.size]
        else:
            invalid = values < 0
            values[invalid] = self.rng.integers(
                0, cand.size, size=int(invalid.sum())
            )
            oracle = OptimizedUnaryEncoding(self.epsilon2, cand.size, rng=self.rng)
            support = batch_support(oracle, values)
        self._support[label] += support

    # ------------------------------------------------------------------
    # round control
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Close the current round: prune and extend each class's frontier
        (or finalise the top-k on the last round).

        Users arriving after the advance report at the new frontier, so
        every user participates in exactly one round.
        """
        if self.finished:
            raise ProtocolError("mining is finished; no rounds left to advance")
        final = self._round == self.n_rounds - 1
        for label in range(self.n_classes):
            cand = self._candidates[label]
            sup = self._support[label]
            if cand.size == 0:
                continue
            if final:
                continue  # handled below, after the loop flags the result
            kept = top_indices(sup, min(self.keep, cand.size))
            survivors = cand[kept]
            extension = min(self.extension_bits, self.total_bits - self._depth)
            survivors = extend_prefixes(survivors, extension)
            if self._depth + extension == self.total_bits:
                survivors = survivors[survivors < self.n_items]
            self._candidates[label] = survivors
            self._support[label] = np.zeros(survivors.size, dtype=np.int64)
        if final:
            # Rank every surviving candidate so post-finish topk(k) honours
            # any k, exactly like the mid-stream query.
            result: dict[int, list[int]] = {}
            for label in range(self.n_classes):
                cand = self._candidates[label]
                sup = self._support[label]
                if cand.size == 0:
                    result[label] = []
                    continue
                order = top_indices(sup, cand.size)
                result[label] = [int(v) for v in cand[order]]
            self._result = result
        else:
            self._depth = min(self._depth + self.extension_bits, self.total_bits)
        self._round += 1
        self._round_n = 0
        self._round_class_n[:] = 0
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("topk_rounds_total").inc()

    def round_snr(self) -> float:
        """Signal-to-noise ratio of the current round's pruning decision.

        For each class with a decision pending (more candidates than the
        round keeps), calibrate the frontier supports into count
        estimates ``f̂ = (s - m q) / (p - q)`` — ``m`` the reports GRR
        routing delivered to the class this round, ``(p, q)`` the item
        oracle's keep probabilities (identical for VP and OUE).  When the
        last kept candidate carries significant mass, the class's score
        is the kept/dropped boundary gap over the combined binomial noise
        of the two supports; when the boundary sits in pure noise (both
        candidates statistically zero — the decision between them is
        immaterial), the score is instead how clearly the strongest
        candidate rises above the dropped one, i.e. whether the round has
        resolved any structure at all.  The minimum over classes is
        returned: the frontier is only as settled as its least-settled
        class.  ``inf`` when no class has a decision pending, ``0.0``
        while any deciding class is still empty.
        """
        if self.finished:
            raise ProtocolError("mining is finished; no round to score")
        p, q = oue_probabilities(self.epsilon2)
        final = self._round == self.n_rounds - 1
        boundary = self.k if final else self.keep
        base_var = 2.0 * q * (1.0 - q)
        extra_var = p * (1.0 - p) - q * (1.0 - q)
        worst = np.inf
        for label in range(self.n_classes):
            cand = self._candidates[label]
            if cand.size <= boundary:
                continue
            m = float(self._round_class_n[label])
            if m <= 0.0:
                return 0.0
            estimates = (self._support[label] - m * q) / (p - q)
            order = np.sort(estimates)[::-1]
            kept, dropped = float(order[boundary - 1]), float(order[boundary])
            noise_std = np.sqrt(m * q * (1.0 - q)) / (p - q)
            signal = kept if kept > 2.0 * noise_std else float(order[0])
            plug_in = np.clip(signal, 0.0, m) + np.clip(dropped, 0.0, m)
            variance = m * base_var + plug_in * extra_var
            std = np.sqrt(max(variance, q * (1.0 - q))) / (p - q)
            worst = min(worst, (signal - dropped) / std)
        return float(worst)

    def should_advance(
        self,
        snr_threshold: float = 3.0,
        min_round_users: int = 1,
        max_round_users: Optional[int] = None,
    ) -> bool:
        """Whether the round's decision has cleared the noise floor.

        True once :meth:`round_snr` reaches ``snr_threshold`` (after at
        least ``min_round_users`` reports); ``max_round_users`` is a
        safety valve that forces an advance regardless of SNR, bounding
        the budget a pathologically flat class can absorb.
        """
        if snr_threshold <= 0:
            raise ConfigurationError(
                f"snr_threshold must be > 0, got {snr_threshold!r}"
            )
        if self.finished:
            return False
        if max_round_users is not None and self._round_n >= max_round_users:
            return True
        if self._round_n < max(int(min_round_users), 1):
            return False
        return self.round_snr() >= snr_threshold

    def maybe_advance(
        self,
        snr_threshold: float = 3.0,
        min_round_users: int = 1,
        max_round_users: Optional[int] = None,
    ) -> bool:
        """Adaptive round control: advance when the estimated SNR clears
        ``snr_threshold`` instead of waiting for a fixed user budget.
        Returns whether a round was advanced."""
        if self.should_advance(
            snr_threshold=snr_threshold,
            min_round_users=min_round_users,
            max_round_users=max_round_users,
        ):
            self.advance_round()
            return True
        return False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def topk(self, k: Optional[int] = None) -> dict[int, list[int]]:
        """Per-class top candidates, best first, queryable at any time.

        After the final round these are the mined item ids.  Mid-stream
        they rank the current frontier by the running round's supports:
        item ids once :attr:`depth` has reached full length, ``depth``-bit
        prefixes before that (a coarse preview of where the heavy hitters
        live).
        """
        k = self.k if k is None else int(k)
        if k < 1:
            raise DomainError(f"k must be >= 1, got {k}")
        if self._result is not None:
            return {label: list(items[:k]) for label, items in self._result.items()}
        out: dict[int, list[int]] = {}
        for label in range(self.n_classes):
            cand = self._candidates[label]
            if cand.size == 0:
                out[label] = []
                continue
            kept = top_indices(self._support[label], min(k, cand.size))
            out[label] = [int(v) for v in cand[kept]]
        return out

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the mining state to an ``.npz`` archive.

        Everything server-side round-trips — configuration, round/depth
        counters, each class's candidate frontier and running supports,
        and the final ranking once mining finished.  Client-side
        randomness is never part of the state; :meth:`restore` takes a
        fresh generator to resume ingestion.
        """
        from .checkpoint import save_state

        meta = {
            "session": "topk",
            "k": self.k,
            "epsilon": self.epsilon,
            "n_classes": self.n_classes,
            "n_items": self.n_items,
            "label_fraction": self.label_fraction,
            "keep": self.keep,
            "extension_bits": self.extension_bits,
            "invalid_mode": self.invalid_mode,
            "mode": self.mode,
            "depth": int(self._depth),
            "round": int(self._round),
            "round_n": int(self._round_n),
            "n": int(self._n),
            "finished": self._result is not None,
        }
        arrays = {"round_class_n": self._round_class_n}
        for label in range(self.n_classes):
            arrays[f"candidates_{label}"] = self._candidates[label]
            arrays[f"support_{label}"] = self._support[label]
            if self._result is not None:
                arrays[f"result_{label}"] = np.asarray(
                    self._result[label], dtype=np.int64
                )
        save_state(path, meta, arrays)

    @classmethod
    def restore(cls, path, rng: RngLike = None) -> "OnlineTopKSession":
        """Rebuild a miner checkpointed with :meth:`save`, resuming at the
        saved round with ``rng`` driving further ingestion."""
        from .checkpoint import load_state

        meta, arrays = load_state(path)
        if meta.get("session") != "topk":
            raise ConfigurationError(
                f"checkpoint holds a {meta.get('session')!r} state, "
                "not an OnlineTopKSession"
            )
        session = cls(
            k=meta["k"],
            epsilon=meta["epsilon"],
            n_classes=meta["n_classes"],
            n_items=meta["n_items"],
            label_fraction=meta["label_fraction"],
            keep=meta["keep"],
            extension_bits=meta["extension_bits"],
            invalid_mode=meta["invalid_mode"],
            mode=meta["mode"],
            rng=rng,
        )
        if not 0 <= meta["round"] <= session.n_rounds:
            raise ConfigurationError(
                f"checkpoint round {meta['round']} outside "
                f"[0, {session.n_rounds}]"
            )
        session._depth = int(meta["depth"])
        session._round = int(meta["round"])
        session._round_n = int(meta["round_n"])
        session._n = int(meta["n"])
        if "round_class_n" in arrays:
            stored = np.asarray(arrays["round_class_n"], dtype=np.int64)
            if stored.shape != (session.n_classes,):
                raise ConfigurationError(
                    f"checkpoint round_class_n has shape {stored.shape}, "
                    f"expected ({session.n_classes},)"
                )
            session._round_class_n = stored
        # (checkpoints predating per-class round counts restore to zeros:
        # round_snr() then reports 0.0 until fresh reports arrive, which
        # only delays an adaptive advance — never corrupts it.)
        candidates, support = [], []
        for label in range(session.n_classes):
            try:
                cand = arrays[f"candidates_{label}"]
                sup = arrays[f"support_{label}"]
            except KeyError:
                raise ConfigurationError(
                    f"checkpoint is missing class {label}'s frontier"
                ) from None
            cand = np.asarray(cand, dtype=np.int64)
            sup = np.asarray(sup, dtype=np.int64)
            if cand.shape != sup.shape:
                raise ConfigurationError(
                    f"class {label}: candidates {cand.shape} and supports "
                    f"{sup.shape} must align"
                )
            candidates.append(cand)
            support.append(sup)
        session._candidates = candidates
        session._support = support
        if meta["finished"]:
            session._result = {
                label: [int(v) for v in arrays[f"result_{label}"]]
                for label in range(session.n_classes)
            }
        return session

    def run(self, labels, items) -> dict[int, list[int]]:
        """Convenience: stream a full population through the remaining
        rounds (near-equal random cohorts, one per round) and return the
        mined per-class top-k."""
        labels = np.asarray(labels, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if labels.shape != items.shape:
            raise DomainError(
                f"labels ({labels.shape}) and items ({items.shape}) must align"
            )
        rounds_left = self.n_rounds - self._round
        if rounds_left <= 0:
            raise ProtocolError("mining is finished; nothing to run")
        order = self.rng.permutation(labels.size)
        for part in np.array_split(order, rounds_left):
            if part.size:
                self.ingest_batch(labels[part], items[part])
            self.advance_round()
        return self.topk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineTopKSession(k={self.k!r}, epsilon={self.epsilon!r}, "
            f"n_classes={self.n_classes!r}, n_items={self.n_items!r}, "
            f"mode={self.mode!r}, round={self._round}/{self.n_rounds}, "
            f"depth={self._depth})"
        )
