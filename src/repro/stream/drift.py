"""Distribution-drift detection against the closed-form noise floor.

A private estimate moves between queries for two reasons: LDP sampling
noise, whose magnitude the Section-V theorems bound exactly
(``OnlineFrameworkSession.estimate_variance``), and genuine change in
the underlying stream.  :class:`DriftDetector` separates the two with a
per-cell z-score: the residual between the current estimate and a
retained baseline, normalised by the combined standard deviation of
both snapshots.  A cell whose residual the noise bound cannot explain
(``|z| > threshold``) is flagged; the detector then re-baselines so the
next comparison starts from the post-shift regime.

The baseline and current snapshots share ingested history (minus decay),
so treating their variances as additive is conservative in the common
windowed case and at worst understates correlation — the threshold is a
knob, not a significance guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError

#: Default flag threshold in combined standard deviations.
DEFAULT_THRESHOLD = 4.0

#: Numerical floor for the combined variance (degenerate cells).
_VAR_FLOOR = 1e-12


@dataclass(frozen=True)
class DriftReport:
    """One drift check: the max cell z-score and what cleared the bar."""

    score: float
    drifted: bool
    threshold: float
    n_flagged: int
    flagged: list[tuple[int, int]] = field(default_factory=list)
    baseline_age: int = 0

    def to_dict(self) -> dict:
        return {
            "score": float(self.score),
            "drifted": bool(self.drifted),
            "threshold": float(self.threshold),
            "n_flagged": int(self.n_flagged),
            "flagged": [[int(c), int(i)] for c, i in self.flagged],
            "baseline_age": int(self.baseline_age),
        }


class DriftDetector:
    """Flag when an estimate's residual exceeds its variance bound.

    ``threshold`` is the z-score above which a cell counts as drifted;
    ``max_flagged`` caps how many (worst-first) cell coordinates a
    report carries.  The first :meth:`update` installs the baseline and
    reports a zero score.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        max_flagged: int = 16,
    ) -> None:
        if not threshold > 0:
            raise ConfigurationError(
                f"drift threshold must be > 0, got {threshold!r}"
            )
        if max_flagged < 1:
            raise ConfigurationError(
                f"max_flagged must be >= 1, got {max_flagged!r}"
            )
        self.threshold = float(threshold)
        self.max_flagged = int(max_flagged)
        self._baseline: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._baseline_age = 0
        self.n_checks = 0
        self.n_drift_events = 0

    @property
    def has_baseline(self) -> bool:
        return self._baseline is not None

    def rebaseline(self, estimate, variance) -> None:
        """Install ``(estimate, variance)`` as the comparison point."""
        estimate = np.asarray(estimate, dtype=np.float64)
        variance = np.asarray(variance, dtype=np.float64)
        if estimate.shape != variance.shape:
            raise ConfigurationError(
                f"estimate {estimate.shape} and variance {variance.shape} "
                "must align"
            )
        self._baseline = (estimate.copy(), variance.copy())
        self._baseline_age = 0

    def reset(self) -> None:
        """Drop the baseline; the next update starts fresh."""
        self._baseline = None
        self._baseline_age = 0

    def update(
        self,
        estimate,
        variance,
        threshold: Optional[float] = None,
        rebaseline_on_drift: bool = True,
    ) -> DriftReport:
        """Score the current snapshot against the baseline.

        Returns a :class:`DriftReport`; when drift is flagged and
        ``rebaseline_on_drift`` is set, the current snapshot becomes the
        new baseline so subsequent checks measure *further* movement.
        """
        bar = self.threshold if threshold is None else float(threshold)
        if not bar > 0:
            raise ConfigurationError(f"threshold must be > 0, got {bar!r}")
        estimate = np.asarray(estimate, dtype=np.float64)
        variance = np.asarray(variance, dtype=np.float64)
        self.n_checks += 1
        if self._baseline is None:
            self.rebaseline(estimate, variance)
            return DriftReport(
                score=0.0, drifted=False, threshold=bar,
                n_flagged=0, flagged=[], baseline_age=0,
            )
        base_est, base_var = self._baseline
        if estimate.shape != base_est.shape:
            raise ConfigurationError(
                f"snapshot shape {estimate.shape} does not match baseline "
                f"{base_est.shape}"
            )
        self._baseline_age += 1
        sigma = np.sqrt(np.maximum(base_var + variance, _VAR_FLOOR))
        z = np.abs(estimate - base_est) / sigma
        score = float(z.max()) if z.size else 0.0
        over = np.argwhere(z > bar)
        if over.size:
            order = np.argsort(z[tuple(over.T)])[::-1][: self.max_flagged]
            flagged = [tuple(int(v) for v in over[i]) for i in order]
        else:
            flagged = []
        drifted = score > bar
        report = DriftReport(
            score=score,
            drifted=drifted,
            threshold=bar,
            n_flagged=int(over.shape[0]),
            flagged=flagged,
            baseline_age=self._baseline_age,
        )
        if drifted:
            self.n_drift_events += 1
            if rebaseline_on_drift:
                self.rebaseline(estimate, variance)
        return report
