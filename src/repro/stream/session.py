"""Online framework sessions — incremental multi-class estimation.

An :class:`OnlineFrameworkSession` is the streaming counterpart of a
:class:`~repro.core.frameworks.base.MulticlassFramework`: instead of one
``estimate_frequencies(dataset)`` call it ingests ``(labels, items)``
batches as they arrive and answers queries at any point mid-stream:

* :meth:`~OnlineFrameworkSession.estimate` — the unbiased ``(c, d)`` pair
  count matrix from everything ingested so far;
* :meth:`~OnlineFrameworkSession.topk` — per-class top-k item ids;
* :meth:`~OnlineFrameworkSession.class_sizes` — estimated class amounts.

Sessions are *mergeable*: every framework's sufficient statistics are
additive counters, so :meth:`~OnlineFrameworkSession.merge` combines two
partial sessions (associatively and commutatively) and shard-parallel
ingestion through :class:`repro.stream.sharding.ShardedAggregator` yields
the same estimates as a single session.  Sessions checkpoint to ``.npz``
(:meth:`~OnlineFrameworkSession.save` /
:meth:`~OnlineFrameworkSession.load`).

Both framework execution modes are supported per batch: ``"simulate"``
draws the batch's sufficient statistics exactly (fast path — LDP noise is
iid per user, so batch-wise simulation induces the same law as the
one-shot run), ``"protocol"`` privatises each user's report through the
report-plane engine (:mod:`repro.mechanisms.engine`) — the same blockwise
``privatize_many`` → ``aggregate_batch`` primitive the one-shot
frameworks and the top-k miners use.  Streaming HEC differs from the
one-shot framework in one place: users are assigned to class groups
iid-uniformly on arrival rather than by an exact partition of the final
population, since a stream's total size is unknown; the calibration
divides by realised group sizes, so estimates stay unbiased.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.estimators import (
    calibrate_hec,
    calibrate_pts,
    calibrate_ptj,
    estimate_class_sizes,
)
from ..core.variance import (
    cp_variance_matrix,
    hec_variance_matrix,
    ldp_variance_matrix,
    pts_variance_matrix,
)
from ..core.frameworks.hec import simulate_hec_group_support
from ..core.frameworks.pts import route_labels_grr
from ..core.topk.reporting import topk_per_class
from ..exceptions import ConfigurationError, DomainError, ProtocolError
from ..mechanisms.adaptive import make_adaptive
from ..mechanisms.base import check_domain_size, check_epsilon
from ..mechanisms.budget import split_budget
from ..mechanisms.correlated import CorrelatedPerturbation, CorrelatedSupport
from ..mechanisms.engine import batch_support, grouped_batch_support
from ..mechanisms.grr import GeneralizedRandomResponse
from ..mechanisms.ue import OptimizedUnaryEncoding
from ..obs import metrics as _obs
from ..rng import RngLike, ensure_rng


class OnlineFrameworkSession:
    """Base class: batch ingestion, online queries, merge, checkpointing.

    Parameters mirror the one-shot frameworks; see the module docstring
    for semantics.  Subclasses declare ``_STATE_FIELDS`` — the names of
    their additive ``int64`` state arrays — and everything generic
    (merge, save/load, queries) is driven off that list.
    """

    name: str = "session"
    #: Names of the additive state arrays (attribute ``_<name>`` each).
    _STATE_FIELDS: tuple[str, ...] = ()

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        from ..core.frameworks.base import MODES

        self.epsilon = check_epsilon(epsilon)
        self.n_classes = check_domain_size(n_classes)
        self.n_items = check_domain_size(n_items)
        if mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.rng = ensure_rng(rng)
        self._n = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def n_ingested(self) -> int:
        """Number of user reports ingested so far."""
        return self._n

    def ingest_batch(self, labels, items=None) -> int:
        """Ingest one batch of users; returns the batch size.

        Accepts either two aligned arrays or a single ``(labels, items)``
        tuple (the form :class:`~repro.stream.sharding.ShardedAggregator`
        fans out).
        """
        if items is None:
            labels, items = labels
        labels = np.asarray(labels, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if labels.shape != items.shape:
            raise DomainError(
                f"labels ({labels.shape}) and items ({items.shape}) must align"
            )
        if labels.size == 0:
            return 0
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise DomainError(f"labels outside [0, {self.n_classes})")
        if items.min() < 0 or items.max() >= self.n_items:
            raise DomainError(f"items outside [0, {self.n_items})")
        if self.mode == "simulate":
            self._ingest_simulated(labels, items)
        else:
            self._ingest_protocol(labels, items)
        self._n += labels.size
        # Instruments are fetched per call, never cached on the session:
        # sessions pickle into process-pool shard workers and must not
        # carry lock-bearing telemetry objects.
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter(
                "stream_ingested_total", framework=self.name
            ).inc(int(labels.size))
        return int(labels.size)

    def ingest_dataset(self, dataset, batch_size: int = 65_536) -> int:
        """Stream a :class:`~repro.datasets.base.LabelItemDataset` through
        the session in ``batch_size`` slices; returns the user count."""
        if dataset.n_classes != self.n_classes or dataset.n_items != self.n_items:
            raise ConfigurationError(
                f"session configured for (c={self.n_classes}, d={self.n_items}) "
                f"but dataset has (c={dataset.n_classes}, d={dataset.n_items})"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        total = 0
        for start in range(0, dataset.n_users, batch_size):
            stop = start + batch_size
            total += self.ingest_batch(
                dataset.labels[start:stop], dataset.items[start:stop]
            )
        return total

    def _batch_pair_counts(self, labels: np.ndarray, items: np.ndarray) -> np.ndarray:
        flat = labels * self.n_items + items
        counts = np.bincount(flat, minlength=self.n_classes * self.n_items)
        return counts.reshape(self.n_classes, self.n_items)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        raise NotImplementedError

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # online queries
    # ------------------------------------------------------------------
    def estimate(self) -> np.ndarray:
        """Unbiased ``(c, d)`` pair-count estimates from the stream so far."""
        if self._n == 0:
            raise ProtocolError("no data ingested yet; estimate() needs reports")
        return self._estimate()

    def _estimate(self) -> np.ndarray:
        raise NotImplementedError

    def topk(self, k: int) -> dict[int, list[int]]:
        """Per-class top-``k`` item ids, most frequent first (online query)."""
        return topk_per_class(self.estimate(), k)

    def class_sizes(self) -> np.ndarray:
        """Estimated class amounts ``n̂_C`` from the stream so far."""
        return self.estimate().sum(axis=1)

    def estimate_variance(self) -> np.ndarray:
        """Per-cell ``(c, d)`` variance bound of :meth:`estimate`.

        The Section-V closed forms evaluated at the plug-in estimate
        (see ``repro.core.variance``'s ``*_variance_matrix`` helpers) —
        the noise floor the drift detector measures residuals against.
        """
        if self._n == 0:
            raise ProtocolError(
                "no data ingested yet; estimate_variance() needs reports"
            )
        return self._estimate_variance()

    def _estimate_variance(self) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # ageing
    # ------------------------------------------------------------------
    def decay(self, factor: float) -> None:
        """Exponentially age the stream: scale every additive counter (and
        the ingested-user count) by ``factor`` in ``(0, 1]``.

        Applied periodically this turns the session into a recency-weighted
        estimator for time-varying streams: old reports fade geometrically
        while fresh batches enter at full weight.  Supports and user counts
        shrink together, so the calibrations stay consistent; the integer
        rounding adds a vanishing O(1) perturbation per counter.

        The user count is rounded with the same half-to-even ``np.rint``
        as the counters and then clamped to at least 1 while any counter
        is nonzero — on sparse streams a long decay schedule can round
        ``_n`` down to 0 while support mass survives, which would make
        every calibration degenerate (or divide by zero) even though the
        session still holds signal.
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"decay factor must be in (0, 1], got {factor!r}"
            )
        if factor == 1.0:
            return
        any_nonzero = False
        for field in self._STATE_FIELDS:
            arr = np.rint(getattr(self, "_" + field) * factor).astype(np.int64)
            setattr(self, "_" + field, arr)
            any_nonzero = any_nonzero or bool(arr.any())
        self._n = int(np.rint(self._n * factor))
        if any_nonzero and self._n < 1:
            self._n = 1
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("stream_decay_total", framework=self.name).inc()

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: "OnlineFrameworkSession") -> "OnlineFrameworkSession":
        """Combined session (associative, commutative in distribution).

        Both sessions must share framework, budget and domains; the
        execution mode may differ (simulate and protocol batches produce
        the same sufficient statistics).
        """
        if type(other) is not type(self) or self._config() != other._config():
            raise ConfigurationError(
                f"cannot merge {self!r} with "
                f"{other!r}"
            )
        out = self._clone_config()
        for field in self._STATE_FIELDS:
            setattr(
                out,
                "_" + field,
                getattr(self, "_" + field) + getattr(other, "_" + field),
            )
        out._n = self._n + other._n
        return out

    def _config(self) -> dict:
        """Scalars a merge partner / checkpoint must agree on."""
        return {
            "session": self.name,
            "epsilon": self.epsilon,
            "n_classes": self.n_classes,
            "n_items": self.n_items,
        }

    def _config_kwargs(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "n_classes": self.n_classes,
            "n_items": self.n_items,
            "mode": self.mode,
            "rng": self.rng,
        }

    def _clone_config(self) -> "OnlineFrameworkSession":
        return type(self)(**self._config_kwargs())

    def copy(self) -> "OnlineFrameworkSession":
        """Detached snapshot of the aggregation state (shares the rng)."""
        out = self._clone_config()
        for field in self._STATE_FIELDS:
            setattr(out, "_" + field, getattr(self, "_" + field).copy())
        out._n = self._n
        return out

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the aggregation state to an ``.npz`` archive.

        Client-side randomness is not captured (the server never holds
        it); restore with :meth:`load`, passing a generator to resume
        ingestion.
        """
        from .checkpoint import save_state

        meta = dict(self._config())
        meta["mode"] = self.mode
        meta["n"] = int(self._n)
        arrays = {
            field: getattr(self, "_" + field) for field in self._STATE_FIELDS
        }
        save_state(path, meta, arrays)

    @classmethod
    def load(cls, path, rng: RngLike = None) -> "OnlineFrameworkSession":
        """Restore a session checkpointed with :meth:`save`."""
        from .checkpoint import load_state

        meta, arrays = load_state(path)
        name = meta["session"]
        session = make_session(
            name,
            epsilon=meta["epsilon"],
            n_classes=meta["n_classes"],
            n_items=meta["n_items"],
            mode=meta.get("mode", "simulate"),
            rng=rng,
            label_fraction=meta.get("label_fraction"),
        )
        if cls is not OnlineFrameworkSession and not isinstance(session, cls):
            raise ConfigurationError(
                f"checkpoint holds a {name!r} session, not {cls.name!r}"
            )
        for field in session._STATE_FIELDS:
            stored = np.asarray(arrays[field], dtype=np.int64)
            target = getattr(session, "_" + field)
            if stored.shape != target.shape:
                raise ConfigurationError(
                    f"checkpoint array {field!r} has shape {stored.shape}, "
                    f"expected {target.shape}"
                )
            setattr(session, "_" + field, stored)
        session._n = int(meta["n"])
        return session

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon!r}, "
            f"n_classes={self.n_classes!r}, n_items={self.n_items!r}, "
            f"mode={self.mode!r}, n_ingested={self._n})"
        )


class OnlinePTJ(OnlineFrameworkSession):
    """Streaming PTJ: one adaptive oracle over the joint ``c * d`` domain."""

    name = "ptj"
    _STATE_FIELDS = ("support",)

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        self._oracle = make_adaptive(
            self.epsilon, self.n_classes * self.n_items, rng=self.rng
        )
        self._support = np.zeros(self.n_classes * self.n_items, dtype=np.int64)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        counts = self._batch_pair_counts(labels, items).ravel()
        self._support += self._oracle.simulate_support(counts, rng=self.rng)

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        flat = labels * self.n_items + items
        self._support += batch_support(self._oracle, flat)

    def _estimate(self) -> np.ndarray:
        return calibrate_ptj(
            self._support, self._n, self._oracle.p, self._oracle.q, self.n_classes
        )

    def _estimate_variance(self) -> np.ndarray:
        return ldp_variance_matrix(
            self._estimate(), self._n, self._oracle.p, self._oracle.q
        )


class OnlinePTS(OnlineFrameworkSession):
    """Streaming PTS: GRR labels (ε₁) + OUE items (ε₂), grouped by
    perturbed label."""

    name = "pts"
    _STATE_FIELDS = ("pair_support", "label_counts")

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        label_fraction: float = 0.5,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        if self.n_classes < 2:
            raise ConfigurationError("PTS needs at least two classes")
        self.label_fraction = float(label_fraction)
        self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
        self._label_oracle = GeneralizedRandomResponse(
            self.epsilon1, self.n_classes, rng=self.rng
        )
        self._item_oracle = OptimizedUnaryEncoding(
            self.epsilon2, self.n_items, rng=self.rng
        )
        self._pair_support = np.zeros((self.n_classes, self.n_items), dtype=np.int64)
        self._label_counts = np.zeros(self.n_classes, dtype=np.int64)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        counts = self._batch_pair_counts(labels, items)
        routed = route_labels_grr(counts, self._label_oracle.p, self.rng)
        batch_label_counts = routed.sum(axis=1)
        p2, q2 = self._item_oracle.p, self._item_oracle.q
        ones = self.rng.binomial(routed, p2)
        zeros = self.rng.binomial(batch_label_counts[:, None] - routed, q2)
        self._pair_support += ones + zeros
        self._label_counts += batch_label_counts

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        perturbed = self._label_oracle.privatize_many(labels)
        self._pair_support += grouped_batch_support(
            self._item_oracle, perturbed, items, self.n_classes
        )
        self._label_counts += np.bincount(perturbed, minlength=self.n_classes)

    def _estimate(self) -> np.ndarray:
        return calibrate_pts(
            self._pair_support,
            self._label_counts,
            self._n,
            self._label_oracle.p,
            self._label_oracle.q,
            self._item_oracle.p,
            self._item_oracle.q,
        )

    def class_sizes(self) -> np.ndarray:
        if self._n == 0:
            raise ProtocolError("no data ingested yet; class_sizes() needs reports")
        return estimate_class_sizes(
            self._label_counts, self._n, self._label_oracle.p, self._label_oracle.q
        )

    def _estimate_variance(self) -> np.ndarray:
        return pts_variance_matrix(
            self._estimate(),
            self.class_sizes(),
            self._n,
            self._label_oracle.p,
            self._label_oracle.q,
            self._item_oracle.p,
            self._item_oracle.q,
        )

    def _config(self) -> dict:
        out = super()._config()
        out["label_fraction"] = self.label_fraction
        return out

    def _config_kwargs(self) -> dict:
        out = super()._config_kwargs()
        out["label_fraction"] = self.label_fraction
        return out


class OnlinePTSCP(OnlineFrameworkSession):
    """Streaming PTS-CP: correlated label-item perturbation with
    flag-filtered sufficient statistics."""

    name = "pts-cp"
    _STATE_FIELDS = ("item_support", "flag_support", "label_counts")

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        label_fraction: float = 0.5,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        if self.n_classes < 2:
            raise ConfigurationError("PTS-CP needs at least two classes")
        self.label_fraction = float(label_fraction)
        self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
        self._mechanism = CorrelatedPerturbation(
            self.epsilon1,
            self.epsilon2,
            n_classes=self.n_classes,
            n_items=self.n_items,
            rng=self.rng,
        )
        self._item_support = np.zeros((self.n_classes, self.n_items), dtype=np.int64)
        self._flag_support = np.zeros(self.n_classes, dtype=np.int64)
        self._label_counts = np.zeros(self.n_classes, dtype=np.int64)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        counts = self._batch_pair_counts(labels, items)
        support = self._mechanism.simulate_support(counts, rng=self.rng)
        self._item_support += support.item_support
        self._flag_support += support.flag_support
        self._label_counts += support.label_counts

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        support = batch_support(self._mechanism, (labels, items))
        self._item_support += support.item_support
        self._flag_support += support.flag_support
        self._label_counts += support.label_counts

    def _correlated_support(self) -> CorrelatedSupport:
        return CorrelatedSupport(
            item_support=self._item_support,
            flag_support=self._flag_support,
            label_counts=self._label_counts,
            n_users=self._n,
        )

    def _estimate(self) -> np.ndarray:
        return self._mechanism.estimate(self._correlated_support())

    def class_sizes(self) -> np.ndarray:
        if self._n == 0:
            raise ProtocolError("no data ingested yet; class_sizes() needs reports")
        return self._mechanism.estimate_class_sizes(self._correlated_support())

    def _estimate_variance(self) -> np.ndarray:
        return cp_variance_matrix(
            self._estimate(),
            self.class_sizes(),
            self._n,
            self._mechanism.p1,
            self._mechanism.q1,
            self._mechanism.p2,
            self._mechanism.q2,
        )

    def _config(self) -> dict:
        out = super()._config()
        out["label_fraction"] = self.label_fraction
        return out

    def _config_kwargs(self) -> dict:
        out = super()._config_kwargs()
        out["label_fraction"] = self.label_fraction
        return out


class OnlineHEC(OnlineFrameworkSession):
    """Streaming HEC: iid-uniform group assignment on arrival.

    The one-shot framework partitions the *known* user population into
    ``c`` equal groups; a stream's size is unknown, so each arriving user
    draws her group uniformly instead.  Realised group sizes enter the
    calibration, so estimates stay unbiased (up to HEC's inherent
    Theorem-4 deniability bias).
    """

    name = "hec"
    _STATE_FIELDS = ("group_support", "group_sizes")

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        self._oracle = make_adaptive(self.epsilon, self.n_items, rng=self.rng)
        self._group_support = np.zeros((self.n_classes, self.n_items), dtype=np.int64)
        self._group_sizes = np.zeros(self.n_classes, dtype=np.int64)

    def _ingest_simulated(self, labels: np.ndarray, items: np.ndarray) -> None:
        c, d = self.n_classes, self.n_items
        counts = self._batch_pair_counts(labels, items)
        assigned = self.rng.multinomial(counts.ravel(), np.full(c, 1.0 / c))
        for group in range(c):
            cells = assigned[:, group].reshape(c, d)
            size = int(cells.sum())
            if size == 0:
                continue
            valid = cells[group]
            n_invalid = size - int(valid.sum())
            self._group_support[group] += simulate_hec_group_support(
                self._oracle, valid, n_invalid, self.rng
            )
            self._group_sizes[group] += size

    def _ingest_protocol(self, labels: np.ndarray, items: np.ndarray) -> None:
        c, d = self.n_classes, self.n_items
        groups = self.rng.integers(0, c, size=labels.size)
        for group in range(c):
            mask = groups == group
            size = int(mask.sum())
            if size == 0:
                continue
            # Deniability: a foreign-label user reports a random item.
            values = np.where(
                labels[mask] == group,
                items[mask],
                self.rng.integers(0, d, size=size),
            )
            self._group_support[group] += batch_support(self._oracle, values)
            self._group_sizes[group] += size

    def _estimate(self) -> np.ndarray:
        if (self._group_sizes == 0).any():
            raise ProtocolError(
                "every HEC group needs at least one user before estimate(); "
                f"group sizes so far: {self._group_sizes.tolist()}"
            )
        return calibrate_hec(
            self._group_support,
            self._group_sizes.astype(np.float64),
            self._n,
            self._oracle.p,
            self._oracle.q,
        )

    def _estimate_variance(self) -> np.ndarray:
        return hec_variance_matrix(
            self._estimate(),
            self._group_sizes,
            self._n,
            self._oracle.p,
            self._oracle.q,
        )


#: Registry of session classes by framework name (mirrors FRAMEWORKS).
SESSIONS: dict[str, type[OnlineFrameworkSession]] = {
    "hec": OnlineHEC,
    "ptj": OnlinePTJ,
    "pts": OnlinePTS,
    "pts-cp": OnlinePTSCP,
}


def make_session(
    name: str,
    epsilon: float,
    n_classes: int,
    n_items: int,
    mode: str = "simulate",
    rng: RngLike = None,
    label_fraction: Optional[float] = None,
) -> OnlineFrameworkSession:
    """Build an online session by framework name (mirrors
    :func:`repro.core.frameworks.make_framework`)."""
    try:
        cls = SESSIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown framework {name!r}; choose from {sorted(SESSIONS)}"
        ) from None
    kwargs = dict(
        epsilon=epsilon, n_classes=n_classes, n_items=n_items, mode=mode, rng=rng
    )
    if label_fraction is not None:
        if name not in ("pts", "pts-cp"):
            raise ConfigurationError(
                f"label_fraction only applies to pts/pts-cp, not {name!r}"
            )
        kwargs["label_fraction"] = label_fraction
    return cls(**kwargs)
