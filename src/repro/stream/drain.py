"""Drain adapters — a uniform ingestion back-end for report front-ends.

An ingestion front-end (the asyncio collector in :mod:`repro.serve`, or
any other transport) produces ``(labels, items)`` batches and needs three
operations from the aggregation layer behind it: *submit* a batch,
*drain* everything queued, and take a queryable *snapshot*.  The two
streaming back-ends expose those operations differently — a
:class:`~repro.stream.sharding.ShardedAggregator` fans batches over
mergeable framework sessions, while an
:class:`~repro.stream.topk_session.OnlineTopKSession` is a single stateful
miner with no ``merge`` — so this module wraps both behind one interface:

* :class:`AggregatorDrain` — round-robin over a sharded aggregator,
  snapshot via ``merged()``;
* :class:`SessionDrain` — a single session-like target served by its own
  single-worker executor (FIFO, deterministic RNG consumption).

Both adapters optionally record every submitted batch (``record=True``) —
the *drain log* — so a transport path can be replayed offline through
identically seeded sessions and checked for exact equality, and both
carry the *decayed-ingest hook*: with ``decay`` set, every
``decay_every`` ingested reports the underlying state is aged by
:meth:`~repro.stream.session.OnlineFrameworkSession.decay`, turning any
front-end into a recency-weighted collector.  A target *window length*
can be given instead of the raw knobs (``window=``); it is translated
through :class:`~repro.stream.window.WindowPolicy`.

Every ageing pass — hook-driven or out-of-band via :meth:`BatchDrain.age`
— is appended to the drain log as an explicit decay event and bumps the
adapter's :attr:`~BatchDrain.generation` counter.  The log event makes
offline replay exact (replaying ingest alone would have to re-derive
decay points from thresholds, which differing batch splits would move);
the generation counter lets caches detect state changes that no submit
accompanied.

Adapters are not thread-safe: callers serialise ``submit``/``drain``
(the serve collector holds one asyncio lock per hosted session).
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs
from ..obs import trace as _trace
from .window import WindowPolicy

#: Shard slot of a decay event in the drain log.
DECAY_EVENT = "decay"

#: One recorded submission ``(shard_index, labels, items)`` — or a decay
#: event ``(DECAY_EVENT, factor, None)`` marking where ageing applied.
DrainLogEntry = tuple[int, np.ndarray, np.ndarray]


def _as_batch(labels, items) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.int64).ravel()
    items = np.asarray(items, dtype=np.int64).ravel()
    return labels, items


class BatchDrain:
    """Shared plumbing: decay hook, drain log, submission accounting."""

    def __init__(
        self,
        decay: Optional[float] = None,
        decay_every: Optional[int] = None,
        window: Optional[int] = None,
        record: bool = False,
    ) -> None:
        self.window_policy: Optional[WindowPolicy] = None
        if window is not None:
            if decay is not None or decay_every is not None:
                raise ConfigurationError(
                    "window and explicit decay/decay_every are mutually "
                    "exclusive — the window policy derives both knobs"
                )
            self.window_policy = WindowPolicy.from_window(window)
            decay, decay_every = self.window_policy.knobs()
        if (decay is None) != (decay_every is None):
            raise ConfigurationError(
                "decay and decay_every must be given together"
            )
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay!r}")
        if decay_every is not None and decay_every < 1:
            raise ConfigurationError(
                f"decay_every must be >= 1, got {decay_every!r}"
            )
        self.decay = decay
        self.decay_every = decay_every
        self._since_decay = 0
        #: Bumped on every ageing pass — state changes without a submit.
        self.generation = 0
        #: Reports handed to :meth:`submit` across the adapter's lifetime.
        #: Credited synchronously on the submitting thread, so front-ends
        #: can detect submitted-but-not-yet-credited work without waiting
        #: for a :meth:`drain` to reconcile :attr:`n_drained`.
        self.n_submitted = 0
        #: Reports folded into the underlying state across all drains.
        self.n_drained = 0
        self.drain_log: Optional[list[DrainLogEntry]] = [] if record else None

    def _observe_drain(self, drained: int) -> None:
        registry = _obs.get_registry()
        if registry.enabled and drained:
            registry.counter(
                "drain_reports_total", adapter=type(self).__name__
            ).inc(int(drained))

    def submit(self, labels, items, trace=None) -> Future:
        """Queue one batch.  ``trace`` (a
        :class:`~repro.obs.trace.TraceContext`, default ``None``) rides
        along to the aggregation layer so shard ingest spans parent on
        the submitting request; it never affects the estimate path."""
        raise NotImplementedError

    def drain(self) -> int:
        raise NotImplementedError

    def snapshot(self):
        """Queryable state covering everything drained so far."""
        raise NotImplementedError

    def worker_metrics(self) -> list[dict]:
        """Metrics snapshots from any worker processes behind this
        adapter (see :meth:`ShardedAggregator.worker_metrics`); empty
        for in-process targets."""
        return []

    def close(self) -> None:
        raise NotImplementedError

    def _record(self, shard: int, labels: np.ndarray, items: np.ndarray) -> None:
        if self.drain_log is not None:
            self.drain_log.append((shard, labels, items))

    def _decay_targets(self):
        """The session-like objects an ageing pass must touch."""
        raise NotImplementedError

    def _age(self, factor: float) -> None:
        """Apply ``factor`` to every target, bump the generation counter,
        and record the event in the drain log.  The compounded factor is
        logged (not the per-period knob) so replay applies exactly the
        rounding passes the live run did."""
        for target in self._decay_targets():
            target.decay(factor)
        self.generation += 1
        if self.drain_log is not None:
            self.drain_log.append((DECAY_EVENT, float(factor), None))

    def _apply_decay(self, drained: int) -> None:
        """One decay per ``decay_every`` ingested reports, regardless of
        how many drains (or how large a drain) delivered them: a drain
        covering several periods compounds the factor, and the remainder
        carries into the next drain, so the ageing schedule tracks the
        report count, not the caller's drain cadence."""
        if self.decay is None or self.decay == 1.0 or drained <= 0:
            return
        self._since_decay += drained
        periods = self._since_decay // self.decay_every
        if periods:
            self._age(self.decay**periods)
            self._since_decay -= periods * self.decay_every

    def age(self, factor: float) -> None:
        """Out-of-band ageing (wall-clock timers, operator commands) —
        decay that no ingest threshold triggered.  Pending submissions
        are drained first so the decay lands after them in both the
        state and the drain log."""
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"decay factor must be in (0, 1], got {factor!r}"
            )
        self.drain()
        if factor < 1.0:
            self._age(factor)

    def __enter__(self) -> "BatchDrain":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AggregatorDrain(BatchDrain):
    """Drain into a :class:`~repro.stream.sharding.ShardedAggregator`.

    The adapter owns the round-robin shard choice (instead of deferring to
    the aggregator's internal rotation) so the drain log can name the
    shard each batch landed on — replaying the log per shard, in order,
    through identically seeded sessions reproduces the merged state
    exactly.
    """

    def __init__(
        self,
        aggregator,
        decay: Optional[float] = None,
        decay_every: Optional[int] = None,
        window: Optional[int] = None,
        record: bool = False,
    ) -> None:
        super().__init__(
            decay=decay, decay_every=decay_every, window=window, record=record
        )
        if self.decay is not None:
            for shard in aggregator.partials():
                if not hasattr(shard, "decay"):
                    raise ConfigurationError(
                        f"shard {shard!r} does not support decay"
                    )
        self._aggregator = aggregator
        self._next = 0

    @property
    def aggregator(self):
        return self._aggregator

    def _decay_targets(self):
        return self._aggregator.partials()

    def submit(self, labels, items, trace=None) -> Future:
        labels, items = _as_batch(labels, items)
        shard = self._next % self._aggregator.n_shards
        self._next += 1
        self.n_submitted += int(labels.size)
        self._record(shard, labels, items)
        return self._aggregator.submit((labels, items), shard=shard, trace=trace)

    def drain(self) -> int:
        drained = self._aggregator.drain()
        self.n_drained += drained
        self._observe_drain(drained)
        self._apply_decay(drained)
        return drained

    def snapshot(self):
        # Drain through the adapter first (not just inside merged()) so
        # n_drained is credited and due decay periods apply before the
        # merge; merged()'s own internal drain is then a no-op.
        self.drain()
        return self._aggregator.merged()

    def worker_metrics(self) -> list[dict]:
        return self._aggregator.worker_metrics()

    def close(self) -> None:
        self._aggregator.close()


class SessionDrain(BatchDrain):
    """Drain into one session-like target (``ingest_batch`` of a
    ``(labels, items)`` tuple) through a private single-worker executor,
    keeping submissions FIFO like a one-shard aggregator.

    The natural target is an
    :class:`~repro.stream.topk_session.OnlineTopKSession`, whose rounds
    are global state no shard split can carry; queries and round control
    go through :meth:`snapshot`, which hands back the live target once
    pending work is drained.
    """

    def __init__(
        self,
        target,
        decay: Optional[float] = None,
        decay_every: Optional[int] = None,
        window: Optional[int] = None,
        record: bool = False,
    ) -> None:
        super().__init__(
            decay=decay, decay_every=decay_every, window=window, record=record
        )
        if self.decay is not None and not hasattr(target, "decay"):
            raise ConfigurationError(f"{target!r} does not support decay")
        self._target = target
        self._executor = ThreadPoolExecutor(max_workers=1)
        self._futures: list[Future] = []

    @property
    def target(self):
        return self._target

    def _decay_targets(self):
        return (self._target,)

    def submit(self, labels, items, trace=None) -> Future:
        labels, items = _as_batch(labels, items)
        self.n_submitted += int(labels.size)
        self._record(0, labels, items)
        if trace is not None and _trace.get_tracer().enabled:
            future = self._executor.submit(
                self._traced_ingest, (labels, items), trace
            )
        else:
            future = self._executor.submit(
                self._target.ingest_batch, (labels, items)
            )
        self._futures.append(future)
        return future

    def _traced_ingest(self, batch, trace):
        with _trace.get_tracer().span("session.ingest", trace, cat="shard"):
            return self._target.ingest_batch(batch)

    def drain(self) -> int:
        futures, self._futures = self._futures, []
        drained = sum(int(future.result() or 0) for future in futures)
        self.n_drained += drained
        self._observe_drain(drained)
        self._apply_decay(drained)
        return drained

    def snapshot(self):
        self.drain()
        return self._target

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def replay_drain_log(log, shards) -> list:
    """Replay a recorded drain log into fresh per-shard states.

    ``shards`` are session-like objects seeded exactly as the recorded
    run's shards were (e.g. via :func:`repro.rng.spawn` from the same base
    seed); each log entry is ingested into its shard in log order, which
    matches the per-shard FIFO of the original run.  Decay events are
    replayed in place — every shard is aged by the logged compounded
    factor, exactly where the live run aged its targets — so a decayed
    session replays bit-identically too.  Returns the mutated shard
    list — reduce with ``merge`` (or query the single shard) to compare
    against the live snapshot.
    """
    for shard, labels, items in log:
        if shard == DECAY_EVENT:
            for target in shards:
                target.decay(labels)
            continue
        if not 0 <= shard < len(shards):
            raise ConfigurationError(
                f"log names shard {shard} but only {len(shards)} given"
            )
        shards[shard].ingest_batch((labels, items))
    return list(shards)
