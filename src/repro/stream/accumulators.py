"""Mergeable support accumulators — the streaming server's state.

Every LDP frequency oracle's sufficient statistic is an *additive* support
vector: the aggregate of a report set is the elementwise sum of per-report
contributions.  A :class:`SupportAccumulator` exploits that to make
aggregation incremental and shardable:

* ``ingest_batch(reports)`` folds a batch of client reports into the
  accumulated support in one vectorised pass;
* ``merge(other)`` combines two partial states and is associative and
  commutative, so shards can aggregate independently and reduce in any
  order;
* after ingesting a report set — in any batch split, across any shard
  topology — ``support()`` equals the mechanism's one-shot ``aggregate``
  on the same reports, exactly.

Accumulators are deliberately mechanism-*parameter* aware (domain size,
hash range) but mechanism-*object* free: they hold no probabilities and no
RNG, only counts, so they serialise to plain arrays
(:meth:`SupportAccumulator.state_dict`, :meth:`SupportAccumulator.save`)
and can be shipped between processes.  Calibration stays with the
mechanism: ``mechanism.estimate(acc.support(), acc.n)``.

Every ``ingest_batch`` delegates to the same columnar kernels the
mechanisms' ``aggregate_batch`` methods use
(:mod:`repro.mechanisms.kernels` and the per-mechanism bulk folds), so
incremental and one-shot aggregation are literally the same code.

Build one with :func:`accumulator_for` (or ``mechanism.accumulator()``).
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from ..exceptions import AggregationError, ConfigurationError
from ..mechanisms.correlated import fold_correlated_batch
from ..mechanisms.kernels import (
    as_report_matrix as _as_report_matrix,
    bit_matrix_support,
    categorical_support,
)
from ..mechanisms.validity import flag_filtered_support


class SupportAccumulator(abc.ABC):
    """Mergeable, serialisable aggregation state for one report format.

    Subclasses hold only integer count arrays plus the domain parameters
    needed to validate reports and merges.  ``n`` counts ingested reports.
    """

    #: Machine-readable accumulator type, used by (de)serialisation.
    kind: str = "accumulator"

    def __init__(self) -> None:
        self.n = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ingest_batch(self, reports) -> int:
        """Fold a batch of reports into the state; returns the batch size."""

    def ingest(self, report) -> None:
        """Fold a single report (convenience wrapper over the batch path)."""
        self.ingest_batch([report])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def support(self) -> np.ndarray:
        """Accumulated support counts, matching the oracle's ``aggregate``."""

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: "SupportAccumulator") -> "SupportAccumulator":
        """Combined state of two accumulators (associative, commutative)."""
        self._check_mergeable(other)
        out = self.copy()
        for key, value in other._count_arrays().items():
            out._count_arrays()[key] += value
        out.n = self.n + other.n
        return out

    def _check_mergeable(self, other: "SupportAccumulator") -> None:
        if type(other) is not type(self) or other._params() != self._params():
            raise AggregationError(
                f"cannot merge {self.describe()} with "
                f"{other.describe() if isinstance(other, SupportAccumulator) else other!r}"
            )

    def copy(self) -> "SupportAccumulator":
        """Independent deep copy of the accumulated state."""
        return type(self).from_state(self.state_dict())

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _params(self) -> dict:
        """Domain parameters (plain scalars) identifying compatible states."""

    @abc.abstractmethod
    def _count_arrays(self) -> dict[str, np.ndarray]:
        """The live count arrays, keyed by state-dict name (not copies)."""

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self._params().items())
        return f"{type(self).__name__}({params}, n={self.n})"

    def state_dict(self) -> dict:
        """Plain-data snapshot: parameters, ``n``, and copied count arrays."""
        state: dict = {"kind": self.kind, "n": int(self.n)}
        state.update(self._params())
        for key, value in self._count_arrays().items():
            state[key] = value.copy()
        return state

    @classmethod
    def from_state(cls, state: Mapping) -> "SupportAccumulator":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        state = dict(state)
        kind = str(state.pop("kind"))
        if cls is SupportAccumulator:
            try:
                cls = ACCUMULATORS[kind]
            except KeyError:
                raise ConfigurationError(
                    f"unknown accumulator kind {kind!r}; "
                    f"choose from {sorted(ACCUMULATORS)}"
                ) from None
        elif kind != cls.kind:
            raise ConfigurationError(
                f"state of kind {kind!r} cannot restore a {cls.kind!r} accumulator"
            )
        n = int(state.pop("n"))
        arrays = {
            key: np.asarray(state.pop(key), dtype=np.int64)
            for key in list(state)
            if isinstance(state[key], np.ndarray)
        }
        out = cls(**{key: int(value) for key, value in state.items()})
        for key, value in arrays.items():
            target = out._count_arrays()[key]
            if target.shape != value.shape:
                raise ConfigurationError(
                    f"state array {key!r} has shape {value.shape}, "
                    f"expected {target.shape}"
                )
            target[...] = value
        out.n = n
        return out

    def save(self, path) -> None:
        """Checkpoint the state to ``path`` as an ``.npz`` archive."""
        from .checkpoint import save_state

        state = self.state_dict()
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        meta = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        save_state(path, meta, arrays)

    @classmethod
    def load(cls, path) -> "SupportAccumulator":
        """Restore an accumulator checkpointed with :meth:`save`."""
        from .checkpoint import load_state

        meta, arrays = load_state(path)
        return cls.from_state({**meta, **arrays})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class CountAccumulator(SupportAccumulator):
    """Categorical reports (GRR and the adaptive oracle's GRR arm).

    A report is one integer in ``[0, domain_size)``; the support is a
    bincount.
    """

    kind = "count"

    def __init__(self, domain_size: int) -> None:
        super().__init__()
        self.domain_size = int(domain_size)
        self._support = np.zeros(self.domain_size, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        if not isinstance(reports, np.ndarray):
            reports = list(reports)
        arr = np.asarray(reports, dtype=np.int64).ravel()
        if arr.size:
            self._support += categorical_support(arr, self.domain_size)
            self.n += arr.size
        return int(arr.size)

    def support(self) -> np.ndarray:
        return self._support.copy()

    def _params(self) -> dict:
        return {"domain_size": self.domain_size}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {"support": self._support}


class BitVectorAccumulator(SupportAccumulator):
    """Bit-vector reports (SUE/OUE unary encodings and RAPPOR Bloom bits).

    A report is a 0/1 vector of fixed ``width`` (the item domain for UE,
    the Bloom filter length for RAPPOR); the support is the column sum.
    """

    kind = "bits"

    def __init__(self, width: int) -> None:
        super().__init__()
        self.width = int(width)
        self._support = np.zeros(self.width, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        bits = _as_report_matrix(reports, self.width, "bit-vector")
        if bits.shape[0]:
            self._support += bit_matrix_support(bits, self.width)
            self.n += bits.shape[0]
        return int(bits.shape[0])

    def support(self) -> np.ndarray:
        return self._support.copy()

    def _params(self) -> dict:
        return {"width": self.width}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {"support": self._support}


class FlagFilteredAccumulator(SupportAccumulator):
    """Validity-perturbation reports: ``d`` item bits plus a validity flag.

    Matches :meth:`repro.mechanisms.validity.ValidityPerturbation.aggregate`:
    item bits count only when the report's perturbed flag is clear, and
    position ``d`` of :meth:`support` holds the flag support.
    """

    kind = "flag-filtered"

    def __init__(self, domain_size: int) -> None:
        super().__init__()
        self.domain_size = int(domain_size)
        self._item_support = np.zeros(self.domain_size, dtype=np.int64)
        self._flag_support = np.zeros(1, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        bits = _as_report_matrix(reports, self.domain_size + 1, "validity")
        if bits.shape[0]:
            support = flag_filtered_support(bits, self.domain_size)
            self._item_support += support[: self.domain_size]
            self._flag_support[0] += support[self.domain_size]
            self.n += bits.shape[0]
        return int(bits.shape[0])

    def support(self) -> np.ndarray:
        return np.concatenate([self._item_support, self._flag_support])

    def _params(self) -> dict:
        return {"domain_size": self.domain_size}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {"item_support": self._item_support, "flag_support": self._flag_support}


class LocalHashAccumulator(SupportAccumulator):
    """OLH reports ``(a, b, perturbed_hash)``.

    Uses the same vectorised bulk-hash path as
    :meth:`repro.mechanisms.olh.OptimalLocalHashing.aggregate`, so the
    ``O(n * d)`` hash evaluation is paid in NumPy blocks at ingest time
    and queries are O(1).
    """

    kind = "local-hash"

    def __init__(self, domain_size: int, g: int) -> None:
        super().__init__()
        self.domain_size = int(domain_size)
        self.g = int(g)
        self._support = np.zeros(self.domain_size, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        """Ingest ``(a, b, report)`` triples — any sequence/array of rows,
        or the column form: a tuple of three aligned ``np.ndarray``s.
        (Requiring arrays for the column form keeps a tuple of three
        report triples unambiguous: it is parsed as rows.)"""
        from ..mechanisms.olh import as_report_triples, bulk_hash_support

        if (
            isinstance(reports, tuple)
            and len(reports) == 3
            and all(isinstance(col, np.ndarray) for col in reports)
        ):
            a, b, r = (col.ravel() for col in reports)
        else:
            arr = as_report_triples(reports)
            if arr.size == 0:
                return 0
            a, b, r = arr[:, 0], arr[:, 1], arr[:, 2]
        self._support += bulk_hash_support(a, b, r, self.domain_size, self.g)
        self.n += int(r.size)
        return int(r.size)

    def support(self) -> np.ndarray:
        return self._support.copy()

    def _params(self) -> dict:
        return {"domain_size": self.domain_size, "g": self.g}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {"support": self._support}


class HadamardAccumulator(SupportAccumulator):
    """Hadamard-response reports ``(row, sign)``.

    The "support" is the signed correlation sum
    ``S_v = sum_u sign_u * H[row_u, v+1]``, evaluated blockwise with the
    vectorised parity kernel shared with
    :class:`repro.mechanisms.hadamard.HadamardResponse`.
    """

    kind = "hadamard"

    def __init__(self, domain_size: int, K: int) -> None:
        super().__init__()
        self.domain_size = int(domain_size)
        self.K = int(K)
        self._support = np.zeros(self.domain_size, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        from ..mechanisms.hadamard import as_report_pairs, bulk_signed_support

        arr = as_report_pairs(reports)
        if arr.size == 0:
            return 0
        self._support += bulk_signed_support(
            arr[:, 0], arr[:, 1], self.domain_size, self.K
        )
        self.n += int(arr.shape[0])
        return int(arr.shape[0])

    def support(self) -> np.ndarray:
        return self._support.copy()

    def _params(self) -> dict:
        return {"domain_size": self.domain_size, "K": self.K}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {"support": self._support}


class CorrelatedAccumulator(SupportAccumulator):
    """Correlated-perturbation reports ``(perturbed_label, bits)``.

    Maintains the three flag-filtered sufficient statistics of
    :class:`repro.mechanisms.correlated.CorrelatedSupport`; query with
    :meth:`as_correlated_support` and calibrate through the mechanism's
    ``estimate``.
    """

    kind = "correlated"

    def __init__(self, n_classes: int, n_items: int) -> None:
        super().__init__()
        self.n_classes = int(n_classes)
        self.n_items = int(n_items)
        self._item_support = np.zeros((self.n_classes, self.n_items), dtype=np.int64)
        self._flag_support = np.zeros(self.n_classes, dtype=np.int64)
        self._label_counts = np.zeros(self.n_classes, dtype=np.int64)

    def ingest_batch(self, reports) -> int:
        from ..mechanisms.correlated import as_correlated_columns

        c = self.n_classes
        labels, bits = as_correlated_columns(reports, self.n_items)
        if labels.size == 0:
            return 0
        if labels.min() < 0 or labels.max() >= c:
            raise AggregationError(f"label outside [0, {c})")
        fold_correlated_batch(
            labels, bits, self._item_support, self._flag_support, self._label_counts
        )
        self.n += int(labels.size)
        return int(labels.size)

    def support(self) -> np.ndarray:
        """Flag-filtered ``(c, d)`` item supports (the primary statistic)."""
        return self._item_support.copy()

    def as_correlated_support(self):
        """The accumulated state as a
        :class:`~repro.mechanisms.correlated.CorrelatedSupport` (views)."""
        from ..mechanisms.correlated import CorrelatedSupport

        return CorrelatedSupport(
            item_support=self._item_support,
            flag_support=self._flag_support,
            label_counts=self._label_counts,
            n_users=self.n,
        )

    def _params(self) -> dict:
        return {"n_classes": self.n_classes, "n_items": self.n_items}

    def _count_arrays(self) -> dict[str, np.ndarray]:
        return {
            "item_support": self._item_support,
            "flag_support": self._flag_support,
            "label_counts": self._label_counts,
        }


#: Registry of accumulator classes by serialisation kind.
ACCUMULATORS: dict[str, type[SupportAccumulator]] = {
    cls.kind: cls
    for cls in (
        CountAccumulator,
        BitVectorAccumulator,
        FlagFilteredAccumulator,
        LocalHashAccumulator,
        HadamardAccumulator,
        CorrelatedAccumulator,
    )
}


def accumulator_for(mechanism) -> SupportAccumulator:
    """Build the streaming accumulator matching ``mechanism``'s reports.

    Dispatches on the mechanism type: GRR (and the adaptive oracle's
    selected arm), UE/OUE/SUE, RAPPOR, OLH, Hadamard response, validity
    perturbation, and the correlated label-item mechanism.
    """
    from ..mechanisms.adaptive import AdaptiveMechanism
    from ..mechanisms.correlated import CorrelatedPerturbation
    from ..mechanisms.grr import GeneralizedRandomResponse
    from ..mechanisms.hadamard import HadamardResponse
    from ..mechanisms.olh import OptimalLocalHashing
    from ..mechanisms.rappor import Rappor
    from ..mechanisms.ue import UnaryEncoding
    from ..mechanisms.validity import ValidityPerturbation

    if isinstance(mechanism, AdaptiveMechanism):
        return accumulator_for(mechanism._inner)
    if isinstance(mechanism, CorrelatedPerturbation):
        return CorrelatedAccumulator(mechanism.n_classes, mechanism.n_items)
    if isinstance(mechanism, GeneralizedRandomResponse):
        return CountAccumulator(mechanism.domain_size)
    if isinstance(mechanism, ValidityPerturbation):
        return FlagFilteredAccumulator(mechanism.domain_size)
    if isinstance(mechanism, Rappor):
        return BitVectorAccumulator(mechanism.n_bits)
    if isinstance(mechanism, UnaryEncoding):
        return BitVectorAccumulator(mechanism.domain_size)
    if isinstance(mechanism, OptimalLocalHashing):
        return LocalHashAccumulator(mechanism.domain_size, mechanism.g)
    if isinstance(mechanism, HadamardResponse):
        return HadamardAccumulator(mechanism.domain_size, mechanism.K)
    raise ConfigurationError(
        f"no streaming accumulator for {type(mechanism).__name__}"
    )
