"""``.npz`` checkpointing for streaming state.

A checkpoint is a single NumPy archive holding the integer count arrays
of an accumulator or session plus a JSON metadata record (stored as a
zero-dimensional string array under ``__meta__``).  Everything is plain
data — no pickling — so checkpoints are safe to load from untrusted
storage and portable across processes and hosts.

Checkpoints capture *server-side aggregation state only*.  Client-side
randomness is not part of the state (the server never holds it), so a
restored session resumes ingestion with a caller-provided generator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs
from ..obs.log import log_event

PathLike = Union[str, Path]

#: Reserved archive key holding the JSON metadata record.
_META_KEY = "__meta__"


def save_state(path: PathLike, meta: Mapping, arrays: Mapping[str, np.ndarray]) -> Path:
    """Write ``meta`` (JSON-serialisable scalars) and ``arrays`` to ``path``.

    The ``.npz`` suffix is appended when missing (mirroring
    :func:`numpy.savez`); the resolved path is returned.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    payload = {}
    for key, value in arrays.items():
        if key == _META_KEY:
            raise ConfigurationError(f"array name {_META_KEY!r} is reserved")
        payload[key] = np.asarray(value)
    payload[_META_KEY] = np.asarray(json.dumps(dict(meta)))
    with open(path, "wb") as handle:
        np.savez(handle, **payload)
    registry = _obs.get_registry()
    if registry.enabled:
        registry.counter("checkpoint_saves_total").inc()
    log_event("checkpoint.save", path=str(path), session=meta.get("session"))
    return path


def load_state(path: PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Read back a checkpoint written by :func:`save_state`.

    Returns ``(meta, arrays)``.  Raises
    :class:`~repro.exceptions.ConfigurationError` when the archive lacks
    the metadata record (i.e. is not a repro checkpoint).
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise ConfigurationError(f"{path} is not a repro streaming checkpoint")
        meta = json.loads(str(archive[_META_KEY][()]))
        arrays = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    registry = _obs.get_registry()
    if registry.enabled:
        registry.counter("checkpoint_loads_total").inc()
    log_event("checkpoint.load", path=str(path), session=meta.get("session"))
    return meta, arrays
