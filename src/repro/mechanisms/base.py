"""Abstract base class for LDP frequency oracles.

A *frequency oracle* is the fundamental LDP primitive: each user privatises
one value from a finite domain, the server aggregates the reports into
per-value *support counts*, and a calibration step turns supports into
unbiased frequency estimates.

Every oracle in :mod:`repro.mechanisms` implements two equivalent paths:

``privatize`` / ``aggregate``
    The literal protocol — one report per user.  Both sides are columnar
    under the hood: ``privatize_many`` perturbs a whole batch of values
    into a plain ndarray of reports in one vectorised pass, and
    ``aggregate`` is a thin wrapper over ``aggregate_batch``, the
    vectorised fold shared with the streaming accumulators
    (:mod:`repro.stream.accumulators`) through the kernels in
    :mod:`repro.mechanisms.kernels`.  The batch execution engine
    (:mod:`repro.mechanisms.engine`) chains the two blockwise so no hot
    path ever dispatches per user in Python.

``simulate_support``
    An exact sufficient-statistic shortcut: the aggregated support counts
    are sums of independent Bernoulli variables, so they can be drawn
    directly from binomial (and multinomial) distributions.  This makes the
    paper's million-user experiments laptop-feasible.  Unless a subclass
    documents otherwise the simulated supports are *marginally exact*
    (each count has exactly the distribution induced by the per-user
    protocol); cross-value correlations may be simplified where the
    estimators only use marginals.

Subclasses must also report their theoretical estimator variance and the
per-user communication cost in bits so that the complexity experiments
(paper Table II) can be regenerated.
"""

from __future__ import annotations

import abc
import copy
import math
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..exceptions import AggregationError, DomainError, PrivacyBudgetError
from ..rng import RngLike, ensure_rng
from ..types import Report


def check_epsilon(epsilon: float) -> float:
    """Validate a privacy budget and return it as ``float``.

    Raises :class:`~repro.exceptions.PrivacyBudgetError` for non-positive
    or non-finite values.
    """
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyBudgetError(f"privacy budget must be finite and positive, got {epsilon}")
    return epsilon


def check_domain_size(domain_size: int, minimum: int = 1) -> int:
    """Validate a domain size and return it as ``int``."""
    domain_size = int(domain_size)
    if domain_size < minimum:
        raise DomainError(f"domain size must be >= {minimum}, got {domain_size}")
    return domain_size


class FrequencyOracle(abc.ABC):
    """Base class for single-domain LDP frequency oracles.

    Parameters
    ----------
    epsilon:
        The privacy budget ε.  The mechanism guarantees ε-LDP.
    domain_size:
        The number of values ``d`` in the input domain ``[0, d)``.
    rng:
        Seed or generator driving the client-side randomness.  Server-side
        estimation is deterministic.
    """

    #: Short machine-readable identifier (used in reports and benches).
    name: str = "oracle"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.domain_size = check_domain_size(domain_size)
        self.rng = ensure_rng(rng)

    def with_rng(self, rng: RngLike) -> "FrequencyOracle":
        """A shallow clone of this oracle driven by ``rng``.

        Shared parameters (probabilities, domains) are reused; only the
        generator is replaced.  The batch engine uses this to give every
        block of a threaded run its own pre-split random stream
        (:func:`repro.rng.spawn_seeds`) so results are independent of the
        thread count.  Oracles that hold sub-mechanisms override this to
        rebind every internal generator reference.
        """
        clone = copy.copy(self)
        clone.rng = ensure_rng(rng)
        return clone

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def privatize(self, value: int) -> Report:
        """Perturb one user's ``value`` into an ε-LDP report."""

    def privatize_many(self, values: np.ndarray) -> Union[Sequence[Report], np.ndarray]:
        """Privatise a batch of values (one independent report each).

        The base implementation returns a list; vectorised overrides
        (e.g. GRR) return an ``np.ndarray`` — treat the result as an
        opaque sequence of reports.
        """
        return [self.privatize(int(v)) for v in np.asarray(values).ravel()]

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def aggregate_batch(self, reports) -> np.ndarray:
        """Fold a columnar batch of reports into support counts.

        ``reports`` is whatever :meth:`privatize_many` returns (a plain
        ndarray in every subclass) or any sequence of single-report
        values; the fold is one vectorised pass with no per-report Python
        loop.  Shape of the result matches :meth:`aggregate`.
        """

    def aggregate(self, reports: Iterable[Report]) -> np.ndarray:
        """Fold reports into per-value support counts (shape ``(d,)``).

        Thin wrapper over :meth:`aggregate_batch` — the two are the same
        vectorised kernel.
        """
        return self.aggregate_batch(reports)

    @abc.abstractmethod
    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        """Calibrate support counts from ``n`` users into unbiased counts.

        Returns estimated *counts* (not probabilities); divide by ``n`` for
        relative frequencies.
        """

    def estimate_from_reports(
        self, reports: Iterable[Report], chunk_size: int = 8192
    ) -> np.ndarray:
        """Convenience: aggregate then estimate.

        Streams the iterable through :meth:`aggregate_batch` in
        ``chunk_size`` slices, counting users as it folds — the report
        set is never materialised in full.
        """
        support, n = self._aggregate_counting(reports, chunk_size)
        return self.estimate(support, n)

    def _aggregate_counting(self, reports, chunk_size: int):
        """Fold reports chunk-wise, returning ``(support, n_reports)``."""
        if isinstance(reports, np.ndarray):
            return self.aggregate_batch(reports), self._batch_size(reports)
        support = None
        n = 0
        buffer: list = []
        for report in reports:
            buffer.append(report)
            if len(buffer) >= chunk_size:
                block = self.aggregate_batch(buffer)
                support = block if support is None else support + block
                n += len(buffer)
                buffer = []
        if buffer or support is None:
            block = self.aggregate_batch(buffer)
            support = block if support is None else support + block
            n += len(buffer)
        return support, n

    def _batch_size(self, reports: np.ndarray) -> int:
        """Number of reports in an ndarray batch (1-D array = one report;
        scalar-report oracles override)."""
        arr = np.asarray(reports)
        return 1 if arr.ndim == 1 and arr.size else int(arr.shape[0])

    def accumulator(self):
        """Fresh mergeable streaming accumulator for this oracle's reports.

        The accumulator ingests report batches incrementally and merges
        associatively across shards; ``accumulator().support()`` after
        ingesting a report set equals :meth:`aggregate` on the same set.
        See :mod:`repro.stream.accumulators`.
        """
        from ..stream.accumulators import accumulator_for

        return accumulator_for(self)

    # ------------------------------------------------------------------
    # exact simulation fast path
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw aggregated support counts directly from their distribution.

        ``true_counts`` holds the exact number of users per value (shape
        ``(d,)``); the total user count is its sum.
        """

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def variance(self, n: int, true_count: float = 0.0) -> float:
        """Variance of the calibrated count estimate for one value.

        ``true_count`` is the value's true count; passing 0 gives the
        usual low-frequency approximation used for mechanism comparison.
        """

    @abc.abstractmethod
    def communication_bits(self) -> int:
        """Size of one client report in bits (paper Table II accounting)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _check_value(self, value: int) -> int:
        value = int(value)
        if not 0 <= value < self.domain_size:
            raise DomainError(
                f"value {value} outside domain [0, {self.domain_size})"
            )
        return value

    def _check_counts(self, true_counts: np.ndarray, size: Optional[int] = None) -> np.ndarray:
        counts = np.asarray(true_counts, dtype=np.int64)
        expected = self.domain_size if size is None else size
        if counts.shape != (expected,):
            raise AggregationError(
                f"expected counts of shape ({expected},), got {counts.shape}"
            )
        if (counts < 0).any():
            raise AggregationError("true counts must be non-negative")
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon!r}, "
            f"domain_size={self.domain_size!r})"
        )


def calibrate_counts(support: np.ndarray, n: int, p: float, q: float) -> np.ndarray:
    """Standard pure-protocol calibration ``(support - n*q) / (p - q)``.

    This is the unbiased inversion for any oracle where a value's support
    is ``Binom(n_v, p) + Binom(n - n_v, q)`` (GRR, UE family, OLH with
    ``q = 1/g``).
    """
    if p == q:
        raise AggregationError("calibration undefined for p == q")
    return (np.asarray(support, dtype=np.float64) - n * q) / (p - q)


def pure_protocol_variance(n: int, p: float, q: float, true_count: float = 0.0) -> float:
    """Exact variance of the calibrated count for a pure protocol.

    ``Var = [n_v p(1-p) + (n - n_v) q(1-q)] / (p-q)^2`` with
    ``n_v = true_count``.
    """
    numerator = true_count * p * (1.0 - p) + (n - true_count) * q * (1.0 - q)
    return numerator / (p - q) ** 2
