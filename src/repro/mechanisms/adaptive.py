"""Adaptive oracle selection (Wang et al., USENIX Security 2017).

GRR's variance beats OUE's exactly when the domain is small:
``d < 3 e^eps + 2``.  The paper's HEC and PTJ frameworks use this adaptive
rule (Section VII-D), so we expose it both as a predicate and as a wrapper
oracle that delegates to the winning mechanism.
"""

from __future__ import annotations

import math

from ..rng import RngLike
from .base import FrequencyOracle, check_domain_size, check_epsilon
from .grr import GeneralizedRandomResponse
from .ue import OptimizedUnaryEncoding


def grr_beats_oue(epsilon: float, domain_size: int) -> bool:
    """True when GRR has lower variance than OUE: ``d < 3 e^eps + 2``."""
    epsilon = check_epsilon(epsilon)
    domain_size = check_domain_size(domain_size)
    return domain_size < 3.0 * math.exp(epsilon) + 2.0


def make_adaptive(epsilon: float, domain_size: int, rng: RngLike = None) -> FrequencyOracle:
    """Build the variance-optimal oracle for ``(epsilon, domain_size)``."""
    if grr_beats_oue(epsilon, domain_size):
        return GeneralizedRandomResponse(epsilon, domain_size, rng=rng)
    return OptimizedUnaryEncoding(epsilon, domain_size, rng=rng)


class AdaptiveMechanism(FrequencyOracle):
    """Thin façade that owns whichever of GRR/OUE wins for the domain.

    All oracle methods delegate to the selected mechanism; ``selected``
    names the winner (``"grr"`` or ``"oue"``).
    """

    name = "adaptive"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        super().__init__(epsilon, domain_size, rng)
        self._inner = make_adaptive(epsilon, domain_size, rng=self.rng)

    @property
    def selected(self) -> str:
        """Name of the delegated oracle."""
        return self._inner.name

    def with_rng(self, rng):
        clone = super().with_rng(rng)
        clone._inner = self._inner.with_rng(clone.rng)
        return clone

    @property
    def p(self) -> float:
        return self._inner.p

    @property
    def q(self) -> float:
        return self._inner.q

    def privatize(self, value):
        return self._inner.privatize(value)

    def privatize_many(self, values):
        return self._inner.privatize_many(values)

    def aggregate(self, reports):
        return self._inner.aggregate(reports)

    def aggregate_batch(self, reports):
        return self._inner.aggregate_batch(reports)

    def _batch_size(self, reports):
        return self._inner._batch_size(reports)

    def estimate(self, support, n):
        return self._inner.estimate(support, n)

    def simulate_support(self, true_counts, rng=None):
        return self._inner.simulate_support(true_counts, rng=rng)

    def variance(self, n, true_count=0.0):
        return self._inner.variance(n, true_count)

    def communication_bits(self):
        return self._inner.communication_bits()
