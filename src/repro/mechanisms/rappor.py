"""One-shot RAPPOR (Bloom-filter randomized response).

The value is hashed by ``h`` hash functions into an ``m``-bit Bloom filter
and each bit is randomised symmetrically with flip parameter ``f``:
``Pr[bit stays 1] = 1 - f/2``, ``Pr[0 -> 1] = f/2``.  For the one-shot
variant (no permanent/instantaneous split) this satisfies ε-LDP with
``eps = 2h * ln((1 - f/2) / (f/2))``.

Decoding solves a non-negative least-squares system on the expected bit
counts (the paper's deployments use lasso; NNLS gives the same shape
without a regularisation hyper-parameter).  RAPPOR is Google Chrome's
collector cited in the paper's introduction; it is included as a substrate
baseline, not used by the multi-class frameworks themselves.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.optimize import nnls

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from .base import FrequencyOracle
from .kernels import bit_matrix_support

_PRIME = (1 << 61) - 1


class Rappor(FrequencyOracle):
    """One-shot RAPPOR with ``h`` hashes into ``m`` Bloom bits."""

    name = "rappor"

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        n_hashes: int = 2,
        n_bits: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, domain_size, rng)
        if n_hashes < 1:
            raise ValueError(f"need at least one hash, got {n_hashes}")
        self.n_hashes = int(n_hashes)
        self.n_bits = int(n_bits) if n_bits is not None else max(8, 2 * self.domain_size)
        # eps = 2h ln((1-f/2)/(f/2))  =>  f/2 = 1/(e^{eps/2h} + 1)
        half_f = 1.0 / (math.exp(self.epsilon / (2.0 * self.n_hashes)) + 1.0)
        self.p = 1.0 - half_f  # Pr[1 -> 1]
        self.q = half_f        # Pr[0 -> 1]
        # Shared (public) hash functions: one (a, b) pair per hash index.
        seed_rng = np.random.default_rng(0xB100F)
        self._hash_a = seed_rng.integers(1, _PRIME, size=self.n_hashes, dtype=np.uint64)
        self._hash_b = seed_rng.integers(0, _PRIME, size=self.n_hashes, dtype=np.uint64)
        self._design = self._build_design_matrix()

    def _bloom_positions(self, value: int) -> np.ndarray:
        value = np.uint64(value)
        return ((self._hash_a * value + self._hash_b) % _PRIME % np.uint64(self.n_bits)).astype(
            np.int64
        )

    def _build_design_matrix(self) -> np.ndarray:
        """``m x d`` 0/1 matrix: bit i set by value v's Bloom encoding."""
        design = np.zeros((self.n_bits, self.domain_size), dtype=np.float64)
        for v in range(self.domain_size):
            design[self._bloom_positions(v), v] = 1.0
        return design

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def encode(self, value: int) -> np.ndarray:
        value = self._check_value(value)
        bits = np.zeros(self.n_bits, dtype=np.uint8)
        bits[self._bloom_positions(value)] = 1
        return bits

    def privatize(self, value: int) -> np.ndarray:
        bits = self.encode(value)
        u = self.rng.random(self.n_bits)
        keep_prob = np.where(bits == 1, self.p, self.q)
        return (u < keep_prob).astype(np.uint8)

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Bloom-encode and flip a whole batch into ``(batch, m)`` uint8.

        Hash evaluation and the per-bit flips are one vectorised pass;
        each row consumes the generator exactly like :meth:`privatize`.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise DomainError(f"values outside domain [0, {self.domain_size})")
        encoded = np.zeros((values.size, self.n_bits), dtype=bool)
        if values.size:
            # (h, batch) Bloom positions of every value under every hash.
            positions = (
                (self._hash_a[:, None] * values.astype(np.uint64)[None, :] + self._hash_b[:, None])
                % _PRIME
                % np.uint64(self.n_bits)
            ).astype(np.int64)
            rows = np.broadcast_to(np.arange(values.size), positions.shape)
            encoded[rows, positions] = True
        u = self.rng.random((values.size, self.n_bits))
        return (u < np.where(encoded, self.p, self.q)).astype(np.uint8)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Column sums of a ``(batch, m)`` Bloom-bit report matrix."""
        return bit_matrix_support(reports, self.n_bits, "RAPPOR")

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        """NNLS decode: solve ``min ||X f - y||`` with the debiased bit
        counts ``y = (support - n q) / (p - q)``."""
        support = np.asarray(support, dtype=np.float64)
        if support.shape != (self.n_bits,):
            raise AggregationError(
                f"support shape {support.shape} != ({self.n_bits},)"
            )
        debiased = (support - n * self.q) / (self.p - self.q)
        estimate, _residual = nnls(self._design, debiased)
        return estimate

    # ------------------------------------------------------------------
    # simulation (exact at the bit level)
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Exact per-bit: bit i's count is ``Binom(set_i, p) + Binom(n-set_i, q)``
        where ``set_i`` is the number of users whose Bloom encoding sets i."""
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        n = int(counts.sum())
        set_counts = (self._design @ counts.astype(np.float64)).astype(np.int64)
        # Bloom collisions cannot push a bit past n users.
        set_counts = np.minimum(set_counts, n)
        ones = rng.binomial(set_counts, self.p)
        zeros = rng.binomial(n - set_counts, self.q)
        return (ones + zeros).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        """Variance of one debiased bit count (decode noise floor)."""
        numerator = true_count * self.p * (1 - self.p) + (n - true_count) * self.q * (1 - self.q)
        return numerator / (self.p - self.q) ** 2

    def communication_bits(self) -> int:
        return self.n_bits
