"""Validity perturbation mechanism (paper Section IV-A).

Unary encoding over ``d + 1`` bits whose last bit is a *validity flag*:

* a **valid** item ``v`` encodes as the one-hot vector with bit ``v`` set
  and the flag clear;
* an **invalid** item (pruned from the candidate set, or disqualified by a
  perturbed label in the correlated mechanism) encodes as the all-zero
  vector with only the flag set.

Every bit is then flipped with the OUE probabilities ``p = 1/2``,
``q = 1/(e^eps + 1)``, so the mechanism satisfies ε-LDP (paper Theorem 1 —
the encoding *is* OUE over a ``(d+1)``-value domain).

Aggregation is **flag-filtered**: a report supports item ``v`` only when
bit ``v`` is set *and* the perturbed validity flag is clear.  This is what
produces the paper's Theorem 5/7 accounting — an invalid user pollutes a
valid item with probability ``q(1-p)`` (the background flip ``q`` must
coincide with the flag surviving as 0, probability ``1-p``), versus
``q + (p-q)/d`` for the conventional "replace with a random valid item"
trick (Theorem 4).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from ..types import INVALID_ITEM
from .base import FrequencyOracle
from .kernels import as_report_matrix, perturb_onehot_batch


def flag_filtered_support(bits: np.ndarray, domain_size: int) -> np.ndarray:
    """Flag-filtered fold of ``(batch, d + 1)`` validity reports.

    Positions ``0..d-1`` sum the item bits of reports whose perturbed flag
    is clear; position ``d`` counts the reports whose flag is set.  The
    one vectorised statement of the paper's Section IV-A server law,
    shared by :meth:`ValidityPerturbation.aggregate_batch` and the
    streaming accumulator
    (:class:`repro.stream.accumulators.FlagFilteredAccumulator`).
    """
    bits = as_report_matrix(bits, domain_size + 1, "validity")
    flag = bits[:, domain_size].astype(bool)
    support = np.zeros(domain_size + 1, dtype=np.int64)
    support[:domain_size] = bits[~flag, :domain_size].sum(axis=0, dtype=np.int64)
    support[domain_size] = int(flag.sum())
    return support


class ValidityPerturbation(FrequencyOracle):
    """OUE over ``d`` valid items plus one validity-flag position.

    ``domain_size`` counts only the valid items; reports have ``d + 1``
    bits.  :meth:`privatize` accepts ``repro.types.INVALID_ITEM`` (or any
    negative value) to mark the user's item invalid.
    """

    name = "vp"

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        p: Optional[float] = None,
        q: Optional[float] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, domain_size, rng)
        self.p = 0.5 if p is None else float(p)
        self.q = 1.0 / (math.exp(self.epsilon) + 1.0) if q is None else float(q)
        if not (0.0 < self.q < self.p <= 1.0):
            raise ValueError(f"need 0 < q < p <= 1, got p={self.p}, q={self.q}")

    @property
    def report_length(self) -> int:
        """Number of bits in one report (items + validity flag)."""
        return self.domain_size + 1

    @property
    def flag_position(self) -> int:
        """Index of the validity-flag bit."""
        return self.domain_size

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def encode(self, value: int) -> np.ndarray:
        """Encode a valid item or ``INVALID_ITEM`` into ``d + 1`` bits."""
        bits = np.zeros(self.report_length, dtype=np.uint8)
        if value == INVALID_ITEM or value < 0:
            bits[self.flag_position] = 1
            return bits
        value = self._check_value(value)
        bits[value] = 1
        return bits

    def perturb_bits(self, bits: np.ndarray) -> np.ndarray:
        """Flip each of the ``d + 1`` bits with the (p, q) law."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.report_length,):
            raise AggregationError(
                f"expected bits of shape ({self.report_length},), got {bits.shape}"
            )
        u = self.rng.random(self.report_length)
        keep_prob = np.where(bits == 1, self.p, self.q)
        return (u < keep_prob).astype(np.uint8)

    def privatize(self, value: int) -> np.ndarray:
        return self.perturb_bits(self.encode(value))

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Perturb a batch into ``(batch, d + 1)`` uint8 reports.

        Negative values (:data:`~repro.types.INVALID_ITEM`) set the
        validity flag instead of an item bit; everything then flips with
        the ``(p, q)`` law in one vectorised pass, draw-for-draw identical
        to :meth:`privatize`.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        if values.size and values.max() >= self.domain_size:
            raise DomainError(f"values outside domain [0, {self.domain_size})")
        positions = np.where(values < 0, self.flag_position, values)
        return perturb_onehot_batch(
            positions, self.report_length, self.p, self.q, self.rng
        )

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Fold reports into ``d + 1`` support counts.

        Positions ``0..d-1`` hold the *flag-filtered* item supports
        (reports whose perturbed flag is clear); position ``d`` holds the
        raw flag support (number of reports whose perturbed flag is set).
        One pass through :func:`flag_filtered_support`.
        """
        return flag_filtered_support(reports, self.domain_size)

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        """Unbiased valid-item counts (length ``d``).

        With flag filtering the expected support of item ``v`` is
        ``n_v (1-q)(p-q) + n q(1-q) - m q(p-q)`` where ``m`` is the number
        of invalid users; ``m`` is itself estimated unbiasedly from the
        flag support, giving an overall unbiased inversion.
        """
        support = np.asarray(support, dtype=np.float64)
        if support.shape != (self.report_length,):
            raise AggregationError(
                f"support shape {support.shape} != ({self.report_length},)"
            )
        p, q = self.p, self.q
        m_hat = self.estimate_invalid_count(support, n)
        item_support = support[: self.domain_size]
        return (item_support - n * q * (1.0 - q) + m_hat * q * (p - q)) / (
            (1.0 - q) * (p - q)
        )

    def estimate_invalid_count(self, support: np.ndarray, n: int) -> float:
        """Unbiased estimate of the number of invalid users from the flag."""
        support = np.asarray(support, dtype=np.float64)
        return float((support[self.flag_position] - n * self.q) / (self.p - self.q))

    # ------------------------------------------------------------------
    # exact simulation
    # ------------------------------------------------------------------
    def simulate_support(
        self,
        true_counts: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        n_invalid: int = 0,
    ) -> np.ndarray:
        """Marginally exact supports for valid-item counts plus invalid users.

        Per item ``v``: holders pass the filter with probability
        ``p(1-q)``, other valid users with ``q(1-q)``, invalid users with
        ``q(1-p)``.  The flag support is ``Binom(m, p) + Binom(n-m, q)``.
        Cross-position correlation through the shared flag is not
        reproduced (the estimators only use marginals).
        """
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        if n_invalid < 0:
            raise DomainError(f"n_invalid must be >= 0, got {n_invalid}")
        m = int(n_invalid)
        n = int(counts.sum()) + m
        p, q = self.p, self.q
        holders = rng.binomial(counts, p * (1.0 - q))
        others = rng.binomial(n - m - counts, q * (1.0 - q))
        invalid = rng.binomial(m, q * (1.0 - p))
        item_support = holders + others + invalid
        flag_support = rng.binomial(m, p) + rng.binomial(n - m, q)
        return np.concatenate([item_support, [flag_support]]).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        """Variance of the calibrated count of one item, all users valid.

        The support is Bernoulli(``p(1-q)``) for holders and
        Bernoulli(``q(1-q)``) for the rest; the ``m_hat`` correction term
        contributes nothing when ``m = 0`` in expectation and its variance
        is dominated by the item-support term, which we report here.  The
        full Theorem 7 decomposition (with invalid users) lives in
        :func:`repro.core.variance.vp_count_variance`.
        """
        ph = self.p * (1.0 - self.q)
        qh = self.q * (1.0 - self.q)
        numerator = true_count * ph * (1.0 - ph) + (n - true_count) * qh * (1.0 - qh)
        return numerator / ((1.0 - self.q) * (self.p - self.q)) ** 2

    def communication_bits(self) -> int:
        return self.report_length

    def invalid_noise_expectation(self, n_invalid: int) -> float:
        """Theorem 5: expected raw-count noise an invalid user population
        injects into one valid item, ``m q (1 - p)``."""
        return float(n_invalid) * self.q * (1.0 - self.p)
