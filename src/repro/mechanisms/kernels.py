"""Columnar report kernels — the report plane's shared vocabulary.

Every LDP oracle in this package privatises and aggregates *batches* of
reports through a handful of vectorised kernels.  They live here, below
both the oracles and the streaming accumulators, so the one-shot
``aggregate_batch`` path and the incremental ``ingest_batch`` path are the
same code — the two cannot drift apart.

The kernels operate on plain ndarrays (no mechanism objects, no RNG state
beyond an explicit generator argument) and therefore compose freely: the
batch execution engine (:mod:`repro.mechanisms.engine`) slices value
arrays into bounded blocks and pushes each block through
``privatize_many`` → ``aggregate_batch``, both of which bottom out here.

The arithmetic itself lives in the pluggable backend registry
(:mod:`repro.mechanisms.backends`): the wrappers here validate and
instrument, then dispatch to whichever implementation — the NumPy
reference or a compiled ``nogil`` variant — is active for the process.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AggregationError
from ..obs import metrics as _obs
from .backends import get_kernel


def as_report_array(reports, name: str = "categorical") -> np.ndarray:
    """Normalise categorical (integer) reports into a flat int64 array."""
    if isinstance(reports, np.ndarray):
        return np.asarray(reports, dtype=np.int64).ravel()
    try:
        return np.asarray(reports, dtype=np.int64).ravel()
    except (TypeError, ValueError):
        # Only consumable iterators (generators) need the list round-trip;
        # sequences convert directly above without the extra copy.
        return np.asarray(list(reports), dtype=np.int64).ravel()


def as_report_matrix(reports, width: int, name: str) -> np.ndarray:
    """Normalise bit-vector reports into a ``(batch, width)`` array.

    Accepts an ndarray, a sequence of per-user vectors, or a single 1-D
    report (treated as a batch of one).
    """
    if not isinstance(reports, np.ndarray):
        if not hasattr(reports, "__len__"):
            # Consumable iterator: materialise once.  Sized sequences
            # (lists of rows) convert below without the list() copy.
            reports = list(reports)
        if not len(reports):
            return np.zeros((0, width), dtype=np.int64)
        reports = np.asarray(reports)
    if reports.ndim == 1:
        reports = reports[None, :] if reports.size else reports.reshape(0, width)
    if reports.ndim != 2 or reports.shape[1] != width:
        raise AggregationError(
            f"{name} reports must have shape (batch, {width}), got {reports.shape}"
        )
    return reports


def categorical_support(reports, domain_size: int, name: str = "categorical") -> np.ndarray:
    """Support counts of categorical reports: a validated bincount.

    The domain check is fused into the counting pass (no separate
    ``min()``/``max()`` sweeps); out-of-domain reports raise
    :class:`~repro.exceptions.AggregationError` either way.
    """
    arr = as_report_array(reports, name)
    registry = _obs.get_registry()
    if registry.enabled:
        registry.counter(
            "kernel_support_reports_total", kernel="categorical"
        ).inc(int(arr.size))
    return get_kernel("categorical_support")(arr, int(domain_size), name)


def bit_matrix_support(reports, width: int, name: str = "bit-vector") -> np.ndarray:
    """Support counts of bit-vector reports: the validated column sum."""
    bits = as_report_matrix(reports, width, name)
    registry = _obs.get_registry()
    if registry.enabled:
        registry.counter(
            "kernel_support_reports_total", kernel="bit_matrix"
        ).inc(int(bits.shape[0]))
    return bits.sum(axis=0, dtype=np.int64)


def perturb_onehot_batch(
    positions: np.ndarray,
    width: int,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Perturbed one-hot rows: ``positions[u]`` is user ``u``'s set bit and
    every bit keeps/flips with the ``(p, q)`` law.

    The one unary-encoding perturbation kernel shared by OUE/SUE, the
    validity perturbation (whose set bit may be the flag) and the
    correlated mechanism's item stage.  Each row consumes ``width``
    uniforms in order, so a batch is draw-for-draw identical to the
    per-user ``privatize`` loop on the same generator.

    Memory is ``batch × width``; callers with unbounded batches go through
    :func:`repro.mechanisms.engine.batch_support`, which blocks the input.
    """
    positions = np.asarray(positions, dtype=np.int64).ravel()
    registry = _obs.get_registry()
    if not registry.enabled:
        return _perturb_onehot(positions, width, p, q, rng)
    registry.histogram(
        "kernel_onehot_rows", buckets=_obs.DEFAULT_COUNT_BUCKETS
    ).observe(positions.size)
    with registry.span("kernel_onehot_seconds"):
        return _perturb_onehot(positions, width, p, q, rng)


def _perturb_onehot(
    positions: np.ndarray,
    width: int,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> np.ndarray:
    return get_kernel("perturb_onehot")(positions, width, p, q, rng)
