"""Correlated perturbation mechanism (paper Section IV-B).

The label-item pair is perturbed in a correlated manner with the budget
split ε = ε₁ + ε₂:

1. **Label perturbation** — the label is perturbed by GRR over the ``c``
   classes with budget ε₁ (probabilities ``p₁, q₁``).
2. **Item perturbation** — if the perturbed label differs from the true
   label the item becomes *invalid*; the (possibly invalidated) item is
   then perturbed with the validity perturbation mechanism under ε₂
   (probabilities ``p₂ = 1/2``, ``q₂ = 1/(e^{ε₂}+1)``).

The perturbed label doubles as the validity flag's ground truth, so no
extra budget is spent publishing item validity.  The server groups reports
by perturbed label and applies flag-filtered counting; Eq. (4) of the paper
gives the unbiased frequency calibration (:meth:`CorrelatedPerturbation.estimate`,
verified in ``tests/mechanisms/test_correlated.py``).

Expected support of cell ``(C, I)`` given pair frequency ``f``, class size
``n`` and population ``N``::

    E[support] = f  * p1 (1-q2) p2        # survived label, true item
               + (n - f) * p1 (1-q2) q2   # survived label, other item
               + (N - n) * q1 (1-p2) q2   # label flipped into C -> invalid

which matches the three coefficients in the paper's Theorem 8 / Eq. (5).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..exceptions import AggregationError, ConfigurationError, DomainError
from ..rng import RngLike, ensure_rng
from ..types import INVALID_ITEM
from .base import check_domain_size, check_epsilon
from .grr import GeneralizedRandomResponse, grr_probabilities
from .kernels import as_report_matrix, perturb_onehot_batch
from .validity import ValidityPerturbation


def fold_correlated_batch(
    labels: np.ndarray,
    bits: np.ndarray,
    item_support: np.ndarray,
    flag_support: np.ndarray,
    label_counts: np.ndarray,
) -> None:
    """Flag-filtered fold of ``(label, bits)`` reports into the three
    correlated sufficient-statistic arrays, in place.

    The single vectorised statement of the server-side law (paper
    Section IV-B): item bits count only under a clear perturbed flag.
    Shared by :meth:`CorrelatedPerturbation.aggregate_batch`, the
    streaming accumulator
    (:class:`repro.stream.accumulators.CorrelatedAccumulator`) and the
    streaming PTS-CP session, so the fold cannot drift between them.
    """
    d = item_support.shape[1]
    flag = bits[:, d].astype(bool)
    label_counts += np.bincount(labels, minlength=label_counts.size)
    flag_support += np.bincount(labels[flag], minlength=flag_support.size)
    np.add.at(item_support, labels[~flag], bits[~flag, :d].astype(np.int64))


def as_correlated_columns(reports, n_items: int) -> tuple[np.ndarray, np.ndarray]:
    """Normalise CP reports into aligned ``(labels, bits)`` columns.

    Accepts the columnar form (a 2-tuple of a label array and a
    ``(batch, d + 1)`` bit matrix) or any iterable of per-user
    ``(label, bits)`` pairs.
    """
    if isinstance(reports, tuple) and len(reports) == 2:
        labels = np.asarray(reports[0], dtype=np.int64).ravel()
        bits = as_report_matrix(reports[1], n_items + 1, "correlated")
    else:
        reports = list(reports)
        if not reports:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, n_items + 1), dtype=np.int64),
            )
        labels = np.asarray([label for label, _ in reports], dtype=np.int64)
        bits = as_report_matrix(
            np.asarray([np.asarray(b) for _, b in reports]),
            n_items + 1,
            "correlated",
        )
    if labels.size != bits.shape[0]:
        raise AggregationError(
            f"labels ({labels.size}) and bits ({bits.shape[0]}) must align"
        )
    return labels, bits


@dataclass
class CorrelatedSupport:
    """Server-side sufficient statistics of the correlated mechanism.

    Attributes
    ----------
    item_support:
        ``(c, d)`` flag-filtered supports: report counted at ``[C', I]``
        when the perturbed label is ``C'``, bit ``I`` is set, and the
        perturbed validity flag is clear.
    flag_support:
        ``(c,)`` per-class counts of reports whose perturbed flag is set.
    label_counts:
        ``(c,)`` raw counts of reports per perturbed label (the paper's
        ``ñ``).
    n_users:
        Total number of reports aggregated.
    """

    item_support: np.ndarray
    flag_support: np.ndarray
    label_counts: np.ndarray
    n_users: int

    def __add__(self, other: "CorrelatedSupport") -> "CorrelatedSupport":
        if self.item_support.shape != other.item_support.shape:
            raise AggregationError("cannot merge supports of different shapes")
        return CorrelatedSupport(
            self.item_support + other.item_support,
            self.flag_support + other.flag_support,
            self.label_counts + other.label_counts,
            self.n_users + other.n_users,
        )


class CorrelatedPerturbation:
    """ε-LDP correlated label-item perturbation (ε = ε₁ + ε₂).

    Parameters
    ----------
    epsilon1, epsilon2:
        Label and item budgets.  The paper's default split is
        ε₁ = ε₂ = ε/2 (see :func:`repro.mechanisms.budget.split_budget`).
    n_classes, n_items:
        Label domain size ``c`` and (valid) item domain size ``d``.
    """

    name = "cp"

    def __init__(
        self,
        epsilon1: float,
        epsilon2: float,
        n_classes: int,
        n_items: int,
        rng: RngLike = None,
    ) -> None:
        self.epsilon1 = check_epsilon(epsilon1)
        self.epsilon2 = check_epsilon(epsilon2)
        self.n_classes = check_domain_size(n_classes)
        self.n_items = check_domain_size(n_items)
        self.rng = ensure_rng(rng)
        self.p1, self.q1 = grr_probabilities(self.epsilon1, self.n_classes)
        if self.n_classes == 1:
            raise ConfigurationError(
                "correlated perturbation needs at least two classes; "
                "with one class use ValidityPerturbation directly"
            )
        self._label_mech = GeneralizedRandomResponse(
            self.epsilon1, self.n_classes, rng=self.rng
        )
        self._item_mech = ValidityPerturbation(self.epsilon2, self.n_items, rng=self.rng)
        self.p2 = self._item_mech.p
        self.q2 = self._item_mech.q

    @property
    def epsilon(self) -> float:
        """Total budget ε = ε₁ + ε₂ consumed per user."""
        return self.epsilon1 + self.epsilon2

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def privatize(self, label: int, item: int) -> tuple[int, np.ndarray]:
        """Perturb one label-item pair into ``(perturbed_label, bits)``.

        ``item`` may be ``INVALID_ITEM`` when the user's item was already
        pruned from the candidate set; it is then invalid regardless of
        the label's fate.
        """
        if not 0 <= label < self.n_classes:
            raise DomainError(f"label {label} outside [0, {self.n_classes})")
        perturbed_label = self._label_mech.privatize(label)
        item_is_valid = item != INVALID_ITEM and item >= 0
        if perturbed_label != label:
            item_is_valid = False
        bits = self._item_mech.privatize(item if item_is_valid else INVALID_ITEM)
        return (perturbed_label, bits)

    def with_rng(self, rng):
        """A shallow clone driven by ``rng`` (see
        :meth:`repro.mechanisms.base.FrequencyOracle.with_rng`).

        Both sub-mechanisms share the parent's generator object, so the
        clone rebinds all three references to the *same* new generator —
        preserving the exact draw interleaving of the original."""
        clone = copy.copy(self)
        clone.rng = ensure_rng(rng)
        clone._label_mech = self._label_mech.with_rng(clone.rng)
        clone._item_mech = self._item_mech.with_rng(clone.rng)
        return clone

    def privatize_many(
        self, labels: np.ndarray, items: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Perturb a batch of label-item pairs into columnar reports.

        Returns ``(perturbed_labels, bits)`` — an int64 label array and a
        ``(batch, d + 1)`` uint8 bit matrix — computed in one vectorised
        pass: GRR on the labels, then the shared one-hot kernel with the
        set bit at the item for label survivors and at the flag for
        everyone else (including pre-invalidated items, marked by any
        negative value).
        """
        labels = np.asarray(labels, dtype=np.int64).ravel()
        items = np.asarray(items, dtype=np.int64).ravel()
        if labels.shape != items.shape:
            raise DomainError(
                f"labels ({labels.shape}) and items ({items.shape}) must align"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise DomainError(f"labels outside [0, {self.n_classes})")
        if items.size and items.max() >= self.n_items:
            raise DomainError(f"items outside [0, {self.n_items})")
        perturbed = self._label_mech.privatize_many(labels)
        valid = (items >= 0) & (perturbed == labels)
        positions = np.where(valid, items, self._item_mech.flag_position)
        bits = perturb_onehot_batch(
            positions, self.n_items + 1, self.p2, self.q2, self.rng
        )
        return perturbed, bits

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> CorrelatedSupport:
        """Fold a batch of reports into sufficient stats in one pass.

        Accepts the columnar ``(labels, bits)`` form produced by
        :meth:`privatize_many` or an iterable of per-user pairs; the fold
        is :func:`fold_correlated_batch`.
        """
        c, d = self.n_classes, self.n_items
        labels, bits = as_correlated_columns(reports, d)
        if labels.size and (labels.min() < 0 or labels.max() >= c):
            raise AggregationError(f"label outside [0, {c})")
        item_support = np.zeros((c, d), dtype=np.int64)
        flag_support = np.zeros(c, dtype=np.int64)
        label_counts = np.zeros(c, dtype=np.int64)
        if labels.size:
            fold_correlated_batch(
                labels, bits, item_support, flag_support, label_counts
            )
        return CorrelatedSupport(
            item_support, flag_support, label_counts, int(labels.size)
        )

    def aggregate(self, reports: Iterable[tuple[int, np.ndarray]]) -> CorrelatedSupport:
        """Fold ``(perturbed_label, bits)`` reports into sufficient stats
        (thin wrapper over :meth:`aggregate_batch`)."""
        return self.aggregate_batch(reports)

    def accumulator(self):
        """Fresh mergeable streaming accumulator for ``(label, bits)``
        reports (see :class:`repro.stream.accumulators.CorrelatedAccumulator`)."""
        from ..stream.accumulators import accumulator_for

        return accumulator_for(self)

    def estimate_class_sizes(self, support: CorrelatedSupport) -> np.ndarray:
        """Unbiased class sizes ``n̂ = (ñ - N q₁) / (p₁ - q₁)``."""
        n = support.n_users
        return (support.label_counts.astype(np.float64) - n * self.q1) / (
            self.p1 - self.q1
        )

    def estimate(self, support: CorrelatedSupport) -> np.ndarray:
        """Unbiased pair counts via the paper's Eq. (4), shape ``(c, d)``.

        ``f̂(C,I) = [f̃(C,I) - N q₁q₂(1-p₂) - n̂ q₂(p₁(1-q₂) - q₁(1-p₂))]
        / [p₁(1-q₂)(p₂-q₂)]``.
        """
        p1, q1, p2, q2 = self.p1, self.q1, self.p2, self.q2
        n_total = support.n_users
        n_hat = self.estimate_class_sizes(support)
        denominator = p1 * (1.0 - q2) * (p2 - q2)
        cross_term = q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2))
        numerator = (
            support.item_support.astype(np.float64)
            - n_total * q1 * q2 * (1.0 - p2)
            - n_hat[:, None] * cross_term
        )
        return numerator / denominator

    # ------------------------------------------------------------------
    # exact simulation
    # ------------------------------------------------------------------
    def simulate_support(
        self,
        pair_counts: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        invalid_per_class: Optional[np.ndarray] = None,
    ) -> CorrelatedSupport:
        """Draw the sufficient statistics directly (marginally exact).

        Parameters
        ----------
        pair_counts:
            ``(c, d)`` true counts of users per (label, valid item).
        invalid_per_class:
            ``(c,)`` users per class whose item is already invalid (e.g.
            pruned); defaults to zero.
        """
        rng = rng if rng is not None else self.rng
        c, d = self.n_classes, self.n_items
        counts = np.asarray(pair_counts, dtype=np.int64)
        if counts.shape != (c, d):
            raise AggregationError(f"pair_counts shape {counts.shape} != ({c}, {d})")
        if (counts < 0).any():
            raise AggregationError("pair counts must be non-negative")
        if invalid_per_class is None:
            invalid = np.zeros(c, dtype=np.int64)
        else:
            invalid = np.asarray(invalid_per_class, dtype=np.int64)
            if invalid.shape != (c,):
                raise AggregationError(f"invalid_per_class shape must be ({c},)")

        # 1. Label routing: survivors stay valid; leavers and users whose
        #    item was pre-invalidated are invalid wherever they land.
        stay = rng.binomial(counts, self.p1)
        stay_invalid = rng.binomial(invalid, self.p1)
        leavers_per_class = (counts - stay).sum(axis=1) + (invalid - stay_invalid)
        arrivals = np.zeros(c, dtype=np.int64)
        for origin in range(c):
            n_leave = int(leavers_per_class[origin])
            if n_leave == 0:
                continue
            destinations = rng.multinomial(n_leave, np.full(c - 1, 1.0 / (c - 1)))
            others = np.delete(np.arange(c), origin)
            arrivals[others] += destinations

        valid_total = stay.sum(axis=1)
        invalid_total = stay_invalid + arrivals
        n_users = int(counts.sum() + invalid.sum())

        # 2. Item bits under flag filtering (marginally exact per cell).
        p2, q2 = self.p2, self.q2
        holders = rng.binomial(stay, p2 * (1.0 - q2))
        others_valid = rng.binomial(valid_total[:, None] - stay, q2 * (1.0 - q2))
        from_invalid = rng.binomial(
            np.broadcast_to(invalid_total[:, None], (c, d)), q2 * (1.0 - p2)
        )
        item_support = holders + others_valid + from_invalid

        flag_support = rng.binomial(invalid_total, p2) + rng.binomial(valid_total, q2)
        label_counts = valid_total + invalid_total
        return CorrelatedSupport(
            item_support.astype(np.int64),
            flag_support.astype(np.int64),
            label_counts.astype(np.int64),
            n_users,
        )

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def expected_support(self, f: float, n: float, n_total: float) -> float:
        """Expected flag-filtered support of one cell (docstring formula)."""
        return (
            f * self.p1 * (1.0 - self.q2) * self.p2
            + (n - f) * self.p1 * (1.0 - self.q2) * self.q2
            + (n_total - n) * self.q1 * (1.0 - self.p2) * self.q2
        )

    def variance(self, f: float, n: float, n_total: float) -> float:
        """Theorem 8 / Eq. (5) variance of the calibrated ``f̂(C, I)``.

        Delegates to :func:`repro.core.variance.cp_estimate_variance` so
        the closed form lives in one place.
        """
        from ..core.variance import cp_estimate_variance

        return cp_estimate_variance(
            f=f,
            n=n,
            n_total=n_total,
            p1=self.p1,
            q1=self.q1,
            p2=self.p2,
            q2=self.q2,
        )

    def communication_bits(self) -> int:
        """Label id plus the (d+1)-bit validity-perturbed vector."""
        return max(1, math.ceil(math.log2(self.n_classes))) + self.n_items + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CorrelatedPerturbation(epsilon1={self.epsilon1!r}, "
            f"epsilon2={self.epsilon2!r}, n_classes={self.n_classes!r}, "
            f"n_items={self.n_items!r})"
        )
