"""Generalized Randomized Response (GRR, a.k.a. k-RR / direct encoding).

The user reports her true value with probability ``p = e^eps / (e^eps + d - 1)``
and any other fixed value with probability ``q = 1 / (e^eps + d - 1)``.
GRR is the variance-optimal oracle for small domains (Wang et al., USENIX
Security 2017) and is the label perturbation used by the paper's PTS and
correlated mechanisms.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import DomainError
from ..rng import RngLike
from .base import (
    FrequencyOracle,
    calibrate_counts,
    check_domain_size,
    pure_protocol_variance,
)
from .kernels import categorical_support


class GeneralizedRandomResponse(FrequencyOracle):
    """ε-LDP randomized response over a domain of size ``d``.

    For ``d == 1`` the report is always the single domain value; the
    mechanism is then trivially private (it releases nothing).
    """

    name = "grr"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        super().__init__(epsilon, domain_size, rng)
        e = math.exp(self.epsilon)
        d = self.domain_size
        if d == 1:
            self.p = 1.0
            self.q = 0.0
        else:
            self.p = e / (e + d - 1.0)
            self.q = 1.0 / (e + d - 1.0)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def privatize(self, value: int) -> int:
        value = self._check_value(value)
        d = self.domain_size
        if d == 1:
            return value
        if self.rng.random() < self.p:
            return value
        # Uniform over the other d-1 values: draw in [0, d-1) and skip self.
        other = int(self.rng.integers(0, d - 1))
        return other + (other >= value)

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Privatise a batch in one vectorised pass.

        Returns ``int64`` reports as an array rather than a list — array
        callers (aggregation, streaming accumulators) consume it directly
        and list-style callers iterate it unchanged.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        d = self.domain_size
        if values.size and (values.min() < 0 or values.max() >= d):
            raise DomainError(
                f"values outside domain [0, {d}): "
                f"range [{values.min()}, {values.max()}]"
            )
        if d == 1:
            return np.zeros(values.size, dtype=np.int64)
        keep = self.rng.random(values.size) < self.p
        others = self.rng.integers(0, d - 1, size=values.size)
        others = others + (others >= values)
        return np.where(keep, values, others).astype(np.int64)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Support counts of a categorical report batch (validated bincount)."""
        return categorical_support(reports, self.domain_size, "GRR")

    def _batch_size(self, reports: np.ndarray) -> int:
        return int(np.asarray(reports).size)

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        if self.domain_size == 1:
            return np.asarray(support, dtype=np.float64)
        return calibrate_counts(support, n, self.p, self.q)

    # ------------------------------------------------------------------
    # exact simulation
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Sample support counts exactly.

        Keepers are binomial per value; each leaver picks a uniformly
        random *other* value.  Cost is ``O(d + L)`` where ``L`` is the
        number of leavers, so the path is exact even for large domains.
        """
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        d = self.domain_size
        if d == 1:
            return counts.copy()
        stay = rng.binomial(counts, self.p)
        leavers = counts - stay
        support = stay.astype(np.int64)
        total_leavers = int(leavers.sum())
        if total_leavers:
            origins = np.repeat(np.arange(d), leavers)
            destinations = rng.integers(0, d - 1, size=total_leavers)
            destinations = destinations + (destinations >= origins)
            support += np.bincount(destinations, minlength=d)
        return support

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        if self.domain_size == 1:
            return 0.0
        return pure_protocol_variance(n, self.p, self.q, true_count)

    def communication_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.domain_size)))


def grr_probabilities(epsilon: float, domain_size: int) -> tuple[float, float]:
    """Return GRR's ``(p, q)`` without building a mechanism object."""
    e = math.exp(epsilon)
    d = check_domain_size(domain_size)
    if d == 1:
        return 1.0, 0.0
    return e / (e + d - 1.0), 1.0 / (e + d - 1.0)
