"""The vectorised batch execution engine of the report plane.

One primitive serves every protocol-mode execution path in the library —
one-shot frameworks, streaming sessions, and the iterative top-k miners:

    privatise a block of values through the oracle's columnar
    ``privatize_many``, fold the block with ``aggregate_batch``, repeat.

Blocking bounds peak memory (a block materialises at most roughly
:data:`BLOCK_ELEMENTS` report bits) while keeping every operation
vectorised, so there is no per-user Python dispatch anywhere on the hot
path.  The helpers accept any object exposing the two batch methods: all
:class:`~repro.mechanisms.base.FrequencyOracle` subclasses and the
correlated mechanism (whose "values" are a ``(labels, items)`` column
tuple and whose "support" is a
:class:`~repro.mechanisms.correlated.CorrelatedSupport`).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator, Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs

#: How many report bits one privatised block may materialise at once.
BLOCK_ELEMENTS = 2_000_000


def batch_spans(
    n_values: int, width: int, block_elements: Optional[int] = None
) -> Iterator[slice]:
    """Slices covering ``n_values`` rows in blocks of ``~block_elements``
    total cells for rows of ``width`` cells each.

    A ``block_elements`` cap smaller than one row's ``width`` degrades to
    one row per block (a block always holds at least one whole row); the
    final block simply covers the remainder when ``n_values`` is not a
    multiple of the block's row count.  The serve layer reuses these spans
    to cut concatenated socket batches into bounded ingest batches.
    """
    cap = BLOCK_ELEMENTS if block_elements is None else int(block_elements)
    if cap < 1:
        raise ConfigurationError(
            f"block_elements must be >= 1, got {block_elements!r}"
        )
    rows = max(1, cap // max(1, int(width)))
    for start in range(0, int(n_values), rows):
        yield slice(start, start + rows)


def _columns(values) -> tuple[np.ndarray, ...]:
    if isinstance(values, tuple):
        return tuple(np.asarray(col) for col in values)
    return (np.asarray(values),)


_NULL_SPAN = nullcontext()


def _telemetry(oracle, n_reports: int):
    """Per-call engine telemetry handle, or ``None`` while telemetry is off.

    Instruments are fetched from the process registry per *call*, never
    cached on oracles or sessions — session objects are pickled into
    process-pool workers and must not carry lock-bearing instruments.
    """
    registry = _obs.get_registry()
    if not registry.enabled:
        return None
    oracle_name = type(oracle).__name__
    registry.counter("engine_reports_total", oracle=oracle_name).inc(int(n_reports))
    return (
        registry.histogram("engine_block_seconds", oracle=oracle_name),
        registry.counter("engine_blocks_total", oracle=oracle_name),
    )


def _block_span(telemetry):
    """A timing context for one privatise+aggregate block (no-op when off)."""
    if telemetry is None:
        return _NULL_SPAN
    histogram, blocks = telemetry
    blocks.inc()
    return _obs.Span(histogram)


def batch_support(
    oracle,
    values: Union[np.ndarray, tuple],
    block_elements: Optional[int] = None,
):
    """Support of a privatised batch: ``aggregate_batch(privatize_many(v))``
    evaluated in bounded blocks.

    ``values`` is an array of per-user true values, or a tuple of aligned
    column arrays for multi-input mechanisms (the correlated mechanism
    takes ``(labels, items)``).  Returns whatever the oracle's
    ``aggregate_batch`` returns — support vectors are summed across
    blocks, so the result equals a single unbounded batch exactly.
    """
    cols = _columns(values)
    n = int(cols[0].size)
    width = max(1, int(oracle.communication_bits()))
    telemetry = _telemetry(oracle, n)
    support = None
    for cut in batch_spans(n, width, block_elements):
        with _block_span(telemetry):
            reports = oracle.privatize_many(*(col[cut] for col in cols))
            block = oracle.aggregate_batch(reports)
        support = block if support is None else support + block
    if support is None:  # empty batch: aggregate nothing for typed zeros
        reports = oracle.privatize_many(*(col[:0] for col in cols))
        support = oracle.aggregate_batch(reports)
    return support


def grouped_batch_support(
    oracle,
    groups: np.ndarray,
    values: np.ndarray,
    n_groups: int,
    block_elements: Optional[int] = None,
) -> np.ndarray:
    """Per-group support of bit-vector reports: row ``g`` sums the reports
    of users with ``groups[u] == g``.

    The label-grouped aggregation PTS-style sessions need — item reports
    are scattered into the perturbed label's row instead of one global
    support.  ``oracle`` must produce fixed-width bit-vector reports of
    ``oracle.domain_size`` bits (OUE/SUE).
    """
    groups = np.asarray(groups, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    width = int(oracle.domain_size)
    telemetry = _telemetry(oracle, values.size)
    out = np.zeros((int(n_groups), width), dtype=np.int64)
    for cut in batch_spans(values.size, width, block_elements):
        with _block_span(telemetry):
            bits = np.asarray(oracle.privatize_many(values[cut]), dtype=np.int64)
            np.add.at(out, groups[cut], bits)
    return out
