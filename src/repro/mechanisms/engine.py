"""The vectorised batch execution engine of the report plane.

One primitive serves every protocol-mode execution path in the library —
one-shot frameworks, streaming sessions, and the iterative top-k miners:

    privatise a block of values through the oracle's columnar
    ``privatize_many``, fold the block with ``aggregate_batch``, repeat.

Blocking bounds peak memory (a block materialises at most roughly
:data:`BLOCK_ELEMENTS` report bits) while keeping every operation
vectorised, so there is no per-user Python dispatch anywhere on the hot
path.  The helpers accept any object exposing the two batch methods: all
:class:`~repro.mechanisms.base.FrequencyOracle` subclasses and the
correlated mechanism (whose "values" are a ``(labels, items)`` column
tuple and whose "support" is a
:class:`~repro.mechanisms.correlated.CorrelatedSupport`).
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Iterator, Optional, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import metrics as _obs
from ..rng import ensure_rng, spawn_seeds
from .backends import active_backend, get_kernel

#: How many report bits one privatised block may materialise at once.
BLOCK_ELEMENTS = 2_000_000

#: Environment variable setting the default block-thread count.
THREADS_ENV = "REPRO_THREADS"

#: Process-wide thread default installed by :func:`set_default_threads`.
_DEFAULT_THREADS: Optional[int] = None


def default_thread_count() -> int:
    """Block-execution threads used for ``threads="auto"``: one per CPU,
    capped (mirrors :func:`repro.stream.sharding.default_shard_count`)."""
    return max(1, min(8, os.cpu_count() or 1))


def set_default_threads(threads: Optional[int]) -> Optional[int]:
    """Install a process-wide default for the engine's ``threads``
    argument; returns the previous default (so callers can restore it).

    ``None`` clears the override — resolution falls back to the
    ``REPRO_THREADS`` environment variable and then to the serial path.
    """
    global _DEFAULT_THREADS
    previous = _DEFAULT_THREADS
    _DEFAULT_THREADS = None if threads is None else _check_threads(threads)
    return previous


def _check_threads(threads) -> int:
    if threads == "auto":
        return default_thread_count()
    count = int(threads)
    if count < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads!r}")
    return count


def _resolve_threads(threads) -> Optional[int]:
    """Effective thread count: explicit argument, else the process default,
    else ``REPRO_THREADS``, else ``None`` (the serial sequential-stream
    path — bit-identical to the pre-threading engine)."""
    if threads is not None:
        return _check_threads(threads)
    if _DEFAULT_THREADS is not None:
        return _DEFAULT_THREADS
    env = os.environ.get(THREADS_ENV)
    if env:
        return _check_threads(env)
    return None


def batch_spans(
    n_values: int, width: int, block_elements: Optional[int] = None
) -> Iterator[slice]:
    """Slices covering ``n_values`` rows in blocks of ``~block_elements``
    total cells for rows of ``width`` cells each.

    A ``block_elements`` cap smaller than one row's ``width`` degrades to
    one row per block (a block always holds at least one whole row); the
    final block simply covers the remainder when ``n_values`` is not a
    multiple of the block's row count.  The serve layer reuses these spans
    to cut concatenated socket batches into bounded ingest batches.
    """
    cap = BLOCK_ELEMENTS if block_elements is None else int(block_elements)
    if cap < 1:
        raise ConfigurationError(
            f"block_elements must be >= 1, got {block_elements!r}"
        )
    rows = max(1, cap // max(1, int(width)))
    for start in range(0, int(n_values), rows):
        yield slice(start, start + rows)


def _columns(values) -> tuple[np.ndarray, ...]:
    if isinstance(values, tuple):
        return tuple(np.asarray(col) for col in values)
    return (np.asarray(values),)


_NULL_SPAN = nullcontext()


def _telemetry(oracle, n_reports: int):
    """Per-call engine telemetry handle, or ``None`` while telemetry is off.

    Instruments are fetched from the process registry per *call*, never
    cached on oracles or sessions — session objects are pickled into
    process-pool workers and must not carry lock-bearing instruments.
    """
    registry = _obs.get_registry()
    if not registry.enabled:
        return None
    oracle_name = type(oracle).__name__
    registry.counter("engine_reports_total", oracle=oracle_name).inc(int(n_reports))
    return (
        registry.histogram("engine_block_seconds", oracle=oracle_name),
        registry.counter("engine_blocks_total", oracle=oracle_name),
    )


def _block_span(telemetry):
    """A timing context for one privatise+aggregate block (no-op when off)."""
    if telemetry is None:
        return _NULL_SPAN
    histogram, blocks = telemetry
    blocks.inc()
    return _obs.Span(histogram)


def _with_rng(oracle, rng):
    """``oracle`` rebound to ``rng`` (oracle's ``with_rng`` when present)."""
    rebind = getattr(oracle, "with_rng", None)
    if rebind is not None:
        return rebind(rng)
    clone = copy.copy(oracle)
    clone.rng = rng
    return clone


def _block_oracles(oracle, spans: list) -> list:
    """One oracle clone per block, each on its own pre-split stream.

    Streams are spawned from the oracle's generator with
    :func:`repro.rng.spawn_seeds`, so the schedule — and therefore every
    block's draws — depends only on the generator state and the block
    split, never on the thread count or interleaving.
    """
    seeds = spawn_seeds(oracle.rng, len(spans))
    return [_with_rng(oracle, ensure_rng(seed)) for seed in seeds]


def _run_blocks(tasks: list, threads: int) -> list:
    """Run block thunks, in order, optionally on a bounded thread pool.

    The pool only engages when the active kernel backend is GIL-free —
    with the NumPy reference backend the threads would serialise on the
    interpreter lock and pay hand-off overhead for nothing.  Results come
    back in block order either way, so the reduction is deterministic.
    """
    if threads > 1 and len(tasks) > 1 and active_backend().gil_free:
        with ThreadPoolExecutor(
            max_workers=min(threads, len(tasks)),
            thread_name_prefix="repro-engine",
        ) as pool:
            return list(pool.map(lambda task: task(), tasks))
    return [task() for task in tasks]


def batch_support(
    oracle,
    values: Union[np.ndarray, tuple],
    block_elements: Optional[int] = None,
    threads: Optional[int] = None,
):
    """Support of a privatised batch: ``aggregate_batch(privatize_many(v))``
    evaluated in bounded blocks.

    ``values`` is an array of per-user true values, or a tuple of aligned
    column arrays for multi-input mechanisms (the correlated mechanism
    takes ``(labels, items)``).  Returns whatever the oracle's
    ``aggregate_batch`` returns — support vectors are summed across
    blocks, so the result equals a single unbounded batch exactly.

    ``threads`` selects the execution schedule (default: the process
    override from :func:`set_default_threads`, then ``REPRO_THREADS``,
    then serial).  Serial runs privatise blocks sequentially off the
    oracle's own generator — bit-identical to the pre-threading engine.
    Any explicit thread count switches to pre-split per-block streams
    with an ordered reduction, making the result *independent of the
    thread count*: ``threads=1`` and ``threads=8`` agree bit-for-bit
    (blocks only actually overlap when the active kernel backend is
    GIL-free).
    """
    cols = _columns(values)
    n = int(cols[0].size)
    width = max(1, int(oracle.communication_bits()))
    telemetry = _telemetry(oracle, n)
    thread_count = _resolve_threads(threads)
    support = None
    if thread_count is None:
        for cut in batch_spans(n, width, block_elements):
            with _block_span(telemetry):
                reports = oracle.privatize_many(*(col[cut] for col in cols))
                block = oracle.aggregate_batch(reports)
            support = block if support is None else support + block
    else:
        spans = list(batch_spans(n, width, block_elements))
        oracles = _block_oracles(oracle, spans)

        def _block_task(cut, block_oracle):
            def run():
                with _block_span(telemetry):
                    reports = block_oracle.privatize_many(
                        *(col[cut] for col in cols)
                    )
                    return block_oracle.aggregate_batch(reports)

            return run

        blocks = _run_blocks(
            [_block_task(cut, clone) for cut, clone in zip(spans, oracles)],
            thread_count,
        )
        for block in blocks:
            support = block if support is None else support + block
    if support is None:  # empty batch: aggregate nothing for typed zeros
        reports = oracle.privatize_many(*(col[:0] for col in cols))
        support = oracle.aggregate_batch(reports)
    return support


def grouped_batch_support(
    oracle,
    groups: np.ndarray,
    values: np.ndarray,
    n_groups: int,
    block_elements: Optional[int] = None,
    threads: Optional[int] = None,
) -> np.ndarray:
    """Per-group support of bit-vector reports: row ``g`` sums the reports
    of users with ``groups[u] == g``.

    The label-grouped aggregation PTS-style sessions need — item reports
    are scattered into the perturbed label's row instead of one global
    support.  ``oracle`` must produce fixed-width bit-vector reports of
    ``oracle.domain_size`` bits (OUE/SUE).  The scatter itself goes
    through the backend registry's ``grouped_scatter`` kernel (a
    flattened ``bincount`` over set cells on NumPy — ``np.add.at`` is an
    order-of-magnitude soft spot — or a compiled ``nogil`` loop).
    ``threads`` behaves exactly as in :func:`batch_support`.
    """
    groups = np.asarray(groups, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    width = int(oracle.domain_size)
    telemetry = _telemetry(oracle, values.size)
    scatter = get_kernel("grouped_scatter")
    out = np.zeros((int(n_groups), width), dtype=np.int64)
    thread_count = _resolve_threads(threads)
    if thread_count is None:
        for cut in batch_spans(values.size, width, block_elements):
            with _block_span(telemetry):
                bits = np.asarray(oracle.privatize_many(values[cut]))
                out += scatter(groups[cut], bits, int(n_groups))
        return out
    spans = list(batch_spans(values.size, width, block_elements))
    oracles = _block_oracles(oracle, spans)

    def _block_task(cut, block_oracle):
        def run():
            with _block_span(telemetry):
                bits = np.asarray(block_oracle.privatize_many(values[cut]))
                return scatter(groups[cut], bits, int(n_groups))

        return run

    for partial in _run_blocks(
        [_block_task(cut, clone) for cut, clone in zip(spans, oracles)],
        thread_count,
    ):
        out += partial
    return out
