"""LDP frequency-oracle substrate.

This subpackage implements every perturbation primitive the paper uses or
compares against, from scratch:

* :class:`~repro.mechanisms.grr.GeneralizedRandomResponse` — k-RR.
* :class:`~repro.mechanisms.ue.SymmetricUnaryEncoding` /
  :class:`~repro.mechanisms.ue.OptimizedUnaryEncoding` — SUE / OUE.
* :class:`~repro.mechanisms.olh.OptimalLocalHashing` — OLH.
* :class:`~repro.mechanisms.rappor.Rappor` — one-shot RAPPOR.
* :class:`~repro.mechanisms.hadamard.HadamardResponse` — Hadamard response.
* :class:`~repro.mechanisms.adaptive.AdaptiveMechanism` — the GRR/OUE
  selector (``d < 3e^ε + 2``) from Wang et al.
* :class:`~repro.mechanisms.validity.ValidityPerturbation` — the paper's
  validity-flag mechanism (Section IV-A).
* :class:`~repro.mechanisms.correlated.CorrelatedPerturbation` — the
  paper's correlated label-item mechanism (Section IV-B).

Every oracle exposes the columnar batch API of the unified report plane:
``privatize_many`` (vectorised, plain-ndarray reports) and
``aggregate_batch`` (one-pass fold built on
:mod:`~repro.mechanisms.kernels`).  The batch execution engine
(:mod:`~repro.mechanisms.engine`) chains the two in bounded blocks and is
the single protocol-mode primitive used by frameworks, streaming sessions
and the top-k miners.
"""

from .adaptive import AdaptiveMechanism, grr_beats_oue, make_adaptive
from .base import FrequencyOracle, calibrate_counts, pure_protocol_variance
from .budget import PrivacyBudget, split_budget
from .correlated import (
    CorrelatedPerturbation,
    CorrelatedSupport,
    fold_correlated_batch,
)
from .engine import batch_spans, batch_support, grouped_batch_support
from .grr import GeneralizedRandomResponse, grr_probabilities
from .hadamard import HadamardResponse
from .olh import OptimalLocalHashing
from .rappor import Rappor
from .ue import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryEncoding,
    oue_probabilities,
    ue_epsilon,
)
from .validity import ValidityPerturbation

__all__ = [
    "AdaptiveMechanism",
    "CorrelatedPerturbation",
    "CorrelatedSupport",
    "FrequencyOracle",
    "batch_spans",
    "batch_support",
    "fold_correlated_batch",
    "grouped_batch_support",
    "GeneralizedRandomResponse",
    "HadamardResponse",
    "OptimalLocalHashing",
    "OptimizedUnaryEncoding",
    "PrivacyBudget",
    "Rappor",
    "SymmetricUnaryEncoding",
    "UnaryEncoding",
    "ValidityPerturbation",
    "calibrate_counts",
    "grr_beats_oue",
    "grr_probabilities",
    "make_adaptive",
    "oue_probabilities",
    "pure_protocol_variance",
    "split_budget",
    "ue_epsilon",
]
