"""Privacy-budget bookkeeping.

The PTS family splits the total budget ε between label perturbation (ε₁)
and item perturbation (ε₂) with ε = ε₁ + ε₂.  The paper sets
ε₁ = ε₂ = ε/2 by default and sweeps the split fraction in Fig. 11; these
helpers centralise that logic and its validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import PrivacyBudgetError
from .base import check_epsilon


def split_budget(epsilon: float, label_fraction: float = 0.5) -> tuple[float, float]:
    """Split ε into ``(ε₁, ε₂) = (p·ε, (1-p)·ε)`` for label/item use.

    ``label_fraction`` is the paper's parameter *p* from Fig. 11 and must
    lie strictly inside ``(0, 1)`` so both halves stay positive.
    """
    epsilon = check_epsilon(epsilon)
    if not 0.0 < label_fraction < 1.0:
        raise PrivacyBudgetError(
            f"label_fraction must be in (0, 1), got {label_fraction}"
        )
    epsilon1 = epsilon * label_fraction
    return epsilon1, epsilon - epsilon1


@dataclass(frozen=True)
class PrivacyBudget:
    """An ε budget with an explicit label/item split.

    ``PrivacyBudget(4.0)`` gives the paper's default even split;
    ``PrivacyBudget(4.0, label_fraction=0.3)`` reproduces a Fig. 11 sweep
    point.
    """

    epsilon: float
    label_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if not 0.0 < self.label_fraction < 1.0:
            raise PrivacyBudgetError(
                f"label_fraction must be in (0, 1), got {self.label_fraction}"
            )

    @property
    def epsilon1(self) -> float:
        """Label-perturbation budget ε₁."""
        return self.epsilon * self.label_fraction

    @property
    def epsilon2(self) -> float:
        """Item-perturbation budget ε₂ = ε - ε₁."""
        return self.epsilon - self.epsilon1

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(ε₁, ε₂)``."""
        return (self.epsilon1, self.epsilon2)
