"""Reference NumPy implementations of the hot report-plane kernels.

This module is the semantic ground truth of the kernel registry
(:mod:`repro.mechanisms.backends`): every other backend must reproduce
these functions draw-for-draw (where a generator is consumed) and
bit-for-bit (where the computation is deterministic).  The public kernel
wrappers in :mod:`repro.mechanisms.kernels` and
:mod:`repro.mechanisms.olh` perform the argument validation; the
functions here assume validated inputs and do only the arithmetic.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import AggregationError

#: Large Mersenne prime used by the OLH universal hash family.
PRIME = (1 << 61) - 1

#: Matrix-cell budget per block of the bulk-hash evaluation.
HASH_BLOCK_ELEMENTS = 4_000_000


def perturb_onehot(
    positions: np.ndarray,
    width: int,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Perturbed one-hot rows; row ``u`` consumes ``width`` uniforms in
    order, so a batch is draw-for-draw identical to the per-user loop."""
    u = rng.random((positions.size, width))
    bits = u < q
    rows = np.arange(positions.size)
    bits[rows, positions] = u[rows, positions] < p
    return bits.astype(np.uint8)


def universal_hash(values: np.ndarray, a, b, g) -> np.ndarray:
    """Vectorised ``((a*x + b) mod PRIME) mod g`` universal hash."""
    values = np.asarray(values, dtype=np.uint64)
    out = (a * values + b) % PRIME
    return (out % np.uint64(g)).astype(np.int64)


def bulk_hash_support(
    a: np.ndarray,
    b: np.ndarray,
    reports: np.ndarray,
    domain_size: int,
    g: int,
    block_elements: int = HASH_BLOCK_ELEMENTS,
) -> np.ndarray:
    """OLH support counts: every user's hash evaluated over the whole
    domain in NumPy blocks of roughly ``block_elements`` matrix cells."""
    from ..engine import batch_spans

    support = np.zeros(domain_size, dtype=np.int64)
    domain = np.arange(domain_size, dtype=np.uint64)
    targets = reports.astype(np.uint64)
    for span in batch_spans(reports.size, domain_size, block_elements):
        block = (a[span, None] * domain[None, :] + b[span, None]) % PRIME
        block %= np.uint64(g)
        support += (block == targets[span, None]).sum(axis=0)
    return support


def categorical_support(
    reports: np.ndarray, domain_size: int, name: str = "categorical"
) -> np.ndarray:
    """Validated bincount of categorical reports in one bounds pass.

    ``np.bincount`` itself rejects negatives and reveals too-large values
    through the output length, so the domain check costs no separate
    ``min()``/``max()`` sweeps over the reports.
    """
    try:
        counts = np.bincount(reports, minlength=domain_size)
    except ValueError as error:
        raise AggregationError(
            f"{name} report outside domain [0, {domain_size})"
        ) from error
    if counts.size > domain_size:
        raise AggregationError(f"{name} report outside domain [0, {domain_size})")
    return counts.astype(np.int64, copy=False)


def grouped_scatter(
    groups: np.ndarray, bits: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group column sums: row ``g`` of the result accumulates the
    report rows of users with ``groups[u] == g``.

    Flattens the scatter into one ``np.bincount`` over the set cells
    (``group * width + column``) instead of ``np.add.at`` — bit-report
    matrices are sparse in ones, and ``np.add.at``'s unbuffered fancy
    indexing is an order-of-magnitude soft spot even when they are not.
    """
    width = int(bits.shape[1])
    rows, cols = np.nonzero(bits)
    if rows.size == 0:
        return np.zeros((int(n_groups), width), dtype=np.int64)
    flat = np.bincount(
        groups[rows] * width + cols,
        weights=bits[rows, cols],
        minlength=int(n_groups) * width,
    )
    return flat.reshape(int(n_groups), width).astype(np.int64)


#: Kernel table exposed to the registry.
KERNELS = {
    "perturb_onehot": perturb_onehot,
    "universal_hash": universal_hash,
    "bulk_hash_support": bulk_hash_support,
    "categorical_support": categorical_support,
    "grouped_scatter": grouped_scatter,
}
