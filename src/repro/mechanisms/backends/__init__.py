"""Pluggable kernel backends for the report plane's hot loops.

The unified report plane funnels every protocol path through a handful of
vectorised kernels (:mod:`repro.mechanisms.kernels`,
:mod:`repro.mechanisms.engine`, :mod:`repro.mechanisms.olh`).  This
package makes the *implementation* of those kernels swappable at runtime:

* ``numpy`` — the reference implementations (:mod:`.numpy_backend`),
  always present;
* ``numba`` — compiled ``nogil`` variants (:mod:`.numba_backend`),
  selected only when the numba toolchain imports; their GIL-free compute
  stages let the batch engine run independent blocks on real threads;
* ``auto`` (default) — numba when available, else numpy.

Selection is process-wide: the ``REPRO_BACKEND`` environment variable or
an explicit :func:`set_backend` call (the ``repro-bench protocol
--backend`` flag) picks the backend; kernels fetch their active
implementation per call through :func:`get_kernel`, with a per-kernel
NumPy fallback so a backend never has to implement the full table.  The
active selection is recorded in the telemetry registry (when enabled)
and surfaced to bench artifacts through :func:`backend_info`.

Whatever the backend, results are draw-for-draw and bit-for-bit
identical to the NumPy reference — the seeded equivalence suite pins it.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ...exceptions import ConfigurationError
from ...obs import metrics as _obs
from . import numba_backend, numpy_backend

#: Recognised values of ``REPRO_BACKEND`` / ``--backend``.
BACKEND_CHOICES = ("auto", "numpy", "numba")

#: Names of the registry's hot kernels.
KERNEL_NAMES = tuple(numpy_backend.KERNELS)

#: Environment variable naming the requested backend.
BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class KernelBackend:
    """One resolved backend: a kernel table plus execution properties.

    ``gil_free`` marks backends whose compute stages release the GIL —
    the engine only fans blocks onto a thread pool when it is set.
    Missing kernels fall back to the NumPy reference per kernel, so a
    partial backend is still a complete one.
    """

    name: str
    gil_free: bool
    kernels: Mapping[str, Callable] = field(repr=False)

    def kernel(self, kernel_name: str) -> Callable:
        impl = self.kernels.get(kernel_name)
        if impl is None:
            impl = numpy_backend.KERNELS.get(kernel_name)
        if impl is None:
            raise ConfigurationError(
                f"unknown kernel {kernel_name!r}; choose from {sorted(KERNEL_NAMES)}"
            )
        return impl


_NUMPY = KernelBackend(name="numpy", gil_free=False, kernels=numpy_backend.KERNELS)
_NUMBA = KernelBackend(name="numba", gil_free=True, kernels=numba_backend.KERNELS)

_lock = threading.Lock()
_active: Optional[KernelBackend] = None
_requested: Optional[str] = None


def numba_available() -> bool:
    """Whether the compiled numba backend can be selected."""
    return numba_backend.available()


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend request to a concrete :class:`KernelBackend`.

    ``name`` falls back to the ``REPRO_BACKEND`` environment variable and
    then to ``"auto"``.  Requesting ``"numba"`` explicitly when the
    toolchain is absent is an error; ``"auto"`` silently degrades to
    NumPy so the library never *requires* the compiled path.
    """
    requested = (name or os.environ.get(BACKEND_ENV) or "auto").strip().lower()
    if requested not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"backend must be one of {BACKEND_CHOICES}, got {requested!r}"
        )
    if requested == "numpy":
        return _NUMPY
    if requested == "numba":
        if not numba_available():
            raise ConfigurationError(
                "backend 'numba' requested but numba is not importable; "
                "install numba or use REPRO_BACKEND=auto|numpy"
            )
        return _NUMBA
    return _NUMBA if numba_available() else _NUMPY


def _record(backend: KernelBackend, requested: Optional[str]) -> None:
    registry = _obs.get_registry()
    if registry.enabled:
        registry.counter(
            "kernel_backend_selected_total", backend=backend.name
        ).inc()
        registry.gauge("kernel_backend_gil_free").set(1.0 if backend.gil_free else 0.0)


def active_backend() -> KernelBackend:
    """The process-wide backend, resolving ``REPRO_BACKEND`` on first use."""
    global _active, _requested
    backend = _active
    if backend is None:
        with _lock:
            if _active is None:
                _requested = os.environ.get(BACKEND_ENV) or "auto"
                _active = resolve_backend(None)
                _record(_active, _requested)
            backend = _active
    return backend


def set_backend(name: Optional[str] = None) -> KernelBackend:
    """Select the process-wide backend (CLI override); returns it.

    ``None`` re-resolves from the environment — callers that merely want
    the selection recorded (benches) can pass their flag through
    unchanged.
    """
    global _active, _requested
    with _lock:
        _requested = name or os.environ.get(BACKEND_ENV) or "auto"
        _active = resolve_backend(name)
        _record(_active, _requested)
        return _active


@contextmanager
def use_backend(name: str):
    """Temporarily switch the process-wide backend (tests, experiments)."""
    global _active, _requested
    with _lock:
        previous = _active, _requested
        _requested = name
        _active = resolve_backend(name)
    try:
        yield _active
    finally:
        with _lock:
            _active, _requested = previous


def get_kernel(kernel_name: str) -> Callable:
    """The active backend's implementation of ``kernel_name``."""
    return active_backend().kernel(kernel_name)


def backend_info() -> dict:
    """Machine-readable description of the active selection (bench meta)."""
    backend = active_backend()
    return {
        "name": backend.name,
        "requested": _requested or "auto",
        "gil_free": backend.gil_free,
        "numba_available": numba_available(),
        "numba_version": numba_backend.version(),
    }
