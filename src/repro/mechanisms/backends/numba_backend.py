"""Numba ``nogil`` variants of the hot report-plane kernels.

Importing this module is always safe: when numba is absent every public
symbol still exists and :func:`available` returns ``False`` — the
registry then falls back to the NumPy reference backend.  When numba is
present, the compute stages compile with ``nogil=True`` so the batch
engine can dispatch independent blocks onto a thread pool and actually
run them in parallel.

Draw-for-draw equivalence with :mod:`.numpy_backend` is a hard contract
(the seeded equivalence suite pins it): every kernel that consumes
randomness draws its uniforms through the *caller's NumPy generator* in
exactly the reference order and hands the resulting array to a compiled
nogil threshold stage, so the random stream never depends on which
backend ran.  Pure-compute kernels (hashing, counting, scatter) are
bit-for-bit by construction.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import AggregationError
from .numpy_backend import PRIME

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import njit as _njit
except ImportError:  # pragma: no cover - the numpy-only environment
    _numba = None

    def _njit(*args, **kwargs):  # type: ignore[misc]
        """Decorator stub so kernel definitions below always parse."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


def available() -> bool:
    """Whether the numba toolchain imported successfully."""
    return _numba is not None


def version() -> str | None:
    """Installed numba version, or ``None``."""
    return getattr(_numba, "__version__", None) if _numba is not None else None


# ----------------------------------------------------------------------
# compiled nogil stages
# ----------------------------------------------------------------------
@_njit(nogil=True)
def _threshold_onehot(u, positions, p, q):  # pragma: no cover - compiled
    n, width = u.shape
    out = np.empty((n, width), dtype=np.uint8)
    for i in range(n):
        for j in range(width):
            out[i, j] = 1 if u[i, j] < q else 0
        pos = positions[i]
        out[i, pos] = 1 if u[i, pos] < p else 0
    return out


@_njit(nogil=True)
def _universal_hash(values, a, b, g):  # pragma: no cover - compiled
    out = np.empty(values.size, dtype=np.int64)
    for i in range(values.size):
        out[i] = np.int64(((a * values[i] + b) % PRIME) % g)
    return out


@_njit(nogil=True)
def _bulk_hash_support(a, b, reports, domain_size, g):  # pragma: no cover
    support = np.zeros(domain_size, dtype=np.int64)
    for i in range(a.size):
        ai = a[i]
        bi = b[i]
        target = reports[i]
        for v in range(domain_size):
            h = ((ai * np.uint64(v) + bi) % PRIME) % g
            if h == target:
                support[v] += 1
    return support


@_njit(nogil=True)
def _categorical_support(reports, domain_size):  # pragma: no cover
    counts = np.zeros(domain_size, dtype=np.int64)
    for i in range(reports.size):
        value = reports[i]
        if value < 0 or value >= domain_size:
            return counts, False
        counts[value] += 1
    return counts, True


@_njit(nogil=True)
def _grouped_scatter(groups, bits, n_groups):  # pragma: no cover
    n, width = bits.shape
    out = np.zeros((n_groups, width), dtype=np.int64)
    for i in range(n):
        g = groups[i]
        for j in range(width):
            out[g, j] += bits[i, j]
    return out


# ----------------------------------------------------------------------
# registry-facing wrappers (NumPy-identical signatures and semantics)
# ----------------------------------------------------------------------
def perturb_onehot(positions, width, p, q, rng):
    # The uniforms come from the caller's NumPy generator in reference
    # order; only the GIL-free thresholding is compiled.
    u = rng.random((positions.size, width))
    return _threshold_onehot(u, np.asarray(positions, dtype=np.int64), p, q)


def universal_hash(values, a, b, g):
    values = np.asarray(values, dtype=np.uint64)
    return _universal_hash(values, np.uint64(a), np.uint64(b), np.uint64(g))


def bulk_hash_support(a, b, reports, domain_size, g, block_elements=None):
    # O(1) memory: the compiled loop never materialises the (n, d) hash
    # block the NumPy path pays for, so block_elements is irrelevant.
    return _bulk_hash_support(
        np.asarray(a, dtype=np.uint64),
        np.asarray(b, dtype=np.uint64),
        np.asarray(reports, dtype=np.uint64),
        np.int64(domain_size),
        np.uint64(g),
    )


def categorical_support(reports, domain_size, name="categorical"):
    counts, in_domain = _categorical_support(
        np.asarray(reports, dtype=np.int64), np.int64(domain_size)
    )
    if not in_domain:
        raise AggregationError(f"{name} report outside domain [0, {domain_size})")
    return counts


def grouped_scatter(groups, bits, n_groups):
    return _grouped_scatter(
        np.asarray(groups, dtype=np.int64),
        np.asarray(bits, dtype=np.int64),
        np.int64(n_groups),
    )


#: Kernel table exposed to the registry (only consulted when available()).
KERNELS = {
    "perturb_onehot": perturb_onehot,
    "universal_hash": universal_hash,
    "bulk_hash_support": bulk_hash_support,
    "categorical_support": categorical_support,
    "grouped_scatter": grouped_scatter,
}
