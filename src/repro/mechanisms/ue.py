"""Unary-encoding oracles: SUE (basic RAPPOR probabilities) and OUE.

The user's value ``v`` is one-hot encoded into a ``d``-bit vector and each
bit is flipped independently:

* **SUE** (symmetric): ``p = e^{eps/2} / (e^{eps/2} + 1)``, ``q = 1 - p``.
* **OUE** (optimized): ``p = 1/2``, ``q = 1 / (e^eps + 1)`` — the
  variance-minimising choice from Wang et al. (USENIX Security 2017) and
  the item perturbation used throughout the paper.

Both satisfy ε-LDP with ``eps = ln[p(1-q) / ((1-p)q)]``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from .base import FrequencyOracle, calibrate_counts, pure_protocol_variance
from .kernels import bit_matrix_support, perturb_onehot_batch


class UnaryEncoding(FrequencyOracle):
    """Generic unary encoding with explicit bit-flip probabilities ``p, q``.

    Subclasses (or callers) choose ``p`` and ``q``; the implied privacy
    budget is ``ln[p(1-q) / ((1-p)q)]`` (paper Theorem 1).
    """

    name = "ue"

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        p: float,
        q: float,
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, domain_size, rng)
        if not (0.0 < q < p <= 1.0):
            raise ValueError(f"need 0 < q < p <= 1, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def encode(self, value: int) -> np.ndarray:
        """One-hot encode ``value`` into a ``(d,)`` uint8 vector."""
        value = self._check_value(value)
        bits = np.zeros(self.domain_size, dtype=np.uint8)
        bits[value] = 1
        return bits

    def perturb_bits(self, bits: np.ndarray) -> np.ndarray:
        """Flip each bit of an encoded vector with the (p, q) law."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.domain_size,):
            raise AggregationError(
                f"expected bits of shape ({self.domain_size},), got {bits.shape}"
            )
        u = self.rng.random(self.domain_size)
        keep_prob = np.where(bits == 1, self.p, self.q)
        return (u < keep_prob).astype(np.uint8)

    def privatize(self, value: int) -> np.ndarray:
        return self.perturb_bits(self.encode(value))

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Perturb a batch of values into a ``(batch, d)`` uint8 bit matrix.

        One vectorised pass through the shared one-hot kernel; each row is
        draw-for-draw identical to :meth:`privatize` on the same
        generator.  Memory is ``batch × d`` — unbounded batches go through
        :func:`repro.mechanisms.engine.batch_support`.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise DomainError(
                f"values outside domain [0, {self.domain_size})"
            )
        return perturb_onehot_batch(values, self.domain_size, self.p, self.q, self.rng)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Column sums of a ``(batch, d)`` bit-report matrix."""
        return bit_matrix_support(reports, self.domain_size, "unary-encoding")

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        return calibrate_counts(support, n, self.p, self.q)

    # ------------------------------------------------------------------
    # exact simulation
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Exact: bits are independent across positions and users, so
        ``support_v = Binom(n_v, p) + Binom(n - n_v, q)``."""
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        n = int(counts.sum())
        ones = rng.binomial(counts, self.p)
        zeros = rng.binomial(n - counts, self.q)
        return (ones + zeros).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        return pure_protocol_variance(n, self.p, self.q, true_count)

    def communication_bits(self) -> int:
        return self.domain_size


class SymmetricUnaryEncoding(UnaryEncoding):
    """SUE / basic-RAPPOR probabilities: ``p = e^{eps/2}/(e^{eps/2}+1)``."""

    name = "sue"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        e_half = math.exp(float(epsilon) / 2.0)
        p = e_half / (e_half + 1.0)
        super().__init__(epsilon, domain_size, p=p, q=1.0 - p, rng=rng)


class OptimizedUnaryEncoding(UnaryEncoding):
    """OUE: ``p = 1/2``, ``q = 1/(e^eps + 1)`` (variance-optimal UE)."""

    name = "oue"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        q = 1.0 / (math.exp(float(epsilon)) + 1.0)
        super().__init__(epsilon, domain_size, p=0.5, q=q, rng=rng)


def oue_probabilities(epsilon: float) -> tuple[float, float]:
    """Return OUE's ``(p, q) = (1/2, 1/(e^eps+1))``."""
    return 0.5, 1.0 / (math.exp(float(epsilon)) + 1.0)


def ue_epsilon(p: float, q: float) -> float:
    """Privacy budget implied by UE flip probabilities (Theorem 1)."""
    if not (0.0 < q < p < 1.0):
        raise ValueError(f"need 0 < q < p < 1, got p={p}, q={q}")
    return math.log(p * (1.0 - q) / ((1.0 - p) * q))
