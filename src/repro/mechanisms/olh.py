"""Optimal Local Hashing (OLH).

Each user hashes her value into a small range ``g = round(e^eps) + 1`` with
a per-user hash function, then perturbs the hashed value with GRR over
``[0, g)``.  The server's support for value ``v`` counts users whose report
equals their own hash of ``v``:

* a user holding ``v`` matches with probability ``p = e^eps/(e^eps+g-1)``;
* any other user matches with probability ``q = 1/g`` exactly.

OLH matches OUE's variance with ``O(log n)`` communication (Wang et al.,
USENIX Security 2017).  The paper cites it as the other state-of-the-art
oracle; we include it so the adaptive selector and benches can compare all
three.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from .backends import get_kernel
from .backends.numpy_backend import PRIME as _PRIME
from .base import FrequencyOracle, calibrate_counts, pure_protocol_variance


def _universal_hash(values: np.ndarray, a: int, b: int, g: int) -> np.ndarray:
    """``((a*x + b) mod PRIME) mod g`` universal hash (backend-dispatched)."""
    return get_kernel("universal_hash")(values, a, b, g)


def as_report_triples(reports) -> np.ndarray:
    """Normalise OLH reports into an ``(n, 3)`` int64 array (maybe empty).

    Shared by :meth:`OptimalLocalHashing.aggregate` and the streaming
    accumulator so the accepted shapes and errors cannot drift apart.
    """
    if not isinstance(reports, np.ndarray):
        reports = list(reports)
    arr = np.asarray(reports, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise AggregationError(
            f"OLH reports must be (a, b, report) triples, got shape {arr.shape}"
        )
    return arr


def bulk_hash_support(
    a: np.ndarray,
    b: np.ndarray,
    reports: np.ndarray,
    domain_size: int,
    g: int,
    block_elements: int = 4_000_000,
) -> np.ndarray:
    """OLH support counts for a batch: ``support_v = #{u : hash_u(v) = r_u}``.

    The work is ``O(n * d)`` either way, but never one Python iteration
    per report: the NumPy backend evaluates the hashes in blocks of
    roughly ``block_elements`` matrix cells at memory bandwidth, and the
    numba backend streams the domain per user in a compiled ``nogil``
    loop with O(1) extra memory.  Shared by
    :meth:`OptimalLocalHashing.aggregate` and the streaming accumulator
    (:class:`repro.stream.accumulators.LocalHashAccumulator`).
    """
    a = np.asarray(a, dtype=np.uint64).ravel()
    b = np.asarray(b, dtype=np.uint64).ravel()
    reports = np.asarray(reports, dtype=np.int64).ravel()
    if not (a.size == b.size == reports.size):
        raise AggregationError(
            f"hash coefficients and reports must align: {a.size}, {b.size}, "
            f"{reports.size}"
        )
    if reports.size == 0:
        return np.zeros(domain_size, dtype=np.int64)
    if reports.min() < 0 or reports.max() >= g:
        raise AggregationError(f"OLH report outside [0, {g})")
    return get_kernel("bulk_hash_support")(
        a, b, reports, int(domain_size), int(g), block_elements
    )


class OptimalLocalHashing(FrequencyOracle):
    """ε-LDP local-hashing oracle with the variance-optimal range ``g``."""

    name = "olh"

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        g: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, domain_size, rng)
        e = math.exp(self.epsilon)
        self.g = int(g) if g is not None else max(2, int(round(e)) + 1)
        if self.g < 2:
            raise ValueError(f"hash range g must be >= 2, got {self.g}")
        self.p = e / (e + self.g - 1.0)
        self.q = 1.0 / self.g

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def _draw_hash(self) -> tuple[int, int]:
        a = int(self.rng.integers(1, _PRIME))
        b = int(self.rng.integers(0, _PRIME))
        return a, b

    def privatize(self, value: int) -> tuple[int, int, int]:
        """Return ``(a, b, perturbed_hash)``; ``(a, b)`` names the user's
        hash function so the server can evaluate it on every domain value."""
        value = self._check_value(value)
        a, b = self._draw_hash()
        hashed = int(_universal_hash(np.asarray([value]), a, b, self.g)[0])
        if self.rng.random() < self.p:
            report = hashed
        else:
            other = int(self.rng.integers(0, self.g - 1))
            report = other + (other >= hashed)
        return (a, b, report)

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Privatise a batch into an ``(batch, 3)`` int64 array of
        ``(a, b, perturbed_hash)`` triples in one vectorised pass.

        Per-user hash functions are drawn, evaluated on the user's value
        and GRR-perturbed over ``[0, g)`` without any Python loop; the law
        per row matches :meth:`privatize`.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise DomainError(f"values outside domain [0, {self.domain_size})")
        a = self.rng.integers(1, _PRIME, size=values.size, dtype=np.int64)
        b = self.rng.integers(0, _PRIME, size=values.size, dtype=np.int64)
        hashed = (
            (a.astype(np.uint64) * values.astype(np.uint64) + b.astype(np.uint64))
            % _PRIME
            % np.uint64(self.g)
        ).astype(np.int64)
        keep = self.rng.random(values.size) < self.p
        others = self.rng.integers(0, self.g - 1, size=values.size)
        others = others + (others >= hashed)
        reports = np.where(keep, hashed, others)
        return np.column_stack([a, b, reports]).astype(np.int64)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Support of ``v``: number of users with ``hash_u(v) == report_u``.

        Work is ``O(n * d)`` but vectorised through
        :func:`bulk_hash_support`; for sampling experiments prefer
        :meth:`simulate_support`, which avoids the hash evaluation
        entirely.
        """
        arr = as_report_triples(reports)
        if arr.size == 0:
            return np.zeros(self.domain_size, dtype=np.int64)
        return bulk_hash_support(
            arr[:, 0], arr[:, 1], arr[:, 2], self.domain_size, self.g
        )

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        return calibrate_counts(support, n, self.p, self.q)

    # ------------------------------------------------------------------
    # simulation (marginally exact)
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Marginally exact: ``support_v = Binom(n_v, p) + Binom(n-n_v, 1/g)``.

        Cross-value correlations induced by shared hash functions are not
        reproduced; the estimator only uses marginals.
        """
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        n = int(counts.sum())
        hits = rng.binomial(counts, self.p)
        collisions = rng.binomial(n - counts, self.q)
        return (hits + collisions).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        return pure_protocol_variance(n, self.p, self.q, true_count)

    def communication_bits(self) -> int:
        # The hash function can be shipped as a seed; report is log2(g).
        return 64 + max(1, math.ceil(math.log2(self.g)))
