"""Hadamard randomized response (HR).

Each user draws a uniform row index ``j`` of the ``K x K`` Hadamard matrix
(``K`` = smallest power of two ``> d``), computes the coefficient
``H[j, v+1] in {-1, +1}`` of her value's column, flips its sign with
probability ``1/(e^eps + 1)``, and sends ``(j, sign)``.  Orthogonality of
Hadamard columns gives an unbiased estimator with ``O(log K)``
communication — this is the transform behind Apple's HCMS collector cited
in the paper's introduction.

Values are mapped to columns ``1..d`` so the constant column 0 is unused.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from .base import FrequencyOracle


def _hadamard_entry(row: np.ndarray, col: np.ndarray) -> np.ndarray:
    """``H[row, col] = (-1)^popcount(row & col)`` for Sylvester matrices."""
    anded = np.bitwise_and(np.asarray(row, dtype=np.uint64), np.asarray(col, dtype=np.uint64))
    # Vectorised popcount parity.
    parity = np.zeros(anded.shape, dtype=np.uint64)
    x = anded.copy()
    while np.any(x):
        parity ^= x & 1
        x >>= np.uint64(1)
    return np.where(parity == 1, -1, 1).astype(np.int64)


class HadamardResponse(FrequencyOracle):
    """ε-LDP Hadamard response oracle."""

    name = "hr"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        super().__init__(epsilon, domain_size, rng)
        self.K = 1 << math.ceil(math.log2(self.domain_size + 1))
        e = math.exp(self.epsilon)
        #: Probability of keeping the true sign.
        self.p_keep = e / (e + 1.0)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def privatize(self, value: int) -> tuple[int, int]:
        value = self._check_value(value)
        j = int(self.rng.integers(0, self.K))
        sign = int(_hadamard_entry(np.asarray([j]), np.asarray([value + 1]))[0])
        if self.rng.random() >= self.p_keep:
            sign = -sign
        return (j, sign)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate(self, reports: Iterable[tuple[int, int]]) -> np.ndarray:
        """Return the correlation sum ``S_v = sum_u sign_u * H[j_u, v+1]``.

        Unlike count-based oracles the "support" here is a signed sum; the
        calibration in :meth:`estimate` is adjusted accordingly.
        """
        support = np.zeros(self.domain_size, dtype=np.int64)
        cols = np.arange(1, self.domain_size + 1, dtype=np.uint64)
        for j, sign in reports:
            if sign not in (-1, 1):
                raise AggregationError(f"HR sign must be +/-1, got {sign}")
            if not 0 <= j < self.K:
                raise AggregationError(f"HR row {j} outside [0, {self.K})")
            support += sign * _hadamard_entry(np.full(self.domain_size, j, dtype=np.uint64), cols)
        return support

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        scale = 2.0 * self.p_keep - 1.0
        return np.asarray(support, dtype=np.float64) / scale

    # ------------------------------------------------------------------
    # simulation (marginally exact)
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Per value ``v``: holders contribute ``+1`` w.p. ``p_keep`` else
        ``-1``; non-holders contribute ``+/-1`` uniformly (orthogonality)."""
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        n = int(counts.sum())
        holder_pos = rng.binomial(counts, self.p_keep)
        holder_sum = 2 * holder_pos - counts
        other_pos = rng.binomial(n - counts, 0.5)
        other_sum = 2 * other_pos - (n - counts)
        return (holder_sum + other_sum).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        scale = (2.0 * self.p_keep - 1.0) ** 2
        holders = 4.0 * true_count * self.p_keep * (1.0 - self.p_keep)
        others = float(n - true_count)
        return (holders + others) / scale

    def communication_bits(self) -> int:
        return math.ceil(math.log2(self.K)) + 1


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (``x >= 1``)."""
    if x < 1:
        raise DomainError(f"need x >= 1, got {x}")
    return 1 << (x - 1).bit_length()
