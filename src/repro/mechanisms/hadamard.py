"""Hadamard randomized response (HR).

Each user draws a uniform row index ``j`` of the ``K x K`` Hadamard matrix
(``K`` = smallest power of two ``> d``), computes the coefficient
``H[j, v+1] in {-1, +1}`` of her value's column, flips its sign with
probability ``1/(e^eps + 1)``, and sends ``(j, sign)``.  Orthogonality of
Hadamard columns gives an unbiased estimator with ``O(log K)``
communication — this is the transform behind Apple's HCMS collector cited
in the paper's introduction.

Values are mapped to columns ``1..d`` so the constant column 0 is unused.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..exceptions import AggregationError, DomainError
from ..rng import RngLike
from .base import FrequencyOracle
from .engine import batch_spans


def _hadamard_entry(row: np.ndarray, col: np.ndarray) -> np.ndarray:
    """``H[row, col] = (-1)^popcount(row & col)`` for Sylvester matrices."""
    anded = np.bitwise_and(np.asarray(row, dtype=np.uint64), np.asarray(col, dtype=np.uint64))
    # Vectorised popcount parity.
    parity = np.zeros(anded.shape, dtype=np.uint64)
    x = anded.copy()
    while np.any(x):
        parity ^= x & 1
        x >>= np.uint64(1)
    return np.where(parity == 1, -1, 1).astype(np.int64)


def as_report_pairs(reports) -> np.ndarray:
    """Normalise HR reports into an ``(n, 2)`` int64 array (maybe empty)."""
    if not isinstance(reports, np.ndarray):
        reports = list(reports)
    arr = np.asarray(reports, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise AggregationError(
            f"HR reports must be (row, sign) pairs, got shape {arr.shape}"
        )
    return arr


def bulk_signed_support(
    rows: np.ndarray,
    signs: np.ndarray,
    domain_size: int,
    K: int,
    block_elements: int = 4_000_000,
) -> np.ndarray:
    """Signed correlation sums ``S_v = sum_u sign_u * H[row_u, v+1]``.

    Every report's Hadamard row is evaluated over the whole value domain
    in NumPy blocks of roughly ``block_elements`` matrix cells.  Shared by
    :meth:`HadamardResponse.aggregate_batch` and the streaming accumulator
    (:class:`repro.stream.accumulators.HadamardAccumulator`).
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    signs = np.asarray(signs, dtype=np.int64).ravel()
    support = np.zeros(domain_size, dtype=np.int64)
    if rows.size == 0:
        return support
    if rows.min() < 0 or rows.max() >= K:
        raise AggregationError(f"HR row outside [0, {K})")
    if not np.isin(signs, (-1, 1)).all():
        raise AggregationError("HR sign must be +/-1")
    cols = np.arange(1, domain_size + 1, dtype=np.uint64)
    for span in batch_spans(rows.size, domain_size, block_elements):
        entries = _hadamard_entry(rows[span, None].astype(np.uint64), cols[None, :])
        support += (signs[span, None] * entries).sum(axis=0)
    return support


class HadamardResponse(FrequencyOracle):
    """ε-LDP Hadamard response oracle."""

    name = "hr"

    def __init__(self, epsilon: float, domain_size: int, rng: RngLike = None) -> None:
        super().__init__(epsilon, domain_size, rng)
        self.K = 1 << math.ceil(math.log2(self.domain_size + 1))
        e = math.exp(self.epsilon)
        #: Probability of keeping the true sign.
        self.p_keep = e / (e + 1.0)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def privatize(self, value: int) -> tuple[int, int]:
        value = self._check_value(value)
        j = int(self.rng.integers(0, self.K))
        sign = int(_hadamard_entry(np.asarray([j]), np.asarray([value + 1]))[0])
        if self.rng.random() >= self.p_keep:
            sign = -sign
        return (j, sign)

    def privatize_many(self, values: np.ndarray) -> np.ndarray:
        """Privatise a batch into an ``(batch, 2)`` int64 ``(row, sign)``
        array in one vectorised pass (same law as :meth:`privatize`)."""
        values = np.asarray(values, dtype=np.int64).ravel()
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise DomainError(f"values outside domain [0, {self.domain_size})")
        rows = self.rng.integers(0, self.K, size=values.size)
        signs = _hadamard_entry(rows.astype(np.uint64), (values + 1).astype(np.uint64))
        flip = self.rng.random(values.size) >= self.p_keep
        signs = np.where(flip, -signs, signs)
        return np.column_stack([rows, signs]).astype(np.int64)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def aggregate_batch(self, reports) -> np.ndarray:
        """Return the correlation sum ``S_v = sum_u sign_u * H[j_u, v+1]``.

        Unlike count-based oracles the "support" here is a signed sum; the
        calibration in :meth:`estimate` is adjusted accordingly.  The
        blockwise kernel is :func:`bulk_signed_support`.
        """
        arr = as_report_pairs(reports)
        return bulk_signed_support(arr[:, 0], arr[:, 1], self.domain_size, self.K)

    def estimate(self, support: np.ndarray, n: int) -> np.ndarray:
        scale = 2.0 * self.p_keep - 1.0
        return np.asarray(support, dtype=np.float64) / scale

    # ------------------------------------------------------------------
    # simulation (marginally exact)
    # ------------------------------------------------------------------
    def simulate_support(
        self, true_counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Per value ``v``: holders contribute ``+1`` w.p. ``p_keep`` else
        ``-1``; non-holders contribute ``+/-1`` uniformly (orthogonality)."""
        rng = rng if rng is not None else self.rng
        counts = self._check_counts(true_counts)
        n = int(counts.sum())
        holder_pos = rng.binomial(counts, self.p_keep)
        holder_sum = 2 * holder_pos - counts
        other_pos = rng.binomial(n - counts, 0.5)
        other_sum = 2 * other_pos - (n - counts)
        return (holder_sum + other_sum).astype(np.int64)

    # ------------------------------------------------------------------
    # theory & accounting
    # ------------------------------------------------------------------
    def variance(self, n: int, true_count: float = 0.0) -> float:
        scale = (2.0 * self.p_keep - 1.0) ** 2
        holders = 4.0 * true_count * self.p_keep * (1.0 - self.p_keep)
        others = float(n - true_count)
        return (holders + others) / scale

    def communication_bits(self) -> int:
        return math.ceil(math.log2(self.K)) + 1


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (``x >= 1``)."""
    if x < 1:
        raise DomainError(f"need x >= 1, got {x}")
    return 1 << (x - 1).bit_length()
