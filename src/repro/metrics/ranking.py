"""Top-k ranking metrics (paper Section VII-B).

* :func:`f1_score` — with a fixed output size ``k`` precision equals
  recall, so the F1 score reduces to the fraction of mined items that are
  true top-k items.
* :func:`ncr` — Normalized Cumulative Rank: the true top-1 item is worth
  ``k`` points, the second ``k-1``, ..., the k-th ``1``; mined items earn
  their points and the sum is normalised by ``k(k+1)/2``.

Both are averaged over classes by :func:`average_over_classes`, matching
how the paper reports a single number per method.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import DomainError


def f1_score(mined: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of ``truth`` recovered by ``mined`` (= precision = recall).

    ``mined`` may be shorter than ``truth`` (a scheme can fail to produce
    ``k`` items); extra mined items beyond ``len(truth)`` are an error.
    """
    if not truth:
        raise DomainError("ground-truth top-k must be non-empty")
    if len(mined) > len(truth):
        raise DomainError(
            f"mined more items ({len(mined)}) than the ground truth holds "
            f"({len(truth)}); pass the same k to both sides"
        )
    if len(set(mined)) != len(mined):
        raise DomainError("mined item list contains duplicates")
    hits = len(set(mined) & set(truth))
    return hits / len(truth)


def ncr(mined: Sequence[int], truth: Sequence[int]) -> float:
    """Normalized Cumulative Rank of ``mined`` against ordered ``truth``.

    ``truth`` must be ordered most-frequent-first; its ``i``-th entry is
    worth ``k - i`` points.
    """
    if not truth:
        raise DomainError("ground-truth top-k must be non-empty")
    if len(set(mined)) != len(mined):
        raise DomainError("mined item list contains duplicates")
    k = len(truth)
    quality = {item: k - rank for rank, item in enumerate(truth)}
    earned = sum(quality.get(item, 0) for item in mined)
    return 2.0 * earned / (k * (k + 1))


def average_over_classes(
    mined_per_class: Mapping[int, Sequence[int]],
    truth_per_class: Mapping[int, Sequence[int]],
    metric: str = "f1",
) -> float:
    """Average :func:`f1_score` or :func:`ncr` across classes.

    Classes present in the ground truth but missing from ``mined_per_class``
    score zero (a scheme that returns nothing for a class earns nothing).
    """
    if metric not in ("f1", "ncr"):
        raise DomainError(f"metric must be 'f1' or 'ncr', got {metric!r}")
    if not truth_per_class:
        raise DomainError("ground truth holds no classes")
    score_fn = f1_score if metric == "f1" else ncr
    total = 0.0
    for label, truth in truth_per_class.items():
        mined = mined_per_class.get(label, [])
        total += score_fn(mined, truth)
    return total / len(truth_per_class)
