"""Frequency-estimation error metrics (paper Section VII-B).

The paper's headline metric is RMSE over all label-item cells::

    RMSE = sqrt( (1 / (|C| |I|)) * sum_{C,I} (f_hat(C,I) - f(C,I))^2 )

MAE and maximum error are provided for diagnostics.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DomainError


def _check_same_shape(estimated: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise DomainError(
            f"shape mismatch: estimated {estimated.shape} vs truth {truth.shape}"
        )
    if estimated.size == 0:
        raise DomainError("cannot score empty arrays")
    return estimated, truth


def rmse(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Root mean squared error over all

    cells of the estimate matrix (the paper's frequency metric)."""
    estimated, truth = _check_same_shape(estimated, truth)
    return float(np.sqrt(np.mean((estimated - truth) ** 2)))


def mae(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error over all cells."""
    estimated, truth = _check_same_shape(estimated, truth)
    return float(np.mean(np.abs(estimated - truth)))


def max_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Largest absolute cell error (worst-case diagnostic)."""
    estimated, truth = _check_same_shape(estimated, truth)
    return float(np.max(np.abs(estimated - truth)))


def relative_error(
    estimated: np.ndarray, truth: np.ndarray, floor: float = 1.0
) -> float:
    """Mean ``|error| / max(truth, floor)``; ``floor`` guards empty cells."""
    if floor <= 0:
        raise DomainError(f"floor must be positive, got {floor}")
    estimated, truth = _check_same_shape(estimated, truth)
    return float(np.mean(np.abs(estimated - truth) / np.maximum(truth, floor)))
