"""Evaluation metrics: RMSE for frequency estimation, F1/NCR for top-k."""

from .frequency import mae, max_error, relative_error, rmse
from .ranking import average_over_classes, f1_score, ncr

__all__ = [
    "average_over_classes",
    "f1_score",
    "mae",
    "max_error",
    "ncr",
    "relative_error",
    "rmse",
]
