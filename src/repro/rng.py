"""Random-number plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects that are passed explicitly (never a module-level global), so every
experiment is reproducible from a single integer seed.  These helpers
normalise the common "seed or generator" argument and derive independent
child generators for sub-components.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-seeded generator, an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new generator, and an
    existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Draw ``n`` independent integer spawn keys from ``rng``.

    Spawn keys are the serialisable form of :func:`spawn`: benches and
    multi-worker paths (shards, pool workers, socket connections) derive
    one key per worker from the single base seed instead of reusing that
    seed — or fixed offsets of it — across workers, so worker streams
    never collide while the whole run stays reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    The children are seeded from :func:`spawn_seeds` draws of the parent,
    so a run is fully determined by the parent's seed while sub-components
    (e.g. one per trial) do not share streams.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` (for shuffler hand-off)."""
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def optional_rng(
    rng: Optional[np.random.Generator], fallback: RngLike = None
) -> np.random.Generator:
    """Return ``rng`` if given, else a generator built from ``fallback``."""
    if rng is not None:
        return rng
    return ensure_rng(fallback)
