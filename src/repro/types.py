"""Shared value types used across the library.

The library deals in *label-item pairs*: each user holds one item drawn
from an item domain of size ``d`` and one class label drawn from a label
domain of size ``c``.  Domains are always the integer ranges ``[0, d)`` and
``[0, c)``; mapping application values (strings, product ids, ...) onto
those ranges is the caller's responsibility (see
:class:`repro.datasets.base.LabelItemDataset.from_pairs` for a helper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

#: Sentinel passed to :class:`repro.mechanisms.validity.ValidityPerturbation`
#: (and accepted by the correlated mechanism) to mark an item that is not in
#: the current valid domain — e.g. an item pruned from the candidate set.
INVALID_ITEM: int = -1

#: A client-side report.  The concrete type depends on the mechanism:
#: an ``int`` for GRR, a ``numpy`` bit vector for unary encodings, a tuple
#: for OLH and the correlated mechanism.
Report = Union[int, np.ndarray, tuple]


@dataclass(frozen=True)
class LabelItemPair:
    """One user's private datum: an item tagged with its class label."""

    label: int
    item: int

    def __post_init__(self) -> None:
        if self.label < 0:
            raise ValueError(f"label must be non-negative, got {self.label}")
        if self.item < 0 and self.item != INVALID_ITEM:
            raise ValueError(
                f"item must be non-negative or INVALID_ITEM, got {self.item}"
            )

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(label, item)`` as a plain tuple."""
        return (self.label, self.item)


@dataclass(frozen=True)
class DomainSpec:
    """Sizes of the label and item domains for a multi-class task."""

    n_classes: int
    n_items: int

    def __post_init__(self) -> None:
        if self.n_classes < 1:
            raise ValueError(f"need at least one class, got {self.n_classes}")
        if self.n_items < 1:
            raise ValueError(f"need at least one item, got {self.n_items}")

    @property
    def joint_size(self) -> int:
        """Size of the Cartesian product domain used by PTJ."""
        return self.n_classes * self.n_items

    def flatten(self, label: int, item: int) -> int:
        """Map a pair to its index in the joint (PTJ) domain."""
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label {label} outside [0, {self.n_classes})")
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} outside [0, {self.n_items})")
        return label * self.n_items + item

    def unflatten(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`flatten`."""
        if not 0 <= index < self.joint_size:
            raise ValueError(f"index {index} outside [0, {self.joint_size})")
        return divmod(index, self.n_items)
