"""Benchmark harness regenerating every table and figure of the paper.

``repro.bench.experiments`` holds one function per experiment;
``pytest benchmarks/ --benchmark-only`` runs them all at laptop scale and
persists the reports under ``benchmarks/results/``; the ``repro-bench``
CLI (``python -m repro``) runs them individually, including at
``--scale full``.
"""

from .experiments import EXPERIMENTS, run_experiment
from .reporting import bench_scale, emit, format_table, results_dir

__all__ = [
    "EXPERIMENTS",
    "bench_scale",
    "emit",
    "format_table",
    "results_dir",
    "run_experiment",
]
