"""Throughput-regression gate over the machine-readable bench artifacts.

Compares a freshly produced ``BENCH_{stream,protocol,serve}.json`` against
the committed baseline of the same kind and fails when any shared
throughput series regressed by more than a threshold (30% by default —
wide enough to absorb CI-runner noise, tight enough to catch a real
performance cliff).

Only series present in *both* artifacts are compared: stream/protocol
artifacts key throughput per framework, serve artifacts per
``(connections, batch_size)`` grid cell.  Aggregates that are not
comparable across differing grids (``max_reports_per_sec``) are ignored,
as are series that appear on only one side (reported as notes, never
failures), so shrinking or growing a bench grid does not trip the gate.

Importable API (:func:`extract_rates`, :func:`compare`,
:func:`compare_artifacts`) with a thin CLI wrapper at
``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

#: Fractional throughput drop that fails the gate (0.30 == -30%).
DEFAULT_THRESHOLD = 0.30

#: Per-framework throughput fields, in stream/protocol artifacts.
_FRAMEWORK_RATE_FIELDS = ("reports_per_sec", "users_per_sec")


def extract_rates(payload: dict) -> dict[str, float]:
    """The comparable throughput series of one bench artifact.

    Returns ``{series_key: rate}`` — ``"<framework>:<field>"`` for the
    stream/protocol shapes and
    ``"connections=<n>,batch=<b>:reports_per_sec"`` per serve grid cell.
    Unknown payload shapes yield an empty mapping rather than raising, so
    the gate degrades to a no-op on future artifact kinds.
    """
    rates: dict[str, float] = {}
    frameworks = payload.get("frameworks")
    if isinstance(frameworks, dict):
        for name, stats in frameworks.items():
            for field in _FRAMEWORK_RATE_FIELDS:
                if isinstance(stats, dict) and field in stats:
                    rates[f"{name}:{field}"] = float(stats[field])
    for cell in payload.get("cells", ()):
        if not isinstance(cell, dict) or "reports_per_sec" not in cell:
            continue
        key = (
            f"connections={cell.get('connections')},"
            f"batch={cell.get('batch_size')}:reports_per_sec"
        )
        rates[key] = float(cell["reports_per_sec"])
    return rates


def config_summary(payload: dict) -> Optional[str]:
    """The execution configuration a bench artifact's rates belong to.

    Pulls the kernel backend, engine thread schedule and shard transport
    from the artifact's ``meta`` block (and top-level ``executor``), so
    the gate can flag comparisons across differing configurations — a
    numba-backed fresh run against a numpy baseline clears the gate
    trivially, and the inverse would fail it for the wrong reason.
    """
    meta = payload.get("meta") or {}
    parts = []
    backend = meta.get("backend")
    if isinstance(backend, dict) and backend.get("name"):
        parts.append(f"backend={backend['name']}")
    elif isinstance(backend, str):
        parts.append(f"backend={backend}")
    if meta.get("threads") is not None:
        parts.append(f"threads={meta['threads']}")
    executor = payload.get("executor")
    if executor:
        parts.append(f"executor={executor}")
    transport = meta.get("transport") or payload.get("transport")
    if transport:
        parts.append(f"transport={transport}")
    tracing = meta.get("tracing")
    if isinstance(tracing, dict) and (
        tracing.get("enabled") or tracing.get("dropped")
    ):
        # Only a live tracing plane is a config difference worth flagging
        # — artifacts predating the tracing block compare as untraced.
        parts.append("tracing=on")
        if tracing.get("dropped"):
            parts.append(f"spans_dropped={tracing['dropped']}")
    return " ".join(parts) or None


def compare(
    baseline: dict,
    fresh: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Compare two artifact payloads; returns ``(regressions, lines)``.

    ``regressions`` holds the series keys that dropped by more than
    ``threshold``; ``lines`` is a human-readable account of every shared
    series plus notes for one-sided ones and for differing run
    configurations (backend / threads / transport).
    """
    base_rates = extract_rates(baseline)
    fresh_rates = extract_rates(fresh)
    regressions: list[str] = []
    lines: list[str] = []
    base_config = config_summary(baseline)
    fresh_config = config_summary(fresh)
    if base_config or fresh_config:
        lines.append(
            f"  config     baseline[{base_config or '?'}] "
            f"fresh[{fresh_config or '?'}]"
        )
        if base_config != fresh_config:
            lines.append(
                "  note       run configurations differ; "
                "rates may not be directly comparable"
            )
    for key in sorted(set(base_rates) & set(fresh_rates)):
        before, after = base_rates[key], fresh_rates[key]
        change = (after - before) / before if before > 0 else 0.0
        verdict = "ok"
        if change < -threshold:
            verdict = "REGRESSION"
            regressions.append(key)
        lines.append(
            f"  {verdict:10s} {key}: {before:,.0f} -> {after:,.0f} "
            f"({change:+.1%})"
        )
    for key in sorted(set(base_rates) - set(fresh_rates)):
        lines.append(f"  note       {key}: only in baseline (skipped)")
    for key in sorted(set(fresh_rates) - set(base_rates)):
        lines.append(f"  note       {key}: only in fresh run (skipped)")
    if not lines:
        lines.append("  note       no comparable throughput series")
    return regressions, lines


def compare_artifacts(
    baseline_path: Path | str,
    fresh_path: Path | str,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """:func:`compare` over two artifact files, with a header line."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(fresh_path, encoding="utf-8") as handle:
        fresh = json.load(handle)
    regressions, lines = compare(baseline, fresh, threshold=threshold)
    header = f"{baseline_path} vs {fresh_path} (threshold -{threshold:.0%}):"
    return regressions, [header, *lines]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``compare_bench.py [--threshold F] BASELINE FRESH [B F ...]``.

    Exits 0 when no shared series regressed, 1 on any regression, 2 on
    usage errors.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="compare_bench.py",
        description=(
            "Fail when a fresh bench artifact regresses its committed "
            "baseline's throughput by more than the threshold."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="PATH",
        help="baseline/fresh artifact paths, in alternating pairs",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional drop that fails the gate (default: 0.30)",
    )
    args = parser.parse_args(argv)
    if len(args.artifacts) % 2 != 0:
        parser.error("artifacts must come in baseline/fresh pairs")
    failed: list[str] = []
    for index in range(0, len(args.artifacts), 2):
        baseline_path, fresh_path = args.artifacts[index : index + 2]
        regressions, lines = compare_artifacts(
            baseline_path, fresh_path, threshold=args.threshold
        )
        print("\n".join(lines))
        failed.extend(f"{fresh_path}: {key}" for key in regressions)
    if failed:
        print(f"\n{len(failed)} throughput regression(s):")
        for item in failed:
            print(f"  {item}")
        return 1
    print("\nno throughput regressions")
    return 0
