"""Time-varying stream benchmark: staleness and recall under drift.

Replays the synthetic drift workloads of
:func:`repro.datasets.synthetic.drift_stream` — frequency ramps,
class-popularity flips, and burst arrivals — against the streaming plane
and measures how the served state tracks a moving distribution:

* a **windowed framework session** (``ptj`` behind a
  :class:`~repro.stream.drain.SessionDrain` with a sliding ``window``)
  serves the pair-count estimate; *staleness* is the total-variation
  distance between the served estimate and the step's true distribution,
  and a :class:`~repro.stream.drift.DriftDetector` scores each step's
  residual against the estimate's closed-form variance bound;
* an :class:`~repro.stream.topk_session.OnlineTopKSession` mines the
  per-class top-k continuously (restarting after each completed mining
  pass); *recall* compares the latest completed result against the
  step's current true top-k.

Every drift pattern runs under two round-advancement configs — a fixed
per-round user budget and the adaptive SNR-driven
:meth:`~repro.stream.topk_session.OnlineTopKSession.maybe_advance` — so
the artifact shows what adaptivity buys per pattern.

Besides the text report the run writes ``BENCH_drift.json`` (repo root
by default; override with ``REPRO_BENCH_DRIFT_ARTIFACT``).  The
``frameworks`` block keys ``"<pattern>:<config>"`` series with
``reports_per_sec`` so the existing regression gate
(:mod:`repro.bench.regression`) compares drift runs like any other
bench artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from ..datasets import DRIFT_PATTERNS, drift_stream
from ..exceptions import ConfigurationError
from ..obs import metrics as obs_metrics
from ..rng import ensure_rng, spawn_seeds
from ..stream import DriftDetector, SessionDrain, make_session
from ..stream.topk_session import OnlineTopKSession
from .reporting import artifact_path, bench_meta, format_table

#: Workload parameters per scale.
SCALES = {
    "quick": dict(
        n_steps=12, reports_per_step=3_000, n_classes=3, n_items=64, k=4
    ),
    "full": dict(
        n_steps=48, reports_per_step=25_000, n_classes=5, n_items=256, k=8
    ),
}

#: Round-advancement configurations benchmarked per drift pattern.
CONFIGS: tuple[str, ...] = ("fixed_window", "adaptive")

#: Sliding-window length, in multiples of one drift step's report volume.
WINDOW_STEPS = 4

#: SNR bar for the adaptive config's round advancement.
SNR_THRESHOLD = 3.0


def _artifact_path() -> Path:
    return artifact_path("REPRO_BENCH_DRIFT_ARTIFACT", "BENCH_drift.json")


def _staleness(estimate: np.ndarray, truth_probs: np.ndarray) -> float:
    """Total-variation distance between the served estimate (normalised)
    and the step's true joint distribution — 0 tracks perfectly, 1 is a
    disjoint guess.  Negative estimate cells (calibration noise) clip to
    zero before normalising."""
    mass = np.clip(np.asarray(estimate, dtype=np.float64), 0.0, None)
    total = float(mass.sum())
    if total <= 0.0:
        return 1.0
    return float(0.5 * np.abs(mass / total - truth_probs).sum())


def _recall(
    mined: Optional[dict[int, list[int]]], truth_topk: dict[int, list[int]]
) -> float:
    """Mean per-class fraction of the true top-k recovered by ``mined``
    (the miner's latest completed result); 0 before the first result."""
    if mined is None:
        return 0.0
    hits = total = 0
    for label, truth in truth_topk.items():
        k = len(truth)
        hits += len(set(mined.get(label, ())[:k]) & set(truth))
        total += k
    return hits / float(total) if total else 0.0


def _new_miner(
    k: int, epsilon: float, n_classes: int, n_items: int, seed: int
) -> OnlineTopKSession:
    return OnlineTopKSession(
        k=k,
        epsilon=epsilon,
        n_classes=n_classes,
        n_items=n_items,
        mode="simulate",
        rng=ensure_rng(seed),
    )


def _run_one(
    pattern: str,
    config: str,
    params: dict,
    epsilon: float,
    stream_seed: int,
    session_seed: int,
    miner_seeds: list[int],
) -> dict:
    """One (pattern, config) cell: stream every drift step through the
    windowed serving session and the continuously restarted miner."""
    c, d, k = params["n_classes"], params["n_items"], params["k"]
    per_step = params["reports_per_step"]
    window = WINDOW_STEPS * per_step
    fixed_budget = 2 * per_step

    session = make_session(
        "ptj",
        epsilon=epsilon,
        n_classes=c,
        n_items=d,
        mode="simulate",
        rng=ensure_rng(session_seed),
    )
    detector = DriftDetector()
    miner_iter = iter(miner_seeds)
    miner = _new_miner(k, epsilon, c, d, next(miner_iter))
    last_result: Optional[dict[int, list[int]]] = None
    mining_passes = 0

    series: list[dict] = []
    n_reports = 0
    with SessionDrain(session, window=window) as drain:
        with obs_metrics.span(
            "bench_drift_seconds", pattern=pattern, config=config
        ) as timer:
            for batch in drift_stream(
                pattern,
                n_steps=params["n_steps"],
                reports_per_step=per_step,
                n_classes=c,
                n_items=d,
                rng=ensure_rng(stream_seed),
            ):
                drain.submit(batch.labels, batch.items)
                snapshot = drain.snapshot()
                staleness = _staleness(
                    snapshot.estimate(), batch.truth.pair_probs()
                )
                report = detector.update(
                    snapshot.estimate(), snapshot.estimate_variance()
                )

                miner.ingest_batch(batch.labels, batch.items)
                if config == "adaptive":
                    # The safety valve sits at 1.5x the fixed budget so a
                    # pattern whose SNR never clears still finishes one
                    # mining pass within the stream's report volume.
                    while miner.maybe_advance(
                        snr_threshold=SNR_THRESHOLD,
                        min_round_users=per_step // 2,
                        max_round_users=(3 * fixed_budget) // 2,
                    ):
                        if miner.finished:
                            break
                else:
                    while not miner.finished and miner.round_ingested >= fixed_budget:
                        miner.advance_round()
                if miner.finished:
                    last_result = miner.topk(k)
                    mining_passes += 1
                    miner = _new_miner(k, epsilon, c, d, next(miner_iter))

                truth_topk = batch.truth.topk(k)
                series.append(
                    {
                        "time": float(batch.time),
                        "staleness": staleness,
                        "drift_score": report.score,
                        "drifted": report.drifted,
                        "recall": _recall(last_result, truth_topk),
                    }
                )
                n_reports += batch.n_reports
        elapsed = timer.elapsed

    staleness_vals = [row["staleness"] for row in series]
    recalls = [row["recall"] for row in series]
    return {
        "pattern": pattern,
        "config": config,
        "n_reports": n_reports,
        "elapsed_sec": elapsed,
        "reports_per_sec": n_reports / elapsed if elapsed > 0 else float("inf"),
        "window": window,
        "staleness_mean": float(np.mean(staleness_vals)),
        "staleness_final": staleness_vals[-1],
        "recall_mean": float(np.mean(recalls)),
        "recall_final": recalls[-1],
        "n_drift_flags": sum(1 for row in series if row["drifted"]),
        "mining_passes": mining_passes,
        "series": series,
    }


def run_drift_benchmark(
    scale: str = "quick",
    seed: int = 0,
    reports_per_step: Optional[int] = None,
    epsilon: float = 4.0,
    artifact: Optional[str] = None,
) -> tuple[str, dict]:
    """Run the drift benchmark; returns ``(report, artifact_payload)``.

    Every pattern in :data:`~repro.datasets.synthetic.DRIFT_PATTERNS`
    runs under every config in :data:`CONFIGS`.  The same stream seed is
    reused across configs of a pattern so fixed-vs-adaptive rows replay
    the identical drift workload.
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(SCALES)}, got {scale!r}"
        )
    params = dict(SCALES[scale])
    if reports_per_step is not None:
        if reports_per_step < 1:
            raise ConfigurationError(
                f"reports_per_step must be >= 1, got {reports_per_step}"
            )
        params["reports_per_step"] = int(reports_per_step)

    rng = ensure_rng(seed)
    registry = obs_metrics.get_registry()
    rows = []
    cells: dict[str, dict] = {}
    seeds_used: dict[str, list[int]] = {}
    # A generous miner-seed pool: the miner restarts after each completed
    # mining pass, an unknown-ahead-of-time count.
    miner_pool = 4 + params["n_steps"]
    with obs_metrics.enabled():
        for pattern in DRIFT_PATTERNS:
            stream_seed, session_base = (int(s) for s in spawn_seeds(rng, 2))
            for config in CONFIGS:
                session_seed, *miner_seeds = (
                    int(s) for s in spawn_seeds(ensure_rng(session_base), 1 + miner_pool)
                )
                result = _run_one(
                    pattern,
                    config,
                    params,
                    epsilon,
                    stream_seed,
                    session_seed,
                    miner_seeds,
                )
                key = f"{pattern}:{config}"
                cells[key] = result
                seeds_used[key] = [stream_seed, session_seed, *miner_seeds]
                rows.append(
                    [
                        pattern,
                        config,
                        result["n_reports"],
                        f"{result['reports_per_sec']:,.0f}",
                        round(result["staleness_mean"], 3),
                        round(result["recall_mean"], 3),
                        round(result["recall_final"], 3),
                        result["n_drift_flags"],
                        result["mining_passes"],
                    ]
                )

    payload = {
        "scale": scale,
        "seed": seed,
        "epsilon": epsilon,
        "n_steps": params["n_steps"],
        "reports_per_step": params["reports_per_step"],
        "n_classes": params["n_classes"],
        "n_items": params["n_items"],
        "k": params["k"],
        "window_steps": WINDOW_STEPS,
        "snr_threshold": SNR_THRESHOLD,
        "patterns": list(DRIFT_PATTERNS),
        "configs": list(CONFIGS),
        # The regression gate reads per-series reports_per_sec from here.
        "frameworks": {
            key: {
                "reports_per_sec": cell["reports_per_sec"],
                "n_ingested": cell["n_reports"],
                "staleness_mean": cell["staleness_mean"],
                "recall_mean": cell["recall_mean"],
                "recall_final": cell["recall_final"],
                "n_drift_flags": cell["n_drift_flags"],
                "mining_passes": cell["mining_passes"],
            }
            for key, cell in cells.items()
        },
        "cells_detail": {
            key: {field: cell[field] for field in ("window", "series")}
            for key, cell in cells.items()
        },
        "meta": bench_meta(seeds=seeds_used, metrics=registry.snapshot()),
    }
    path = Path(artifact) if artifact is not None else _artifact_path()
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        artifact_note = f"artifact: {path}"
    except OSError as error:
        artifact_note = f"artifact not written ({error})"

    report = format_table(
        f"Drift tracking (scale={scale}, eps={epsilon}, "
        f"c={params['n_classes']}, d={params['n_items']}, k={params['k']}, "
        f"window={WINDOW_STEPS}x{params['reports_per_step']} reports)",
        [
            "pattern",
            "config",
            "reports",
            "reports/sec",
            "staleness",
            "recall",
            "recall@end",
            "flags",
            "passes",
        ],
        rows,
        note=(
            "staleness: total-variation distance served-vs-true per step "
            "(mean); recall: true top-k recovered by the latest completed "
            f"mining pass (mean / final step); {artifact_note}"
        ),
    )
    return report, payload
