"""Plain-text result tables for the benchmark harness.

Every experiment renders to an aligned text table resembling the paper's
figure/table, printed to stdout and persisted under
``benchmarks/results/`` so EXPERIMENTS.md can quote paper-vs-measured.
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path
from typing import Optional, Sequence

#: Version of the bench artifact ``meta`` block layout.
BENCH_META_SCHEMA = 1


def bench_meta(**extra) -> dict:
    """The schema-versioned ``meta`` block embedded in every bench artifact.

    Records where and with what the run happened (host, platform, python
    and numpy versions) plus whatever the bench adds — spawned RNG seeds
    (so the run is exactly reproducible from the JSON alone) and a
    telemetry registry snapshot.  A ``tracing`` block always rides along
    (enabled flag, retained and dropped span counts) so the regression
    gate can flag a baseline-vs-fresh run whose observability configs
    differ — tracing overhead must never masquerade as a code
    regression.  ``None``-valued extras are elided.
    """
    import numpy

    from ..obs.trace import get_tracer

    tracer = get_tracer()
    meta = {
        "schema": BENCH_META_SCHEMA,
        "host": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "tracing": {
            "enabled": bool(tracer.enabled),
            "spans": int(tracer.ring.total),
            "dropped": int(tracer.ring.dropped),
        },
    }
    meta.update({key: value for key, value in extra.items() if value is not None})
    return meta


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned monospace table with a title and optional note."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def artifact_path(env_var: str, filename: str) -> Path:
    """Where a machine-readable bench artifact is written.

    The ``env_var`` override wins; otherwise a src-layout checkout gets
    the repo-root path (installed packages would resolve into the
    interpreter's lib directory, so fall back to the working directory
    there).  Shared by the stream and protocol throughput benches.
    """
    override = os.environ.get(env_var)
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    if (root / "src" / "repro").is_dir():
        return root / filename
    return Path.cwd() / filename


def results_dir() -> Path:
    """Directory where bench outputs are persisted.

    Defaults to ``benchmarks/results`` relative to the repository root;
    override with ``REPRO_RESULTS_DIR``.
    """
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit(name: str, report: str) -> str:
    """Print a report and persist it as ``<name>.txt``; returns the report."""
    print()
    print(report)
    (results_dir() / f"{name}.txt").write_text(report)
    return report


def bench_scale() -> str:
    """The harness scale: ``"quick"`` (default) or ``"full"`` via the
    ``REPRO_BENCH_SCALE`` environment variable."""
    value = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return "full" if value == "full" else "quick"
