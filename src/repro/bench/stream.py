"""Streaming ingestion throughput benchmark.

Feeds a synthetic report stream (Zipf-ish item popularity over a skewed
class mix) through every framework's
:class:`~repro.stream.session.OnlineFrameworkSession` behind a
:class:`~repro.stream.sharding.ShardedAggregator` and measures sustained
ingestion throughput (reports/sec), end-of-stream estimation error, and
peak resident memory.  The quick scale streams 1.2M users per framework;
the full scale 10M.

Besides the usual text report the run emits a machine-readable
``BENCH_stream.json`` artifact (repo root by default; override with
``REPRO_BENCH_STREAM_ARTIFACT``) so successive PRs can track the
throughput trajectory.
"""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..mechanisms.backends import backend_info, use_backend
from ..metrics import rmse
from ..obs import metrics as obs_metrics
from ..rng import ensure_rng, spawn_seeds
from ..stream import ShardedAggregator, default_shard_count, make_session
from .reporting import artifact_path, bench_meta, format_table

#: Workload parameters per scale.
SCALES = {
    "quick": dict(n_users=1_200_000, n_classes=5, n_items=1024, batch_size=65_536),
    "full": dict(n_users=10_000_000, n_classes=5, n_items=4096, batch_size=262_144),
}

#: Frameworks benchmarked, in report order.
STREAM_FRAMEWORKS: tuple[str, ...] = ("hec", "ptj", "pts", "pts-cp")


def _artifact_path() -> Path:
    return artifact_path("REPRO_BENCH_STREAM_ARTIFACT", "BENCH_stream.json")


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        peak //= 1024
    return peak / 1024.0


def _synthetic_stream(
    n_users: int, n_classes: int, n_items: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Labels and items for ``n_users`` reports: mildly skewed class mix,
    Zipf-ish item head (enough structure for the error column to mean
    something without dominating the timing)."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    item_probs = ranks**-1.05
    item_probs /= item_probs.sum()
    class_probs = rng.dirichlet(np.full(n_classes, 5.0))
    labels = rng.choice(n_classes, size=n_users, p=class_probs)
    items = rng.choice(n_items, size=n_users, p=item_probs)
    return labels, items


def run_stream_benchmark(
    scale: str = "quick",
    seed: int = 0,
    n_users: Optional[int] = None,
    n_shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    epsilon: float = 1.0,
    frameworks: Sequence[str] = STREAM_FRAMEWORKS,
    mode: str = "simulate",
    executor: str = "thread",
    transport: Optional[str] = None,
    backend: Optional[str] = None,
    artifact: Optional[str] = None,
) -> tuple[str, dict]:
    """Run the ingestion benchmark; returns ``(report, artifact_payload)``.

    The payload is also written to ``artifact`` (default: the path from
    ``REPRO_BENCH_STREAM_ARTIFACT`` or ``BENCH_stream.json`` at the repo
    root); an unwritable location is reported in the table note rather
    than aborting the run, so the benchmark works from installed
    packages too.  Explicit ``n_users`` / ``n_shards`` / ``batch_size``
    override the scale's defaults.  ``transport`` picks the process-mode
    batch transport (shared-memory views or pickle; meaningless — and
    rejected — for the thread executor), ``backend`` pins the kernel
    backend for the run; both land in the artifact so a recorded rate is
    attributable to its configuration.
    """
    if scale not in SCALES:
        raise ConfigurationError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    params = dict(SCALES[scale])
    if n_users is not None:
        params["n_users"] = int(n_users)
    if batch_size is not None:
        params["batch_size"] = int(batch_size)
    n = params["n_users"]
    c, d = params["n_classes"], params["n_items"]
    batch = params["batch_size"]
    if n < 1 or batch < 1:
        raise ConfigurationError("n_users and batch_size must be positive")
    shards = default_shard_count() if n_shards is None else int(n_shards)
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")

    rng = ensure_rng(seed)
    labels, items = _synthetic_stream(n, c, d, rng)
    truth = np.bincount(labels * d + items, minlength=c * d).reshape(c, d)
    batches = [
        (labels[start : start + batch], items[start : start + batch])
        for start in range(0, n, batch)
    ]

    rows = []
    per_framework: dict[str, dict] = {}
    shard_seeds: dict[str, list[int]] = {}
    total_reports = 0
    # Measure with telemetry on: timings come from the shared obs.span
    # primitive and the run's registry snapshot lands in the artifact
    # meta block.  (spawn_seeds + ensure_rng reproduces spawn()'s exact
    # generator streams while capturing the seeds for the meta block.)
    registry = obs_metrics.get_registry()
    resolved_transport = None
    with use_backend(backend), obs_metrics.enabled():
        run_backend = backend_info()
        for name in frameworks:
            seeds = spawn_seeds(rng, shards)
            shard_seeds[name] = list(seeds)
            sessions = [
                make_session(
                    name,
                    epsilon=epsilon,
                    n_classes=c,
                    n_items=d,
                    mode=mode,
                    rng=ensure_rng(seed_value),
                )
                for seed_value in seeds
            ]
            with obs_metrics.span("bench_stream_seconds", framework=name) as timer:
                with ShardedAggregator(
                    sessions,
                    executor=executor,
                    transport=transport if executor == "process" else None,
                ) as aggregator:
                    resolved_transport = aggregator.transport
                    for item in batches:
                        aggregator.submit(item)
                    aggregator.drain()
                    merged = aggregator.merged()
            elapsed = timer.elapsed
            error = float(rmse(merged.estimate(), truth))
            reports_per_sec = (
                merged.n_ingested / elapsed if elapsed > 0 else float("inf")
            )
            total_reports += merged.n_ingested
            rows.append(
                [
                    name,
                    merged.n_ingested,
                    len(batches),
                    f"{elapsed:.2f}",
                    f"{reports_per_sec:,.0f}",
                    round(error, 1),
                ]
            )
            per_framework[name] = {
                "n_ingested": merged.n_ingested,
                "elapsed_sec": elapsed,
                "reports_per_sec": reports_per_sec,
                "rmse": error,
            }

    peak_rss_mb = _peak_rss_mb()
    payload = {
        "scale": scale,
        "seed": seed,
        "mode": mode,
        "epsilon": epsilon,
        "n_users": n,
        "n_classes": c,
        "n_items": d,
        "batch_size": batch,
        "n_shards": shards,
        "executor": executor,
        "transport": resolved_transport,
        "total_reports": total_reports,
        "peak_rss_mb": peak_rss_mb,
        "frameworks": per_framework,
        "meta": bench_meta(
            shard_seeds=shard_seeds,
            metrics=registry.snapshot(),
            backend=run_backend,
            transport=resolved_transport,
        ),
    }
    artifact_path = Path(artifact) if artifact is not None else _artifact_path()
    try:
        artifact_path.write_text(json.dumps(payload, indent=2) + "\n")
        artifact_note = f"artifact: {artifact_path}"
    except OSError as error:
        artifact_note = f"artifact not written ({error})"

    report = format_table(
        f"Streaming ingestion throughput (scale={scale}, c={c}, d={d}, "
        f"eps={epsilon}, shards={shards}, batch={batch}, executor={executor}"
        + (f", transport={resolved_transport}" if resolved_transport else "")
        + ")",
        ["framework", "reports", "batches", "sec", "reports/sec", "RMSE"],
        rows,
        note=(
            f"peak RSS {peak_rss_mb:,.0f} MiB; total {total_reports:,} reports "
            f"ingested; {artifact_note}"
        ),
    )
    return report, payload
