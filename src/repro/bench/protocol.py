"""Protocol-mode throughput benchmark.

Runs every framework end to end in ``"protocol"`` execution mode — the
literal one-report-per-user wire protocol, privatised and aggregated
through the vectorised report-plane engine — over a synthetic population
and measures sustained users/sec.  A per-user *looped baseline* (the same
protocol session fed one user per ingest call, i.e. the pre-engine
per-user Python dispatch) is timed on a small sample and extrapolated, so
the report carries an explicit engine-vs-loop speedup column.

Besides the text table the run emits a machine-readable
``BENCH_protocol.json`` (repo root by default; override with
``REPRO_BENCH_PROTOCOL_ARTIFACT``), the protocol-plane counterpart of
``BENCH_stream.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..core.frameworks import make_framework
from ..datasets import LabelItemDataset
from ..exceptions import ConfigurationError
from ..mechanisms.backends import backend_info, use_backend
from ..mechanisms.engine import set_default_threads
from ..metrics import rmse
from ..obs import metrics as obs_metrics
from ..rng import RngLike, ensure_rng, spawn_seeds
from ..stream import make_session
from .reporting import artifact_path, bench_meta, format_table

#: Workload parameters per scale.
SCALES = {
    "quick": dict(n_users=100_000, n_classes=5, n_items=64),
    "full": dict(n_users=1_000_000, n_classes=5, n_items=256),
}

#: Frameworks benchmarked, in report order.
PROTOCOL_FRAMEWORKS: tuple[str, ...] = ("hec", "ptj", "pts", "pts-cp")

#: Users timed per-user for the looped baseline extrapolation.
BASELINE_SAMPLE = 2_000


def _artifact_path() -> Path:
    return artifact_path("REPRO_BENCH_PROTOCOL_ARTIFACT", "BENCH_protocol.json")


def _looped_rate(
    name: str,
    labels: np.ndarray,
    items: np.ndarray,
    epsilon: float,
    n_classes: int,
    n_items: int,
    rng: RngLike,
) -> float:
    """Users/sec of the per-user dispatch baseline on a small sample.

    Feeds the same protocol-mode session one user per ``ingest_batch``
    call — each report privatised and folded individually, the per-user
    Python dispatch the batch engine eliminates.
    """
    sample = min(BASELINE_SAMPLE, labels.size)
    session = make_session(
        name,
        epsilon=epsilon,
        n_classes=n_classes,
        n_items=n_items,
        mode="protocol",
        rng=rng,
    )
    with obs_metrics.span("bench_protocol_baseline_seconds", framework=name) as timer:
        for user in range(sample):
            session.ingest_batch(labels[user : user + 1], items[user : user + 1])
    elapsed = timer.elapsed
    return sample / elapsed if elapsed > 0 else float("inf")


def run_protocol_benchmark(
    scale: str = "quick",
    seed: int = 0,
    n_users: Optional[int] = None,
    epsilon: float = 1.0,
    frameworks: Sequence[str] = PROTOCOL_FRAMEWORKS,
    artifact: Optional[str] = None,
    backend: Optional[str] = None,
    threads: Optional[object] = None,
) -> tuple[str, dict]:
    """Run the protocol-mode benchmark; returns ``(report, payload)``.

    ``backend`` pins the kernel backend for the run (``"numpy"``,
    ``"numba"``, or ``"auto"``/``None`` — resolution as in
    :func:`repro.mechanisms.backends.resolve_backend`); ``threads`` is
    the engine's block-thread count (``None`` keeps the serial schedule,
    ``"auto"`` sizes to the CPU count).  Both land in the artifact's
    ``meta`` block so a recorded rate is attributable to its
    configuration.
    """
    if scale not in SCALES:
        raise ConfigurationError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    params = dict(SCALES[scale])
    if n_users is not None:
        params["n_users"] = int(n_users)
    n, c, d = params["n_users"], params["n_classes"], params["n_items"]
    if n < 1:
        raise ConfigurationError("n_users must be positive")

    rng = ensure_rng(seed)
    ranks = np.arange(1, d + 1, dtype=np.float64)
    item_probs = ranks**-1.05
    item_probs /= item_probs.sum()
    class_probs = rng.dirichlet(np.full(c, 5.0))
    labels = rng.choice(c, size=n, p=class_probs)
    items = rng.choice(d, size=n, p=item_probs)
    dataset = LabelItemDataset(labels=labels, items=items, n_classes=c, n_items=d)
    truth = dataset.pair_counts()

    rows = []
    per_framework: dict[str, dict] = {}
    role_seeds: dict[str, dict[str, int]] = {}
    registry = obs_metrics.get_registry()
    previous_threads = set_default_threads(threads)
    try:
        run_backend, resolved_threads = _measure(
            frameworks, rng, role_seeds, rows, per_framework,
            dataset=dataset, truth=truth, labels=labels, items=items,
            epsilon=epsilon, n=n, c=c, d=d, backend=backend,
        )
    finally:
        set_default_threads(previous_threads)

    payload = {
        "scale": scale,
        "seed": seed,
        "epsilon": epsilon,
        "n_users": n,
        "n_classes": c,
        "n_items": d,
        "baseline_sample": min(BASELINE_SAMPLE, n),
        "frameworks": per_framework,
        "meta": bench_meta(
            role_seeds=role_seeds,
            metrics=registry.snapshot(),
            backend=run_backend,
            threads=resolved_threads,
        ),
    }
    artifact_path = Path(artifact) if artifact is not None else _artifact_path()
    try:
        artifact_path.write_text(json.dumps(payload, indent=2) + "\n")
        artifact_note = f"artifact: {artifact_path}"
    except OSError as error:
        artifact_note = f"artifact not written ({error})"

    report = format_table(
        f"Protocol-mode throughput (scale={scale}, c={c}, d={d}, eps={epsilon}, "
        f"backend={run_backend['name']})",
        ["framework", "users", "sec", "users/sec", "looped/sec", "speedup", "RMSE"],
        rows,
        note=(
            "one report per user through the vectorised report-plane engine; "
            f"looped baseline timed on {min(BASELINE_SAMPLE, n):,} users; "
            f"{artifact_note}"
        ),
    )
    return report, payload


def _measure(
    frameworks, rng, role_seeds, rows, per_framework, *,
    dataset, truth, labels, items, epsilon, n, c, d, backend,
):
    """Timed section of the bench under the pinned backend; returns the
    resolved backend info and effective thread count for the meta block."""
    from ..mechanisms.engine import _resolve_threads

    with use_backend(backend), obs_metrics.enabled():
        run_backend = backend_info()
        # "serial" = the legacy sequential-stream schedule (threads=None);
        # an integer means the deterministic split-stream schedule.
        resolved = _resolve_threads(None)
        resolved_threads = "serial" if resolved is None else resolved
        for name in frameworks:
            # One spawned child per role so framework runs and looped
            # baselines never share a stream (or the data-generation
            # stream) across frameworks, yet the whole bench replays from
            # the single --seed.  (spawn_seeds + ensure_rng reproduces
            # spawn()'s exact streams and captures the seeds for meta.)
            framework_seed, baseline_seed = spawn_seeds(rng, 2)
            role_seeds[name] = {
                "framework": framework_seed,
                "baseline": baseline_seed,
            }
            framework = make_framework(
                name,
                epsilon=epsilon,
                n_classes=c,
                n_items=d,
                mode="protocol",
                rng=ensure_rng(framework_seed),
            )
            with obs_metrics.span("bench_protocol_seconds", framework=name) as timer:
                estimate = framework.estimate_frequencies(dataset)
            elapsed = timer.elapsed
            users_per_sec = n / elapsed if elapsed > 0 else float("inf")
            error = float(rmse(estimate, truth))
            baseline = _looped_rate(
                name, labels, items, epsilon, c, d, ensure_rng(baseline_seed)
            )
            speedup = users_per_sec / baseline if baseline > 0 else float("inf")
            rows.append(
                [
                    name,
                    n,
                    f"{elapsed:.2f}",
                    f"{users_per_sec:,.0f}",
                    f"{baseline:,.0f}",
                    f"{speedup:.1f}x",
                    round(error, 1),
                ]
            )
            per_framework[name] = {
                "n_users": n,
                "elapsed_sec": elapsed,
                "users_per_sec": users_per_sec,
                "baseline_users_per_sec": baseline,
                "speedup_vs_looped": speedup,
                "rmse": error,
            }
    return run_backend, resolved_threads
