"""One entry point per paper table/figure (the reproduction harness).

Each function regenerates the corresponding experiment at a configurable
scale and returns the formatted report.  ``scale="quick"`` (the default,
used by ``pytest benchmarks/``) runs laptop-friendly sizes with difficulty
matched to the paper's regime (see ``repro.datasets.realworld``);
``scale="full"`` runs the paper-sized sweeps.

The success criterion everywhere is the paper's *shape* — method
orderings, trend directions, crossovers — not absolute numbers, since the
substrate is a seeded simulator and the real datasets are matched
stand-ins (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..analysis.complexity import measured_report_bits, table2_rows
from ..analysis.pmi import pmi_matrix
from ..core.frameworks import make_framework
from ..core.topk import MultiClassTopK
from ..core.variance import table1 as table1_rows
from ..datasets import (
    FeatureStudy,
    anime_like,
    diabetes_like,
    heart_disease_like,
    jd_like,
    syn1,
    syn2,
    syn3,
    syn4,
)
from ..metrics import average_over_classes, f1_score, rmse
from .reporting import format_table

#: The five top-k methods of Figs. 7-10, in the paper's legend order.
TOPK_METHODS: tuple[tuple[str, bool], ...] = (
    ("hec", False),
    ("ptj", False),
    ("ptj", True),
    ("pts", False),
    ("pts", True),
)


def _method_name(framework: str, optimized: bool) -> str:
    if not optimized:
        return framework.upper()
    return "PTJ-Shuffling+VP" if framework == "ptj" else "PTS-Shuffling+VP+CP"


def _topk_scores(
    dataset,
    k: int,
    epsilon: float,
    trials: int,
    seed: int,
    methods: Iterable[tuple[str, bool]] = TOPK_METHODS,
    **scheme_options,
) -> dict[str, tuple[float, float]]:
    """Mean (F1, NCR) per method over ``trials`` seeded runs."""
    truth = dataset.true_topk(k)
    out: dict[str, tuple[float, float]] = {}
    for framework, optimized in methods:
        f1s, ncrs = [], []
        for trial in range(trials):
            scheme = MultiClassTopK.for_framework(
                framework,
                k=k,
                epsilon=epsilon,
                n_classes=dataset.n_classes,
                n_items=dataset.n_items,
                optimized=optimized,
                rng=np.random.default_rng(seed + trial),
                **scheme_options,
            )
            mined = scheme.mine(dataset)
            f1s.append(average_over_classes(mined, truth, "f1"))
            ncrs.append(average_over_classes(mined, truth, "ncr"))
        out[_method_name(framework, optimized)] = (float(np.mean(f1s)), float(np.mean(ncrs)))
    return out


# ----------------------------------------------------------------------
# Table I — variance coefficients
# ----------------------------------------------------------------------

def table1_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Closed-form Table I next to the paper's printed values."""
    rows = table1_rows()
    paper = {
        "f(C,I)": [87.4, 32.9, 17.1, 10.3, 6.8, 4.9, 3.7, 2.9],
        "n": [213.8, 58.9, 22.8, 10.5, 5.4, 3.0, 1.8, 1.1],
        "N": [441.8, 53.3, 12.0, 3.6, 1.3, 0.5, 0.2, 0.1],
    }
    body = []
    for index, eps in enumerate(rows["epsilon"]):
        body.append(
            [
                eps,
                round(rows["f(C,I)"][index], 1),
                paper["f(C,I)"][index],
                round(rows["n"][index], 1),
                paper["n"][index],
                round(rows["N"][index], 1),
                paper["N"][index],
            ]
        )
    return format_table(
        "Table I — coefficients of f(C,I), n, N in Var[f̂] (Eq. 5, c=4)",
        ["eps", "f ours", "f paper", "n ours", "n paper", "N ours", "N paper"],
        body,
        note=(
            "n and N columns match the printed table exactly; the paper's "
            "printed f column deviates <=15% from Eq. (5)'s grouping "
            "(see EXPERIMENTS.md)."
        ),
    )


# ----------------------------------------------------------------------
# Fig. 5 — empirical variance analysis
# ----------------------------------------------------------------------

def fig5_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Empirical Var[f̂] vs PMI (SYN1) and vs class amount n (SYN2)."""
    trials = 1000 if scale == "full" else 200
    data_scale = 1.0 if scale == "full" else 0.05
    rng = np.random.default_rng(seed)
    rows = []

    # (a) SYN1: fixed marginals, pair count swept over 3 decades.
    data = syn1(scale=data_scale, rng=rng)
    counts = data.pair_counts()
    pmi = pmi_matrix(counts)
    frameworks = {
        "PTS": make_framework("pts", epsilon=1.0, n_classes=4, n_items=4),
        "PTS-CP": make_framework("pts-cp", epsilon=1.0, n_classes=4, n_items=4),
    }
    estimates = {
        name: np.stack(
            [
                fw.estimate_frequencies(data, rng=np.random.default_rng(seed + t))
                for t in range(trials)
            ]
        )
        for name, fw in frameworks.items()
    }
    for magnitude in range(4):
        cell = (0, int(np.argsort(counts[0])[magnitude]))
        row = [f"SYN1 f={counts[cell]}", round(float(pmi[cell]), 2)]
        for name in ("PTS", "PTS-CP"):
            variance = float(((estimates[name][:, cell[0], cell[1]] - counts[cell]) ** 2).mean())
            row.append(f"{variance:.3g}")
        rows.append(row)

    # (b) SYN2: fixed pair count, class amount swept.
    data = syn2(scale=data_scale, rng=rng)
    counts = data.pair_counts()
    estimates = {
        name: np.stack(
            [
                fw.estimate_frequencies(data, rng=np.random.default_rng(seed + 5000 + t))
                for t in range(trials)
            ]
        )
        for name, fw in frameworks.items()
    }
    for label in range(4):
        row = [f"SYN2 n={int(counts[label].sum())}", "-"]
        for name in ("PTS", "PTS-CP"):
            variance = float(((estimates[name][:, label, 0] - counts[label, 0]) ** 2).mean())
            row.append(f"{variance:.3g}")
        rows.append(row)

    return format_table(
        "Fig. 5 — empirical variance: (a) PMI sweep on SYN1, (b) class amount sweep on SYN2",
        ["cell", "PMI", "Var PTS", "Var PTS-CP"],
        rows,
        note=(
            "Shape checks: (a) variance is flat in PMI (correlation strength "
            "is concealed by n and N); (b) variance grows with n."
        ),
    )


# ----------------------------------------------------------------------
# Fig. 6 — frequency-estimation RMSE
# ----------------------------------------------------------------------

def _study_rmse(
    study: FeatureStudy, framework: str, epsilon: float, trials: int, seed: int
) -> float:
    """RMSE averaged over features and trials for one framework."""
    errors = []
    for data in study:
        truth = data.pair_counts()
        fw = make_framework(
            framework, epsilon=epsilon, n_classes=data.n_classes, n_items=data.n_items
        )
        for trial in range(trials):
            estimate = fw.estimate_frequencies(
                data, rng=np.random.default_rng(seed + trial)
            )
            errors.append(rmse(estimate, truth))
    return float(np.mean(errors))


def fig6_experiment(scale: str = "quick", seed: int = 0) -> str:
    """RMSE vs ε on the Diabetes- and Heart-like datasets."""
    trials = 20 if scale == "full" else 5
    data_scale = 1.0 if scale == "full" else 0.5
    epsilons = (0.5, 1.0, 2.0, 3.0, 4.0)
    rng = np.random.default_rng(seed)
    rows = []
    for name, study in (
        ("Diabetes", diabetes_like(scale=data_scale, rng=rng)),
        ("Heart", heart_disease_like(scale=data_scale, rng=rng)),
    ):
        for eps in epsilons:
            row = [name, eps]
            for framework in ("hec", "ptj", "pts", "pts-cp"):
                row.append(round(_study_rmse(study, framework, eps, trials, seed), 1))
            rows.append(row)
    return format_table(
        "Fig. 6 — frequency estimation RMSE vs ε (lower is better)",
        ["dataset", "eps", "HEC", "PTJ", "PTS", "PTS-CP"],
        rows,
        note=(
            "Shape checks: PTJ and PTS beat HEC by orders of magnitude; "
            "PTS-CP improves on PTS, most at small ε; errors fall with ε."
        ),
    )


# ----------------------------------------------------------------------
# Figs. 7-9 — top-k on the real-data stand-ins
# ----------------------------------------------------------------------

def fig7_experiment(scale: str = "quick", seed: int = 0) -> str:
    """F1/NCR vs ε on Anime- and JD-like data, k = 20."""
    trials = 5 if scale == "full" else 3
    data_scale = 1.0 if scale == "full" else 0.1
    epsilons = (2.0, 4.0, 6.0, 8.0)
    rows = []
    for name, dataset in (
        ("Anime", anime_like(scale=data_scale, rng=np.random.default_rng(seed))),
        ("JD", jd_like(scale=data_scale, rng=np.random.default_rng(seed + 1))),
    ):
        for eps in epsilons:
            scores = _topk_scores(dataset, 20, eps, trials, seed)
            for method, (f1, ncr) in scores.items():
                rows.append([name, eps, method, round(f1, 3), round(ncr, 3)])
    return format_table(
        "Fig. 7 — top-k mining vs ε (k=20)",
        ["dataset", "eps", "method", "F1", "NCR"],
        rows,
        note=(
            "Shape checks: optimized methods beat their baselines; all "
            "methods improve with ε; PTS-optimized gains the most."
        ),
    )


def fig8_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Per-class F1 on JD-like data (ε=8, k=20) — class starvation."""
    trials = 5 if scale == "full" else 3
    data_scale = 1.0 if scale == "full" else 0.1
    dataset = jd_like(scale=data_scale, rng=np.random.default_rng(seed))
    truth = dataset.true_topk(20)
    rows = []
    for framework, optimized in TOPK_METHODS:
        per_class = np.zeros(dataset.n_classes)
        for trial in range(trials):
            scheme = MultiClassTopK.for_framework(
                framework, k=20, epsilon=8.0,
                n_classes=dataset.n_classes, n_items=dataset.n_items,
                optimized=optimized, rng=np.random.default_rng(seed + trial),
            )
            mined = scheme.mine(dataset)
            for label in range(dataset.n_classes):
                per_class[label] += f1_score(mined.get(label, []), truth[label])
        rows.append(
            [_method_name(framework, optimized)]
            + [round(v / trials, 3) for v in per_class]
        )
    sizes = dataset.class_counts()
    return format_table(
        "Fig. 8 — per-class F1 on JD-like data (ε=8, k=20)",
        ["method"] + [f"class{c + 1} (n={sizes[c]})" for c in range(dataset.n_classes)],
        rows,
        note=(
            "Shape checks: classes 2-3 (largest) score best; PTJ starves "
            "the small classes 4-5 (no results), PTS-optimized still "
            "serves them via global candidates."
        ),
    )


def fig9_experiment(scale: str = "quick", seed: int = 0) -> str:
    """F1/NCR vs k on JD-like data, ε = 4."""
    trials = 5 if scale == "full" else 3
    data_scale = 1.0 if scale == "full" else 0.1
    dataset = jd_like(scale=data_scale, rng=np.random.default_rng(seed))
    rows = []
    for k in (10, 20, 30, 40, 50):
        scores = _topk_scores(dataset, k, 4.0, trials, seed)
        for method, (f1, ncr) in scores.items():
            rows.append([k, method, round(f1, 3), round(ncr, 3)])
    return format_table(
        "Fig. 9 — top-k mining vs k on JD-like data (ε=4)",
        ["k", "method", "F1", "NCR"],
        rows,
        note=(
            "Shape checks: PTS-based utility decreases with k (rarer items "
            "are harder); PTJ's relative utility improves with k (larger "
            "joint candidate budget)."
        ),
    )


# ----------------------------------------------------------------------
# Fig. 10 — class-count sweeps on SYN3/SYN4
# ----------------------------------------------------------------------

def fig10_experiment(scale: str = "quick", seed: int = 0) -> str:
    """F1/NCR vs number of classes on SYN3 (global head) and SYN4."""
    trials = 5 if scale == "full" else 2
    n_users = 5_000_000 if scale == "full" else 1_000_000
    n_items = 20_000 if scale == "full" else 4_096
    # Quick mode shrinks per-class user counts ~8x below the paper's
    # regime, so the exponential scales shrink with sqrt(8) to preserve
    # the noise-to-gap ratio (see repro.datasets.realworld).
    scale_range = (0.01, 0.1) if scale == "full" else (0.004, 0.02)
    class_counts = (10, 20, 30, 40, 50) if scale == "full" else (10, 30, 50)
    rows = []
    for name, generator in (("SYN3 (global)", syn3), ("SYN4", syn4)):
        for n_classes in class_counts:
            dataset = generator(
                n_classes=n_classes, n_users=n_users, n_items=n_items,
                rng=np.random.default_rng(seed + n_classes),
                scale_range=scale_range,
            )
            scores = _topk_scores(dataset, 20, 4.0, trials, seed)
            for method, (f1, ncr) in scores.items():
                rows.append([name, n_classes, method, round(f1, 3), round(ncr, 3)])
    return format_table(
        "Fig. 10 — top-k vs number of classes (ε=4, k=20)",
        ["dataset", "classes", "method", "F1", "NCR"],
        rows,
        note=(
            "Shape checks: utility declines as classes increase; optimized "
            "beats baseline; PTS-optimized degrades on SYN4 (no global "
            "head) while PTJ is indifferent to it."
        ),
    )


# ----------------------------------------------------------------------
# Table II — complexity
# ----------------------------------------------------------------------

def table2_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Cost-model rows at the JD parameterisation plus measured bits."""
    c, d, n, k = 5, 28_000, 9_000_000, 20
    rows = []
    for cost in table2_rows(c, d, n, k):
        rows.append(
            [
                cost.method,
                f"{cost.user_communication:.3g}",
                f"{cost.user_time:.3g}",
                f"{cost.user_space:.3g}",
                f"{cost.server_time:.3g}",
                f"{cost.server_space:.3g}",
            ]
        )
    measured = measured_report_bits(c, d, k)
    note_lines = ["Measured per-user report sizes (bits):"]
    for method, bits in measured.items():
        note_lines.append(f"  {method}: {bits}")
    note_lines.append(
        "Shape checks: optimized rows are independent of d on the user "
        "side; PTJ costs a factor ~c more than PTS."
    )
    return format_table(
        f"Table II — complexity model (c={c}, d={d}, N={n}, k={k}, m=1)",
        ["method", "user comm", "user time", "user space", "server time", "server space"],
        rows,
        note="\n".join(note_lines),
    )


# ----------------------------------------------------------------------
# Table III — ablation
# ----------------------------------------------------------------------

def table3_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Ablation of the optimizations on Anime-like data (ε=5, k=20)."""
    trials = 10 if scale == "full" else 4
    data_scale = 1.0 if scale == "full" else 0.1
    dataset = anime_like(scale=data_scale, rng=np.random.default_rng(seed))
    truth = dataset.true_topk(20)

    configs = [
        ("ptj", (), "PTJ (Baseline)"),
        ("ptj", ("vp",), "PTJ +VP"),
        ("ptj", ("shuffle",), "PTJ +Shuffling"),
        ("ptj", ("shuffle", "vp"), "PTJ All"),
        ("pts", (), "PTS (Baseline)"),
        ("pts", ("global",), "PTS +Global"),
        ("pts", ("vp",), "PTS +VP"),
        ("pts", ("shuffle",), "PTS +Shuffling"),
        ("pts", ("shuffle", "vp", "cp", "global"), "PTS All"),
    ]
    rows = []
    for framework, toggles, label in configs:
        f1s, ncrs = [], []
        for trial in range(trials):
            scheme = MultiClassTopK(
                framework, k=20, epsilon=5.0,
                n_classes=dataset.n_classes, n_items=dataset.n_items,
                optimizations=toggles, rng=np.random.default_rng(seed + trial),
            )
            mined = scheme.mine(dataset)
            f1s.append(average_over_classes(mined, truth, "f1"))
            ncrs.append(average_over_classes(mined, truth, "ncr"))
        rows.append([label, round(float(np.mean(f1s)), 3), round(float(np.mean(ncrs)), 3)])
    return format_table(
        "Table III — ablation on Anime-like data (ε=5, k=20)",
        ["configuration", "F1", "NCR"],
        rows,
        note=(
            "Shape checks: every optimization improves its baseline; the "
            "full stacks score highest; paper rows (F1): PTJ .261/.280/"
            ".316/.340, PTS .159/.165/.214/.241/.358."
        ),
    )


# ----------------------------------------------------------------------
# Fig. 11 — budget-split sweep
# ----------------------------------------------------------------------

def fig11_experiment(scale: str = "quick", seed: int = 0) -> str:
    """F1 vs the label-budget fraction p on SYN4 (5/10/20 classes)."""
    trials = 5 if scale == "full" else 2
    n_users = 5_000_000 if scale == "full" else 1_000_000
    n_items = 20_000 if scale == "full" else 4_096
    scale_range = (0.01, 0.1) if scale == "full" else (0.004, 0.02)
    fractions = (0.1, 0.3, 0.5, 0.7, 0.9)
    rows = []
    for n_classes in (5, 10, 20):
        dataset = syn4(
            n_classes=n_classes, n_users=n_users, n_items=n_items,
            rng=np.random.default_rng(seed + n_classes),
            scale_range=scale_range,
        )
        truth = dataset.true_topk(20)
        for fraction in fractions:
            f1s = []
            for trial in range(trials):
                scheme = MultiClassTopK.for_framework(
                    "pts", k=20, epsilon=4.0,
                    n_classes=n_classes, n_items=n_items,
                    rng=np.random.default_rng(seed + trial),
                    label_fraction=fraction,
                )
                f1s.append(average_over_classes(scheme.mine(dataset), truth, "f1"))
            rows.append([n_classes, fraction, round(float(np.mean(f1s)), 3)])
    return format_table(
        "Fig. 11 — budget split p = ε₁/ε on SYN4 (ε=4, k=20)",
        ["classes", "p", "F1"],
        rows,
        note=(
            "Shape checks: F1 rises then falls in p with a flat optimum "
            "in the 0.3-0.5 band, supporting the paper's ε₁=ε₂=ε/2 default."
        ),
    )


# ----------------------------------------------------------------------
# Fig. 12 — parameters a and b
# ----------------------------------------------------------------------

def fig12_experiment(scale: str = "quick", seed: int = 0) -> str:
    """Sweeps of the sample fraction a and the noise threshold b."""
    trials = 5 if scale == "full" else 3
    data_scale = 1.0 if scale == "full" else 0.1
    datasets = (
        ("Anime", anime_like(scale=data_scale, rng=np.random.default_rng(seed))),
        ("JD", jd_like(scale=data_scale, rng=np.random.default_rng(seed + 1))),
    )
    rows = []
    for name, dataset in datasets:
        truth = dataset.true_topk(20)

        def run(a: float, b: float) -> float:
            f1s = []
            for trial in range(trials):
                scheme = MultiClassTopK.for_framework(
                    "pts", k=20, epsilon=5.0,
                    n_classes=dataset.n_classes, n_items=dataset.n_items,
                    rng=np.random.default_rng(seed + trial), a=a, b=b,
                )
                f1s.append(average_over_classes(scheme.mine(dataset), truth, "f1"))
            return float(np.mean(f1s))

        for a in (0.1, 0.2, 0.3, 0.4, 0.5):
            rows.append([name, f"a={a}", round(run(a, 2.0), 3)])
        for b in (1.5, 2.0, 2.5, 3.0, 3.5):
            rows.append([name, f"b={b}", round(run(0.2, b), 3)])
    return format_table(
        "Fig. 12 — PTS-optimized F1 vs parameters a and b (ε=5, k=20)",
        ["dataset", "parameter", "F1"],
        rows,
        note=(
            "Shape checks: both parameters are dataset-dependent but flat "
            "(no sharp optimum), supporting the defaults a=0.2, b=2."
        ),
    )


#: Registry used by the CLI and the pytest benches.
EXPERIMENTS = {
    "table1": table1_experiment,
    "fig5": fig5_experiment,
    "fig6": fig6_experiment,
    "fig7": fig7_experiment,
    "fig8": fig8_experiment,
    "fig9": fig9_experiment,
    "fig10": fig10_experiment,
    "table2": table2_experiment,
    "table3": table3_experiment,
    "fig11": fig11_experiment,
    "fig12": fig12_experiment,
}


def run_experiment(name: str, scale: Optional[str] = None, seed: int = 0) -> str:
    """Run one experiment by name and return its report."""
    from .reporting import bench_scale

    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](scale=scale or bench_scale(), seed=seed)
