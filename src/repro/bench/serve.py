"""Report-collection service throughput benchmark.

Starts an in-process :class:`~repro.serve.collector.ReportCollector` on
localhost and replays a synthetic report population through
:func:`~repro.serve.client.generate_load` across a grid of connection
counts and per-frame batch sizes, measuring sustained wire-to-state
ingestion (reports/sec) and the end-of-stream estimation error against
ground truth.  Each grid cell streams the full population through a
fresh collector, so cells are independent measurements.

Besides the text table the run emits a machine-readable
``BENCH_serve.json`` (repo root by default; override with
``REPRO_BENCH_SERVE_ARTIFACT``), the service counterpart of
``BENCH_stream.json`` / ``BENCH_protocol.json``.  Each cell carries
per-stage span timings (decode / sort / drain / query, read off the
collector's always-on registry) so a throughput change is attributable
to a stage; set ``REPRO_BENCH_SERVE_SPANS`` to also write them as a
standalone JSON artifact (the CI upload).
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..metrics import rmse
from ..obs import metrics as obs_metrics
from ..rng import ensure_rng, spawn_seeds
from .reporting import artifact_path, bench_meta, format_table

#: Workload parameters per scale.
SCALES = {
    "quick": dict(
        n_users=240_000,
        n_classes=5,
        n_items=256,
        connections=(1, 4, 8),
        batch_size=4096,
        shards=2,
    ),
    "full": dict(
        n_users=2_000_000,
        n_classes=5,
        n_items=1024,
        connections=(1, 4, 8, 16),
        batch_size=16_384,
        shards=4,
    ),
}


def _artifact_path() -> Path:
    return artifact_path("REPRO_BENCH_SERVE_ARTIFACT", "BENCH_serve.json")


def _synthetic_population(
    n_users: int, n_classes: int, n_items: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    item_probs = ranks**-1.05
    item_probs /= item_probs.sum()
    class_probs = rng.dirichlet(np.full(n_classes, 5.0))
    labels = rng.choice(n_classes, size=n_users, p=class_probs)
    items = rng.choice(n_items, size=n_users, p=item_probs)
    return labels, items


#: Per-stage span histograms read off the collector's registry per cell
#: (series-name prefix -> stage label in the artifact).
_STAGE_HISTOGRAMS = {
    "serve_decode_seconds": "decode_buffer",
    "serve_flush_sort_seconds": "flush_sort",
    "shard_drain_seconds": "drain",
    "serve_query_seconds": "query",
}


def _effective_knobs(overrides: dict) -> dict:
    """The collector knobs a cell actually ran with, for the meta block.

    Unset knobs fall back to :class:`ReportCollector`'s own signature
    defaults, so the recorded values can never drift from the code.
    """
    import inspect

    from ..serve import ReportCollector

    defaults = {
        name: parameter.default
        for name, parameter in inspect.signature(
            ReportCollector.__init__
        ).parameters.items()
    }
    return {
        knob: overrides.get(knob, defaults[knob])
        for knob in (
            "flush_reports", "high_water", "coalesce_frames", "flush_interval"
        )
    }


def _stage_spans(snapshot: dict) -> dict:
    """Aggregate the per-stage timing histograms out of one registry cut."""
    spans = {}
    for key, histogram in snapshot.get("histograms", {}).items():
        name = key.split("{", 1)[0]
        stage = _STAGE_HISTOGRAMS.get(name)
        if stage is None:
            continue
        entry = spans.setdefault(stage, {"sum_sec": 0.0, "count": 0})
        entry["sum_sec"] += float(histogram["sum"])
        entry["count"] += int(histogram["count"])
    return spans


async def _run_cell(
    labels: np.ndarray,
    items: np.ndarray,
    config: dict,
    n_connections: int,
    chunk_size: int,
    shards: int,
    collector_knobs: dict,
) -> dict:
    from ..serve import ReportClient, ReportCollector, generate_load

    async with ReportCollector(
        default_shards=shards, **collector_knobs
    ) as collector:
        load = await asyncio.wait_for(
            generate_load(
                collector.host,
                collector.port,
                config,
                labels,
                items,
                n_connections=n_connections,
                chunk_size=chunk_size,
            ),
            timeout=600,
        )
        querier = await ReportClient.connect(
            collector.host, collector.port, **config
        )
        async with querier:
            estimate = await querier.estimate()
        # The collector's private registry is per-cell (fresh collector),
        # so this cut is exactly this cell's serve-side stage timings;
        # the drain stage lands on the process registry instead, but the
        # global snapshot taken after the grid still attributes it.
        spans = _stage_spans(collector.metrics.snapshot())
    load["estimate"] = estimate
    load["spans"] = spans
    return load


def _span_delta(pre: dict, post: dict) -> dict:
    """Stage timings accrued between two registry cuts."""
    out = {}
    for stage, entry in post.items():
        base = pre.get(stage, {"sum_sec": 0.0, "count": 0})
        count = entry["count"] - base["count"]
        total = entry["sum_sec"] - base["sum_sec"]
        if count or total:
            out[stage] = {"sum_sec": total, "count": count}
    return out


def run_serve_benchmark(
    scale: str = "quick",
    seed: int = 0,
    n_users: Optional[int] = None,
    n_connections: Optional[int] = None,
    chunk_size: Optional[int] = None,
    n_shards: Optional[int] = None,
    epsilon: float = 1.0,
    framework: str = "pts",
    mode: str = "simulate",
    artifact: Optional[str] = None,
    flush_reports: Optional[int] = None,
    high_water: Optional[int] = None,
    coalesce: Optional[int] = None,
    flush_interval: Optional[float] = None,
) -> tuple[str, dict]:
    """Run the serve benchmark; returns ``(report, artifact_payload)``.

    Explicit ``n_users`` / ``n_connections`` / ``chunk_size`` /
    ``n_shards`` override the scale's defaults (a single connection count
    replaces the grid).  ``flush_reports`` / ``high_water`` /
    ``coalesce`` / ``flush_interval`` tune the collector's ingest fast
    lane (micro-batch threshold, backpressure mark, REPORTS frames
    decoded per event-loop wakeup, periodic sweep period); the values in
    force are recorded in the artifact ``meta``.
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(SCALES)}, got {scale!r}"
        )
    params = dict(SCALES[scale])
    if n_users is not None:
        params["n_users"] = int(n_users)
    if chunk_size is not None:
        params["batch_size"] = int(chunk_size)
    if n_shards is not None:
        params["shards"] = int(n_shards)
    connection_grid: Sequence[int] = (
        (int(n_connections),) if n_connections is not None else params["connections"]
    )
    n, c, d = params["n_users"], params["n_classes"], params["n_items"]
    batch = params["batch_size"]
    shards = params["shards"]
    if n < 1 or batch < 1 or shards < 1 or min(connection_grid) < 1:
        raise ConfigurationError(
            "n_users, batch_size, shards and connections must be positive"
        )
    collector_knobs = {}
    if flush_reports is not None:
        collector_knobs["flush_reports"] = int(flush_reports)
    if high_water is not None:
        collector_knobs["high_water"] = int(high_water)
    if coalesce is not None:
        collector_knobs["coalesce_frames"] = int(coalesce)
    if flush_interval is not None:
        collector_knobs["flush_interval"] = float(flush_interval)

    rng = ensure_rng(seed)
    labels, items = _synthetic_population(n, c, d, rng)
    truth = np.bincount(labels * d + items, minlength=c * d).reshape(c, d)
    # One spawned session seed per grid cell, all derived from --seed.
    cell_seeds = spawn_seeds(rng, len(connection_grid))

    rows = []
    cells = []
    best = 0.0
    # Measure with telemetry on (acceptance: serve throughput with metrics
    # enabled stays within noise of the committed artifact); the run's
    # registry snapshot lands in the artifact meta block.
    registry = obs_metrics.get_registry()
    with obs_metrics.enabled():
        for n_conn, cell_seed in zip(connection_grid, cell_seeds):
            config = dict(
                session="bench",
                framework=framework,
                epsilon=epsilon,
                n_classes=c,
                n_items=d,
                mode=mode,
                seed=cell_seed,
                shards=shards,
            )
            pre = _stage_spans(registry.snapshot())
            load = asyncio.run(
                _run_cell(
                    labels, items, config, n_conn, batch, shards,
                    collector_knobs,
                )
            )
            spans = load.pop("spans")
            spans.update(_span_delta(pre, _stage_spans(registry.snapshot())))
            error = float(rmse(load.pop("estimate"), truth))
            best = max(best, load["reports_per_sec"])
            rows.append(
                [
                    n_conn,
                    batch,
                    load["reports"],
                    f"{load['elapsed_sec']:.2f}",
                    f"{load['reports_per_sec']:,.0f}",
                    round(error, 1),
                ]
            )
            cells.append(
                {
                    "connections": n_conn,
                    "batch_size": batch,
                    "seed": cell_seed,
                    "reports": load["reports"],
                    "elapsed_sec": load["elapsed_sec"],
                    "reports_per_sec": load["reports_per_sec"],
                    "rmse": error,
                    "spans": spans,
                }
            )

    payload = {
        "scale": scale,
        "seed": seed,
        "framework": framework,
        "mode": mode,
        "epsilon": epsilon,
        "n_users": n,
        "n_classes": c,
        "n_items": d,
        "n_shards": shards,
        "cells": cells,
        "max_reports_per_sec": best,
        "meta": bench_meta(
            metrics=registry.snapshot(),
            collector_knobs=_effective_knobs(collector_knobs),
        ),
    }
    artifact_file = Path(artifact) if artifact is not None else _artifact_path()
    try:
        artifact_file.write_text(json.dumps(payload, indent=2) + "\n")
        artifact_note = f"artifact: {artifact_file}"
    except OSError as error:
        artifact_note = f"artifact not written ({error})"
    spans_target = os.environ.get("REPRO_BENCH_SERVE_SPANS")
    if spans_target:
        spans_payload = {
            "scale": scale,
            "cells": [
                {
                    "connections": cell["connections"],
                    "batch_size": cell["batch_size"],
                    "elapsed_sec": cell["elapsed_sec"],
                    "spans": cell["spans"],
                }
                for cell in cells
            ],
        }
        Path(spans_target).write_text(
            json.dumps(spans_payload, indent=2) + "\n"
        )

    report = format_table(
        f"Report-collection service throughput (scale={scale}, "
        f"framework={framework}, c={c}, d={d}, eps={epsilon}, "
        f"shards={shards}, mode={mode})",
        ["connections", "batch", "reports", "sec", "reports/sec", "RMSE"],
        rows,
        note=(
            f"localhost asyncio collector; peak {best:,.0f} reports/sec; "
            f"{artifact_note}"
        ),
    )
    return report, payload
