"""Report-collection service throughput benchmark.

Starts an in-process :class:`~repro.serve.collector.ReportCollector` on
localhost and replays a synthetic report population through
:func:`~repro.serve.client.generate_load` across a grid of connection
counts and per-frame batch sizes, measuring sustained wire-to-state
ingestion (reports/sec) and the end-of-stream estimation error against
ground truth.  Each grid cell streams the full population through a
fresh collector, so cells are independent measurements.

Besides the text table the run emits a machine-readable
``BENCH_serve.json`` (repo root by default; override with
``REPRO_BENCH_SERVE_ARTIFACT``), the service counterpart of
``BENCH_stream.json`` / ``BENCH_protocol.json``.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..metrics import rmse
from ..obs import metrics as obs_metrics
from ..rng import ensure_rng, spawn_seeds
from .reporting import artifact_path, bench_meta, format_table

#: Workload parameters per scale.
SCALES = {
    "quick": dict(
        n_users=240_000,
        n_classes=5,
        n_items=256,
        connections=(1, 4, 8),
        batch_size=4096,
        shards=2,
    ),
    "full": dict(
        n_users=2_000_000,
        n_classes=5,
        n_items=1024,
        connections=(1, 4, 8, 16),
        batch_size=16_384,
        shards=4,
    ),
}


def _artifact_path() -> Path:
    return artifact_path("REPRO_BENCH_SERVE_ARTIFACT", "BENCH_serve.json")


def _synthetic_population(
    n_users: int, n_classes: int, n_items: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    item_probs = ranks**-1.05
    item_probs /= item_probs.sum()
    class_probs = rng.dirichlet(np.full(n_classes, 5.0))
    labels = rng.choice(n_classes, size=n_users, p=class_probs)
    items = rng.choice(n_items, size=n_users, p=item_probs)
    return labels, items


async def _run_cell(
    labels: np.ndarray,
    items: np.ndarray,
    config: dict,
    n_connections: int,
    chunk_size: int,
    shards: int,
) -> dict:
    from ..serve import ReportClient, ReportCollector, generate_load

    async with ReportCollector(default_shards=shards) as collector:
        load = await asyncio.wait_for(
            generate_load(
                collector.host,
                collector.port,
                config,
                labels,
                items,
                n_connections=n_connections,
                chunk_size=chunk_size,
            ),
            timeout=600,
        )
        querier = await ReportClient.connect(
            collector.host, collector.port, **config
        )
        async with querier:
            estimate = await querier.estimate()
    load["estimate"] = estimate
    return load


def run_serve_benchmark(
    scale: str = "quick",
    seed: int = 0,
    n_users: Optional[int] = None,
    n_connections: Optional[int] = None,
    chunk_size: Optional[int] = None,
    n_shards: Optional[int] = None,
    epsilon: float = 1.0,
    framework: str = "pts",
    mode: str = "simulate",
    artifact: Optional[str] = None,
) -> tuple[str, dict]:
    """Run the serve benchmark; returns ``(report, artifact_payload)``.

    Explicit ``n_users`` / ``n_connections`` / ``chunk_size`` /
    ``n_shards`` override the scale's defaults (a single connection count
    replaces the grid).
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"scale must be one of {sorted(SCALES)}, got {scale!r}"
        )
    params = dict(SCALES[scale])
    if n_users is not None:
        params["n_users"] = int(n_users)
    if chunk_size is not None:
        params["batch_size"] = int(chunk_size)
    if n_shards is not None:
        params["shards"] = int(n_shards)
    connection_grid: Sequence[int] = (
        (int(n_connections),) if n_connections is not None else params["connections"]
    )
    n, c, d = params["n_users"], params["n_classes"], params["n_items"]
    batch = params["batch_size"]
    shards = params["shards"]
    if n < 1 or batch < 1 or shards < 1 or min(connection_grid) < 1:
        raise ConfigurationError(
            "n_users, batch_size, shards and connections must be positive"
        )

    rng = ensure_rng(seed)
    labels, items = _synthetic_population(n, c, d, rng)
    truth = np.bincount(labels * d + items, minlength=c * d).reshape(c, d)
    # One spawned session seed per grid cell, all derived from --seed.
    cell_seeds = spawn_seeds(rng, len(connection_grid))

    rows = []
    cells = []
    best = 0.0
    # Measure with telemetry on (acceptance: serve throughput with metrics
    # enabled stays within noise of the committed artifact); the run's
    # registry snapshot lands in the artifact meta block.
    registry = obs_metrics.get_registry()
    with obs_metrics.enabled():
        for n_conn, cell_seed in zip(connection_grid, cell_seeds):
            config = dict(
                session="bench",
                framework=framework,
                epsilon=epsilon,
                n_classes=c,
                n_items=d,
                mode=mode,
                seed=cell_seed,
                shards=shards,
            )
            load = asyncio.run(
                _run_cell(labels, items, config, n_conn, batch, shards)
            )
            error = float(rmse(load.pop("estimate"), truth))
            best = max(best, load["reports_per_sec"])
            rows.append(
                [
                    n_conn,
                    batch,
                    load["reports"],
                    f"{load['elapsed_sec']:.2f}",
                    f"{load['reports_per_sec']:,.0f}",
                    round(error, 1),
                ]
            )
            cells.append(
                {
                    "connections": n_conn,
                    "batch_size": batch,
                    "seed": cell_seed,
                    "reports": load["reports"],
                    "elapsed_sec": load["elapsed_sec"],
                    "reports_per_sec": load["reports_per_sec"],
                    "rmse": error,
                }
            )

    payload = {
        "scale": scale,
        "seed": seed,
        "framework": framework,
        "mode": mode,
        "epsilon": epsilon,
        "n_users": n,
        "n_classes": c,
        "n_items": d,
        "n_shards": shards,
        "cells": cells,
        "max_reports_per_sec": best,
        "meta": bench_meta(metrics=registry.snapshot()),
    }
    artifact_file = Path(artifact) if artifact is not None else _artifact_path()
    try:
        artifact_file.write_text(json.dumps(payload, indent=2) + "\n")
        artifact_note = f"artifact: {artifact_file}"
    except OSError as error:
        artifact_note = f"artifact not written ({error})"

    report = format_table(
        f"Report-collection service throughput (scale={scale}, "
        f"framework={framework}, c={c}, d={d}, eps={epsilon}, "
        f"shards={shards}, mode={mode})",
        ["connections", "batch", "reports", "sec", "reports/sec", "RMSE"],
        rows,
        note=(
            f"localhost asyncio collector; peak {best:,.0f} reports/sec; "
            f"{artifact_note}"
        ),
    )
    return report, payload
