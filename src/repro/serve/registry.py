"""Hosted session registry: concurrent server-side LDP cohorts.

A :class:`HostedSession` is one collection cohort living inside the
collector — an :class:`~repro.stream.session.OnlineFrameworkSession`
fleet behind a :class:`~repro.stream.sharding.ShardedAggregator` (kind
``"framework"``), or a single
:class:`~repro.stream.topk_session.OnlineTopKSession` miner (kind
``"topk"``) — wrapped in the micro-batching and backpressure state the
asyncio front-end needs:

* incoming reports write *in place* into a preallocated columnar ring
  buffer (:class:`~repro.serve.ringbuf.ReportRing`) — the arrival path
  allocates nothing; once ``flush_reports`` accumulate (or the periodic
  flusher / a query / a BYE fires) a counting sort in a resident
  :class:`~repro.serve.ringbuf.FlushArena` drains the ring into one
  class-sorted batch, submitted through a :mod:`repro.stream.drain`
  adapter in engine-bounded chunks;
* query results are memoized per *drain epoch*: a repeated
  estimate/topk/class_sizes query answers from cache until a drain (or a
  mining-round advance) lands, so mid-stream polling under trickle
  ingest costs nothing between drains;
* when buffered + in-flight reports exceed ``high_water`` the session
  reports itself unwritable and connections stop reading — TCP pushes the
  backpressure to clients — until ingestion drains below ``low_water``;
* queries serialise against flushing through one asyncio lock, drain
  synchronously in a worker thread, and answer from a merged snapshot, so
  every report accepted before the query is reflected in the answer.

A :class:`SessionRegistry` keys hosted sessions by id: the first HELLO
naming a session creates it from the handshake config, later HELLOs join
it — with the exact same canonical config, else the join is refused.
"""

from __future__ import annotations

import asyncio
import json
import time
from functools import partial
from typing import Optional

import numpy as np

from ..exceptions import DomainError
from ..mechanisms.engine import batch_spans
from ..obs import trace as _trace
from ..obs.log import log_event
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry, Span
from ..obs.metrics import relabel_snapshot
from ..rng import ensure_rng, spawn
from ..stream import (
    AggregatorDrain,
    DriftDetector,
    OnlineTopKSession,
    SESSIONS,
    SessionDrain,
    ShardedAggregator,
    make_session,
)
from .protocol import ServeError, decode_reports_view
from .ringbuf import FlushArena, ReportRing

#: Queries whose results are pure functions of the drained state and so
#: safe to memoize per drain epoch (``stats`` reports live lag and
#: ``advance_round`` mutates, so neither caches).
CACHEABLE_QUERIES = frozenset(("estimate", "topk", "class_sizes"))

#: Cached query results kept per session (stale entries are pruned on
#: insert, so this only bounds distinct concurrently-warm specs).
MAX_CACHED_QUERIES = 32

#: Session kinds hosted by the collector.
KINDS = ("framework", "topk")

#: Hard ceilings on what one unauthenticated HELLO may make the server
#: allocate: ``c * d`` int64 cells per shard array and the shard count.
MAX_DOMAIN_CELLS = 10_000_000
MAX_SHARDS = 64

#: Every key a HELLO config may carry.
_CONFIG_KEYS = frozenset(
    (
        "session", "kind", "framework", "epsilon", "n_classes", "n_items",
        "mode", "label_fraction", "seed", "shards",
        "k", "keep", "extension_bits", "invalid_mode",
        "decay", "decay_every", "window",
    )
)

#: Keys meaningful only for one kind (rejected on the other).  The decay
#: hook (and the sliding window built on it) rides
#: OnlineFrameworkSession.decay, which the top-k miner lacks.
_FRAMEWORK_ONLY = frozenset(
    ("framework", "shards", "decay", "decay_every", "window")
)
_TOPK_ONLY = frozenset(("k", "keep", "extension_bits", "invalid_mode"))


def canonical_config(raw: dict, default_shards: int = 1) -> dict:
    """Validate and normalise a handshake config.

    Fills defaults so two HELLOs describing the same cohort canonicalise
    identically — the join check is plain dict equality.
    """
    unknown = set(raw) - _CONFIG_KEYS
    if unknown:
        raise ServeError(f"unknown session config keys: {sorted(unknown)}")
    session_id = raw.get("session")
    if not isinstance(session_id, str) or not session_id:
        raise ServeError("config needs a non-empty string 'session' id")
    kind = raw.get("kind", "framework")
    if kind not in KINDS:
        raise ServeError(f"kind must be one of {KINDS}, got {kind!r}")
    for key in ("epsilon", "n_classes", "n_items"):
        if key not in raw:
            raise ServeError(f"config is missing required key {key!r}")
    misplaced = set(raw) & (_TOPK_ONLY if kind == "framework" else _FRAMEWORK_ONLY)
    if misplaced:
        raise ServeError(
            f"config keys {sorted(misplaced)} do not apply to kind {kind!r}"
        )
    n_classes, n_items = int(raw["n_classes"]), int(raw["n_items"])
    if n_classes < 1 or n_items < 1:
        raise ServeError(
            f"n_classes ({n_classes}) and n_items ({n_items}) must be >= 1"
        )
    if n_classes * n_items > MAX_DOMAIN_CELLS:
        raise ServeError(
            f"domain of {n_classes} x {n_items} cells exceeds the "
            f"{MAX_DOMAIN_CELLS}-cell per-session ceiling"
        )
    config = {
        "session": session_id,
        "kind": kind,
        "epsilon": float(raw["epsilon"]),
        "n_classes": n_classes,
        "n_items": n_items,
        "mode": raw.get("mode", "simulate"),
        "seed": None if raw.get("seed") is None else int(raw["seed"]),
        "decay": None if raw.get("decay") is None else float(raw["decay"]),
        "decay_every": (
            None if raw.get("decay_every") is None else int(raw["decay_every"])
        ),
        "window": None if raw.get("window") is None else int(raw["window"]),
    }
    if config["window"] is not None:
        if config["decay"] is not None or config["decay_every"] is not None:
            raise ServeError(
                "window and explicit decay/decay_every are mutually "
                "exclusive — the window policy derives both knobs"
            )
        if config["window"] < 2:
            raise ServeError(
                f"window must be >= 2 reports, got {config['window']}"
            )
    if kind == "framework":
        framework = raw.get("framework")
        if framework not in SESSIONS:
            raise ServeError(
                f"framework must be one of {sorted(SESSIONS)}, got {framework!r}"
            )
        config["framework"] = framework
        shards = raw.get("shards")
        config["shards"] = default_shards if shards is None else int(shards)
        if not 1 <= config["shards"] <= MAX_SHARDS:
            raise ServeError(
                f"shards must be in [1, {MAX_SHARDS}], got {config['shards']}"
            )
        label_fraction = raw.get("label_fraction")
        if framework in ("pts", "pts-cp"):
            # Fill the effective default so an omitted and an explicit 0.5
            # canonicalise identically for the join equality check.
            config["label_fraction"] = (
                0.5 if label_fraction is None else float(label_fraction)
            )
        elif label_fraction is not None:
            raise ServeError(
                f"label_fraction does not apply to framework {framework!r}"
            )
        else:
            config["label_fraction"] = None
    else:
        if "k" not in raw:
            raise ServeError("top-k config is missing required key 'k'")
        config["k"] = int(raw["k"])
        config["keep"] = None if raw.get("keep") is None else int(raw["keep"])
        config["extension_bits"] = int(raw.get("extension_bits", 1))
        config["invalid_mode"] = raw.get("invalid_mode", "vp")
        config["label_fraction"] = float(raw.get("label_fraction", 0.5))
    return config


def _build_drain(
    config: dict,
    record: bool,
    executor: str = "thread",
    transport: Optional[str] = None,
):
    """The drain adapter for a canonical config.

    Framework shards spawn their generators from the config seed with
    :func:`repro.rng.spawn`, so a recorded run replays offline from the
    same seed (see :func:`repro.stream.drain.replay_drain_log`).
    ``executor``/``transport`` are server-level deployment knobs (see
    :class:`~repro.stream.sharding.ShardedAggregator`), not part of the
    cohort config — they do not affect the statistics, only where shard
    states live and how batches reach them.
    """
    decay = dict(
        decay=config["decay"],
        decay_every=config["decay_every"],
        window=config["window"],
    )
    if config["kind"] == "framework":
        children = spawn(ensure_rng(config["seed"]), config["shards"])
        shards = [
            make_session(
                config["framework"],
                epsilon=config["epsilon"],
                n_classes=config["n_classes"],
                n_items=config["n_items"],
                mode=config["mode"],
                rng=child,
                label_fraction=config["label_fraction"],
            )
            for child in children
        ]
        aggregator = ShardedAggregator(
            shards,
            executor=executor,
            transport=transport if executor == "process" else None,
        )
        return AggregatorDrain(aggregator, record=record, **decay)
    miner = OnlineTopKSession(
        k=config["k"],
        epsilon=config["epsilon"],
        n_classes=config["n_classes"],
        n_items=config["n_items"],
        label_fraction=config["label_fraction"],
        keep=config["keep"],
        extension_bits=config["extension_bits"],
        invalid_mode=config["invalid_mode"],
        mode=config["mode"],
        rng=ensure_rng(config["seed"]),
    )
    return SessionDrain(miner, record=record, **decay)


class HostedSession:
    """One live cohort: buffers, drain adapter, backpressure, queries."""

    def __init__(
        self,
        config: dict,
        flush_reports: int = 65_536,
        high_water: int = 262_144,
        record: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        executor: str = "thread",
        transport: Optional[str] = None,
    ) -> None:
        if flush_reports < 1:
            raise ServeError(f"flush_reports must be >= 1, got {flush_reports}")
        if high_water < flush_reports:
            raise ServeError(
                f"high_water ({high_water}) must be >= flush_reports "
                f"({flush_reports})"
            )
        self.config = config
        self.session_id = config["session"]
        self.kind = config["kind"]
        self.n_classes = config["n_classes"]
        self.n_items = config["n_items"]
        self.flush_reports = int(flush_reports)
        self.high_water = int(high_water)
        self.low_water = max(1, self.high_water // 2)
        self._drain = _build_drain(config, record, executor, transport)
        self._ring = ReportRing(capacity=max(2 * self.flush_reports, 8192))
        self._arena = FlushArena()
        self._drift = DriftDetector()
        self._buffered = 0
        self._inflight = 0
        self.n_accepted = 0
        # The drain epoch: bumped whenever drained state can change —
        # reports submitted toward the shards (n_submitted), a
        # mining-round advance, or a decay pass (the adapter's generation
        # counter).  The query cache memoizes per (epoch, spec).
        self._mutations = 0
        self._query_cache: dict[str, tuple[tuple[int, int, int], object]] = {}
        self._lock = asyncio.Lock()
        self._resume = asyncio.Event()
        self._resume.set()
        # Trace context of the most recent traced ingest: the next flush
        # parents its span (and the shard spans below it) here, linking
        # client → collector → shard in one trace.  ``None`` (tracing
        # off or untraced clients) keeps the flush path span-free.
        self._ingest_ctx: Optional[_trace.TraceContext] = None
        # Backpressure stall accounting (loop thread only): how many
        # waiters are currently paused, when the ongoing stall began
        # (epoch seconds, ``None`` when writable), and the accumulated
        # stalled wall-clock across completed stalls.
        self._stall_waiters = 0
        self._stall_clock = 0.0
        self._stall_started: Optional[float] = None
        self._stall_seconds = 0.0
        # Hosted sessions live in the event-loop process only (never
        # pickled), so caching instruments here is safe and keeps the
        # REPORTS hot path at one attribute check.
        self._metrics = metrics
        if metrics is not None:
            self._m_flush = metrics.histogram(
                "serve_flush_reports",
                buckets=DEFAULT_COUNT_BUCKETS,
                session=self.session_id,
            )
            self._m_pending = metrics.gauge(
                "serve_session_pending", session=self.session_id
            )
            self._m_pause = metrics.counter(
                "serve_backpressure_pause_total", session=self.session_id
            )
            self._m_resume = metrics.counter(
                "serve_backpressure_resume_total", session=self.session_id
            )
            self._m_occupancy = metrics.gauge(
                "serve_ring_occupancy", session=self.session_id
            )
            self._m_capacity = metrics.gauge(
                "serve_ring_capacity", session=self.session_id
            )
            self._m_capacity.set(self._ring.capacity)
            self._m_sort = metrics.histogram(
                "serve_flush_sort_seconds", session=self.session_id
            )
            self._m_decode = metrics.histogram(
                "serve_decode_seconds", session=self.session_id
            )
            self._m_cache_hits = metrics.counter(
                "serve_query_cache_hits_total", session=self.session_id
            )
            self._m_cache_misses = metrics.counter(
                "serve_query_cache_misses_total", session=self.session_id
            )
            self._m_query = metrics.histogram(
                "serve_query_seconds", session=self.session_id
            )
            self._m_drift_score = metrics.gauge(
                "serve_drift_score", session=self.session_id
            )
            self._m_drift_events = metrics.counter(
                "serve_drift_events_total", session=self.session_id
            )

    # ------------------------------------------------------------------
    # buffering and flushing (event-loop thread only)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Reports accepted but not yet folded into session state."""
        return self._buffered + self._inflight

    @property
    def stalled(self) -> bool:
        """Whether at least one connection is paused on backpressure."""
        return self._stall_waiters > 0

    @property
    def stall_seconds(self) -> float:
        """Total wall-clock this session has spent above the high-water
        mark (completed stalls plus the ongoing one, if any)."""
        total = self._stall_seconds
        if self._stall_waiters:
            total += time.perf_counter() - self._stall_clock
        return total

    @property
    def drain_log(self):
        return self._drain.drain_log

    def buffer(self, labels: np.ndarray, items: np.ndarray) -> int:
        """Accept one decoded wire batch into the ingest ring."""
        n = int(labels.size)
        if n == 0:
            return 0
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise DomainError(f"labels outside [0, {self.n_classes})")
        if items.min() < 0 or items.max() >= self.n_items:
            raise DomainError(f"items outside [0, {self.n_items})")
        self._ring.append(labels, items)
        self._buffered += n
        self.n_accepted += n
        if self._metrics is not None:
            self._m_pending.set(self.pending)
            self._m_occupancy.set(len(self._ring))
        return n

    def buffer_frames(
        self, bodies: list, trace: Optional[_trace.TraceContext] = None
    ) -> int:
        """Accept a run of coalesced REPORTS frame bodies in one pass.

        Each body is a zero-copy view over the connection's socket
        buffer; columns decode as strided ``int32`` views and write in
        place into the ring — no per-frame ndarray materialises.
        ``trace`` (the connection's context, when the client announced
        one and tracing is live) becomes the parent of the next flush
        span; it is one attribute store on the hot path.
        """
        if trace is not None:
            self._ingest_ctx = trace
        if self._metrics is not None:
            with Span(self._m_decode):
                total = self._buffer_frames(bodies)
        else:
            total = self._buffer_frames(bodies)
        if total and self._metrics is not None:
            self._m_pending.set(self.pending)
            self._m_occupancy.set(len(self._ring))
        return total

    def _buffer_frames(self, bodies: list) -> int:
        total = 0
        for body in bodies:
            labels, items = decode_reports_view(body)
            n = int(labels.size)
            if n == 0:
                continue
            # One reduction per column: the int32 wire views reinterpret
            # as uint32, where a negative value wraps above 2**31 — so a
            # single unsigned max catches both out-of-range directions.
            if labels.view(np.uint32).max() >= self.n_classes:
                raise DomainError(f"labels outside [0, {self.n_classes})")
            if items.view(np.uint32).max() >= self.n_items:
                raise DomainError(f"items outside [0, {self.n_items})")
            self._ring.append(labels, items)
            total += n
        self._buffered += total
        self.n_accepted += total
        return total

    def flush(self) -> int:
        """Drain the ingest ring into the aggregation plane.

        A counting sort in the resident arena turns the ring's arrival
        window into one class-sorted ``(labels, items)`` batch in O(n)
        (stable within each class), cut into ``flush_reports``-sized
        sub-batches with the engine's
        :func:`~repro.mechanisms.engine.batch_spans` before submission.
        Loop-thread only; callers serialise against :meth:`query` via the
        session lock (or skip when it is held).
        """
        if self._buffered == 0:
            return 0
        if self._metrics is not None:
            with Span(self._m_sort):
                labels, items = self._arena.class_sort(self._ring, self.n_classes)
        else:
            labels, items = self._arena.class_sort(self._ring, self.n_classes)
        flushed = int(labels.size)
        self._buffered -= flushed
        if self._metrics is not None:
            self._m_flush.observe(flushed)
            self._m_occupancy.set(len(self._ring))
        loop = asyncio.get_running_loop()
        # A no-op span (ctx None) unless tracing is live and a traced
        # client fed this session; otherwise the flush records itself
        # under the last ingest's trace and hands its child context to
        # the drain submits, so shard spans nest below it.
        flush_span = _trace.get_tracer().span(
            "collector.flush",
            self._ingest_ctx,
            cat="serve",
            session=self.session_id,
            reports=flushed,
        )
        with flush_span:
            for span in batch_spans(flushed, 1, self.flush_reports):
                chunk_labels, chunk_items = labels[span], items[span]
                self._inflight += int(chunk_labels.size)
                future = self._drain.submit(
                    chunk_labels, chunk_items, trace=flush_span.ctx
                )
                future.add_done_callback(
                    partial(self._on_drained, loop, int(chunk_labels.size))
                )
        return flushed

    def try_flush(self, only_full: bool = False) -> int:
        """Opportunistic flush, skipped while a query holds the lock.

        ``only_full`` applies the micro-batching threshold (the REPORTS
        hot path); the periodic sweep and backpressure paths flush
        whatever is buffered.
        """
        if self._lock.locked():
            return 0
        if only_full and self._buffered < self.flush_reports:
            return 0
        return self.flush()

    def _on_drained(self, loop, n: int, _future) -> None:
        # Runs on a drain worker thread; hop back to the loop.
        loop.call_soon_threadsafe(self._mark_drained, n)

    def _mark_drained(self, n: int) -> None:
        self._inflight -= n
        if self._metrics is not None:
            self._m_pending.set(self.pending)
        if self.pending <= self.low_water:
            self._resume.set()

    # ------------------------------------------------------------------
    # backpressure
    # ------------------------------------------------------------------
    async def wait_writable(self) -> None:
        """Pause the caller (and so its socket reads) above the high-water
        mark until ingestion catches up below the low-water mark."""
        paused = False
        while self.pending > self.high_water:
            if not paused:
                paused = True
                self._stall_waiters += 1
                if self._stall_waiters == 1:
                    self._stall_clock = time.perf_counter()
                    self._stall_started = time.time()
                if self._metrics is not None:
                    self._m_pause.inc()
                log_event(
                    "serve.backpressure.pause",
                    session=self.session_id,
                    pending=self.pending,
                )
            self.try_flush()
            self._resume.clear()
            await self._resume.wait()
        if paused:
            self._stall_waiters -= 1
            if self._stall_waiters == 0:
                self._stall_seconds += time.perf_counter() - self._stall_clock
                self._stall_started = None
            if self._metrics is not None:
                self._m_resume.inc()
            log_event(
                "serve.backpressure.resume",
                session=self.session_id,
                pending=self.pending,
            )

    # ------------------------------------------------------------------
    # queries and settling
    # ------------------------------------------------------------------
    def _epoch(self) -> tuple[int, int, int]:
        """The drain epoch a query result is valid for.

        Keyed on ``n_submitted``, not ``n_drained``: submissions are
        credited synchronously on the loop thread inside :meth:`flush`,
        while the adapter only reconciles ``n_drained`` on its next
        ``drain()`` call.  A periodic-sweep flush whose futures complete
        between queries moves ``n_submitted`` (and so the epoch)
        immediately, where ``n_drained`` would still name the old state
        and let a stale cached result through.  A result stored under the
        lock right after a drain covers exactly the submissions counted
        so far, so epoch equality certifies the drained state unchanged.

        The adapter's ``generation`` counter joins the key because decay
        mutates the drained state *without* a submit: an ageing pass
        (hook-driven or out-of-band) between queries would otherwise
        leave ``n_submitted`` unchanged and serve the pre-decay estimate
        from cache.
        """
        return (
            int(self._drain.n_submitted),
            self._mutations,
            int(self._drain.generation),
        )

    def _cached_query(self, key: str):
        entry = self._query_cache.get(key)
        if entry is not None and entry[0] == self._epoch():
            return entry
        return None

    async def query(self, spec: dict):
        """Answer one control-channel query against a drained snapshot.

        Estimate/topk/class_sizes results are memoized per drain epoch:
        with nothing buffered or in flight, a repeated query answers
        straight from cache — no flush, no drain, no estimator re-run —
        until the next drain (or mining-round advance) invalidates it.
        """
        query = spec.get("query")
        cacheable = query in CACHEABLE_QUERIES
        key = json.dumps(spec, sort_keys=True) if cacheable else None
        if (
            cacheable
            and self._buffered == 0
            and self._inflight == 0
            and not self._lock.locked()
        ):
            entry = self._cached_query(key)
            if entry is not None:
                if self._metrics is not None:
                    self._m_cache_hits.inc()
                return entry[1]
        async with self._lock:
            self.flush()
            loop = asyncio.get_running_loop()
            try:
                with Span(self._m_query if self._metrics is not None else None):
                    result = await loop.run_in_executor(
                        None, self._query_sync, spec
                    )
            finally:
                self._resume.set()  # re-check writability after the drain
            if cacheable:
                if self._metrics is not None:
                    self._m_cache_misses.inc()
                # Stamp with the post-drain epoch; a concurrent flush
                # cannot have landed (the lock is held), so the result is
                # exactly the drained state this epoch names.
                epoch = self._epoch()
                stale = [
                    k for k, v in self._query_cache.items() if v[0] != epoch
                ]
                for k in stale:
                    del self._query_cache[k]
                if len(self._query_cache) >= MAX_CACHED_QUERIES:
                    self._query_cache.pop(next(iter(self._query_cache)))
                self._query_cache[key] = (epoch, result)
            return result

    async def settle(self) -> None:
        """Flush and drain everything buffered (BYE / shutdown path)."""
        async with self._lock:
            self.flush()
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(None, self._drain.drain)
            finally:
                self._resume.set()

    def _query_sync(self, spec: dict):
        self._drain.drain()
        query = spec.get("query")
        if query == "stats":
            return self._stats()
        snapshot = self._drain.snapshot()
        if query == "topk":
            k = spec.get("k")
            try:
                k = None if k is None else int(k)
            except (TypeError, ValueError):
                raise ServeError(f"topk k must be an integer, got {k!r}") from None
            if k is None and self.kind == "framework":
                # Only the miner has an inherent k to default to.
                raise ServeError(
                    "topk on a framework session needs an explicit k"
                )
            result = snapshot.topk(k)
            return {str(label): ids for label, ids in result.items()}
        if self.kind == "framework":
            if query == "estimate":
                return snapshot.estimate().tolist()
            if query == "class_sizes":
                return snapshot.class_sizes().tolist()
            if query == "drift":
                return self._drift_check(snapshot, spec)
        else:
            if query == "advance_round":
                snapshot.advance_round()
                # The miner mutated outside the drain path: invalidate
                # cached results by advancing the epoch.  Plain int
                # increment — atomic under the GIL, and the cache-hit
                # path only ever runs on the event-loop thread.
                self._mutations += 1
                return self._round_stats(snapshot)
        raise ServeError(
            f"unknown query {query!r} for a {self.kind!r} session"
        )

    def _drift_check(self, snapshot, spec: dict) -> dict:
        """Score the drained estimate against the drift baseline.

        The residual between the current private estimate and the last
        baseline is normalised by the closed-form variance bound
        (``estimate_variance``); cells the noise cannot explain flag
        drift, the detector re-baselines, and the score lands on the
        ``serve_drift_score`` gauge.  Stateful but intentionally not
        cached: every check advances the baseline's age.
        """
        threshold = spec.get("threshold")
        try:
            threshold = None if threshold is None else float(threshold)
        except (TypeError, ValueError):
            raise ServeError(
                f"drift threshold must be a number, got {threshold!r}"
            ) from None
        if threshold is not None and not threshold > 0:
            raise ServeError(
                f"drift threshold must be > 0, got {threshold!r}"
            )
        report = self._drift.update(
            snapshot.estimate(), snapshot.estimate_variance(),
            threshold=threshold,
        )
        if self._metrics is not None:
            self._m_drift_score.set(report.score)
            if report.drifted:
                self._m_drift_events.inc()
        if report.drifted:
            log_event(
                "serve.drift.flagged",
                session=self.session_id,
                score=report.score,
                n_flagged=report.n_flagged,
            )
        out = report.to_dict()
        out["n_ingested"] = int(self._drain.n_drained)
        return out

    def _round_stats(self, miner) -> dict:
        return {
            "round": miner.round,
            "n_rounds": miner.n_rounds,
            "depth": miner.depth,
            "finished": miner.finished,
            "round_ingested": miner.round_ingested,
        }

    def _stats(self) -> dict:
        # Runs post-drain in the worker thread; count from the drain
        # adapter, not the loop-side pending markers (their decrements hop
        # back through the event loop and may not have landed yet).
        stats = {
            "session": self.session_id,
            "kind": self.kind,
            "n_accepted": self.n_accepted,
            "pending": self.n_accepted - self._drain.n_drained,
        }
        if self.kind == "topk":
            miner = self._drain.snapshot()
            stats["n_ingested"] = miner.n_ingested
            stats.update(self._round_stats(miner))
        else:
            stats["n_ingested"] = self._drain.n_drained
        return stats

    def ingest_stats(self) -> dict:
        """Loop-thread-safe ingest counters for the STATS frame.

        Unlike :meth:`_stats` (the ``stats`` query, which drains first on
        a worker thread) this never touches the drain adapter's work
        queue, so the collector can answer a STATS poll without blocking
        the event loop: ``pending`` here is the live ingest lag —
        buffered plus in-flight reports, both loop-side counters, so a
        sweep-flushed session reads 0 as soon as its drain futures land
        (``n_drained`` lags until the next query reconciles the adapter).
        """
        return {
            "session": self.session_id,
            "kind": self.kind,
            "n_accepted": int(self.n_accepted),
            "buffered": int(self._buffered),
            "inflight": int(self._inflight),
            "pending": int(self.pending),
            "n_submitted": int(self._drain.n_submitted),
            "n_drained": int(self._drain.n_drained),
            "high_water": int(self.high_water),
            "stalled": self.stalled,
            "stall_seconds": float(self.stall_seconds),
        }

    def worker_metrics(self) -> list[dict]:
        """Metrics snapshots shipped back from this session's shard
        worker processes, relabelled with the session id (on top of the
        aggregator's per-shard ``worker`` label) so two sessions' workers
        never collide when merged into one exposition."""
        return [
            relabel_snapshot(snapshot, session=self.session_id)
            for snapshot in self._drain.worker_metrics()
        ]

    def close(self) -> None:
        self._drain.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HostedSession(id={self.session_id!r}, kind={self.kind!r}, "
            f"accepted={self.n_accepted}, pending={self.pending})"
        )


class SessionRegistry:
    """Concurrent hosted sessions keyed by id (create-or-join).

    ``max_sessions`` bounds how many distinct cohorts unauthenticated
    handshakes can create (each holds shard arrays and worker threads);
    per-session allocations are capped by :data:`MAX_DOMAIN_CELLS` /
    :data:`MAX_SHARDS` in :func:`canonical_config`.
    """

    def __init__(
        self,
        default_shards: int = 1,
        flush_reports: int = 65_536,
        high_water: int = 262_144,
        record: bool = False,
        max_sessions: int = 256,
        metrics: Optional[MetricsRegistry] = None,
        executor: str = "thread",
        transport: Optional[str] = None,
    ) -> None:
        self.default_shards = int(default_shards)
        self.flush_reports = int(flush_reports)
        self.high_water = int(high_water)
        self.record = bool(record)
        self.max_sessions = int(max_sessions)
        self.metrics = metrics
        self.executor = executor
        self.transport = transport
        self._sessions: dict[str, HostedSession] = {}

    def open(self, raw_config: dict) -> tuple[HostedSession, bool]:
        """The hosted session for a HELLO config: created on first sight,
        joined (under an exactly matching config) afterwards."""
        config = canonical_config(raw_config, self.default_shards)
        existing = self._sessions.get(config["session"])
        if existing is not None:
            if existing.config != config:
                raise ServeError(
                    f"session {config['session']!r} exists with a different "
                    "config; joins must match the creating handshake exactly"
                )
            return existing, False
        if len(self._sessions) >= self.max_sessions:
            raise ServeError(
                f"session cap ({self.max_sessions}) reached; "
                f"cannot create {config['session']!r}"
            )
        hosted = HostedSession(
            config,
            flush_reports=self.flush_reports,
            high_water=self.high_water,
            record=self.record,
            metrics=self.metrics,
            executor=self.executor,
            transport=self.transport,
        )
        self._sessions[config["session"]] = hosted
        if self.metrics is not None:
            self.metrics.gauge("serve_sessions_active").set(len(self._sessions))
        log_event(
            "serve.session.create",
            session=config["session"],
            kind=config["kind"],
        )
        return hosted, True

    def get(self, session_id: str) -> HostedSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServeError(f"unknown session {session_id!r}") from None

    def sessions(self) -> list[HostedSession]:
        return list(self._sessions.values())

    def worker_metrics(self) -> list[dict]:
        """Every hosted session's shard-worker metrics snapshots (see
        :meth:`HostedSession.worker_metrics`)."""
        snapshots: list[dict] = []
        for hosted in self.sessions():
            snapshots.extend(hosted.worker_metrics())
        return snapshots

    async def settle_all(self) -> None:
        for hosted in self.sessions():
            await hosted.settle()

    def close(self) -> None:
        for hosted in self.sessions():
            hosted.close()

    def __len__(self) -> int:
        return len(self._sessions)
