"""Asyncio report client and load generator.

:class:`ReportClient` is the user-side half of the wire protocol: it
handshakes a session config, streams ``(label, item)`` reports in
REPORTS frames, and drives the control channel (``estimate`` / ``topk``
/ ``class_sizes`` / ``stats`` / ``advance_round``) mid-stream.  One
client maps to one TCP connection; many clients may feed the same
session id concurrently — the paper's one-report-per-user collection is
``n`` clients each sending a single report, and
:func:`generate_load` simulates exactly that population at a
configurable connection count and chunking.
"""

from __future__ import annotations

import asyncio
from typing import Optional

import numpy as np

from ..obs import trace as _trace
from ..obs.metrics import span as obs_span
from . import protocol
from .protocol import ServeError


class ReportClient:
    """One collector connection bound to one session id.

    Build with :meth:`connect` (or ``async with ReportClient.session(...)``
    via the context-manager form), stream with :meth:`send`, query any
    time, and :meth:`close` to settle — the collector answers with the
    connection's ingested-report count.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        config: dict,
        hello: dict,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._encoder = protocol.ReportsEncoder()
        self.config = config
        self.session_id = config["session"]
        #: The collector's handshake reply (``created`` flag, kind).
        self.hello = hello
        #: The connection's root trace context — set when tracing was
        #: live at :meth:`connect` time, announced to the collector on
        #: the HELLO so server-side flush/drain/shard spans share its
        #: trace id.  ``None`` keeps every client path span-free.
        self.trace: Optional[_trace.TraceContext] = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int, **config) -> "ReportClient":
        """Open a connection and handshake ``config`` onto its session.

        ``config`` holds the handshake keys (``session``, ``framework`` or
        ``kind="topk"``, ``epsilon``, ``n_classes``, ``n_items``, optional
        ``mode`` / ``seed`` / ``shards`` / decay knobs or a sliding
        ``window``); ``None`` values are elided so server defaults apply.

        When tracing is enabled (``REPRO_OBS=1`` or
        :func:`repro.obs.enable_tracing`) the connection mints a root
        :class:`~repro.obs.trace.TraceContext` and announces it in the
        HELLO's advisory ``trace`` field; the collector links its
        ingest, flush, and shard-worker spans under the same trace id.
        """
        ctx = (
            _trace.TraceContext.root()
            if _trace.get_tracer().enabled
            else None
        )
        hello = dict(config)
        if ctx is not None:
            hello["trace"] = ctx.to_wire()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            reply = await protocol.request(
                reader, writer, protocol.hello_frame(hello)
            )
        except BaseException:
            writer.close()
            raise
        client = cls(reader, writer, config, reply["result"])
        client.trace = ctx
        return client

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    async def send(self, labels, items, chunk_size: Optional[int] = None) -> int:
        """Stream aligned report columns; returns the report count sent.

        Large populations are cut into ``chunk_size`` reports per frame
        (default: one maximal frame), packed back-to-back into the
        client's resident interleave arena and written in arena-sized
        batches — with the writer's own flow control awaited between
        writes so collector backpressure propagates here.  Columns
        already shaped as contiguous ``int32`` skip the validation scan
        and conversion copy entirely.
        """
        labels, items = protocol.as_report_columns(labels, items)
        with _trace.get_tracer().span(
            "client.send",
            self.trace,
            cat="client",
            session=self.session_id,
            reports=int(labels.size),
        ):
            for payload in self._encoder.pack(labels, items, chunk_size):
                self._writer.write(payload)
                await self._writer.drain()
        return int(labels.size)

    async def send_one(self, label: int, item: int) -> None:
        """One user's single report (the literal protocol message)."""
        await self.send(np.array([label]), np.array([item]))

    # ------------------------------------------------------------------
    # control channel
    # ------------------------------------------------------------------
    async def query(self, query: str, **params):
        """Raw control query; returns the reply's ``result`` field.

        On a traced connection the query frame carries a child trace
        annotation and the round-trip records a ``client.query`` span,
        so server-side query spans parent under this request.
        """
        span = _trace.get_tracer().span(
            "client.query",
            self.trace,
            cat="client",
            session=self.session_id,
            query=query,
        )
        with span:
            if span.ctx is not None:
                params = dict(params, trace=span.ctx.to_wire())
            reply = await protocol.request(
                self._reader, self._writer, protocol.query_frame(query, **params)
            )
        return reply["result"]

    async def estimate(self) -> np.ndarray:
        """The served session's ``(c, d)`` pair-count estimate so far."""
        return np.asarray(await self.query("estimate"), dtype=np.float64)

    async def topk(self, k: Optional[int] = None) -> dict[int, list[int]]:
        result = await self.query("topk", k=k)
        return {int(label): list(ids) for label, ids in result.items()}

    async def class_sizes(self) -> np.ndarray:
        return np.asarray(await self.query("class_sizes"), dtype=np.float64)

    async def stats(self) -> dict:
        return await self.query("stats")

    async def server_stats(self) -> dict:
        """Poll the collector's live telemetry (the STATS wire frame).

        Unlike :meth:`stats` (a session-scoped query that drains first)
        this reads the collector's own counters — frames decoded,
        reports ingested, per-session lags, and the full metrics
        snapshot — without touching any session's work queue.
        """
        reply = await protocol.request(
            self._reader, self._writer, protocol.stats_frame()
        )
        return reply["result"]

    async def health(self) -> dict:
        """Poll the collector's health verdict (the HEALTH wire frame).

        Machine-readable ``{"status": "pass"|"warn"|"fail", "checks":
        [...]}`` — the same payload the ``/healthz`` HTTP route serves.
        """
        reply = await protocol.request(
            self._reader, self._writer, protocol.health_frame()
        )
        return reply["result"]

    async def advance_round(self) -> dict:
        """Advance a hosted top-k session's mining round (control plane)."""
        return await self.query("advance_round")

    async def drift(self, threshold: Optional[float] = None) -> dict:
        """Run a server-side drift check on a framework session.

        The server scores the drained estimate's residual against its
        closed-form variance bound (see
        :class:`repro.stream.drift.DriftDetector`); ``threshold``
        overrides the server's default flag bar for this check.  The
        first call installs the baseline and reports a zero score.
        """
        return await self.query("drift", threshold=threshold)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> int:
        """Settle and close; returns the connection's ingested count."""
        if self._closed:
            return 0
        self._closed = True
        try:
            reply = await protocol.request(
                self._reader, self._writer, protocol.bye_frame()
            )
            return int(reply["result"]["ingested"])
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    def abort(self) -> None:
        """Drop the connection without settling (error paths only)."""
        self._closed = True
        self._writer.close()

    async def __aenter__(self) -> "ReportClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def generate_load(
    host: str,
    port: int,
    config: dict,
    labels,
    items,
    n_connections: int = 4,
    chunk_size: int = 4096,
) -> dict:
    """Simulate a report population: ``n_connections`` concurrent clients
    each stream a contiguous slice of ``(labels, items)`` — one privatised
    report per simulated user — into the same session.

    Returns ``{"reports", "elapsed_sec", "reports_per_sec",
    "n_connections"}``; the per-connection ingested counts confirmed at
    BYE must sum to the population, so a lost report fails loudly here.

    The population is validated and shaped to the ``int32`` wire dtype
    exactly once, then cut into contiguous per-connection slice *views*
    — a preshaped ``int32`` population flows to the socket with zero
    validation scans and zero conversion copies per chunk.
    """
    if n_connections < 1:
        raise ServeError(f"n_connections must be >= 1, got {n_connections}")
    labels, items = protocol.as_report_columns(labels, items)
    step, extra = divmod(int(labels.size), n_connections)
    slices, start = [], 0
    for i in range(n_connections):
        stop = start + step + (1 if i < extra else 0)
        slices.append(slice(start, stop))
        start = stop

    async def one_connection(part) -> int:
        client = await ReportClient.connect(host, port, **config)
        try:
            await client.send(labels[part], items[part], chunk_size=chunk_size)
        except BaseException:
            client.abort()
            raise
        return await client.close()

    with obs_span("client_load_seconds") as timer:
        ingested = await asyncio.gather(
            *(one_connection(part) for part in slices)
        )
    elapsed = timer.elapsed
    total = int(sum(ingested))
    if total != labels.size:
        raise ServeError(
            f"population of {labels.size} reports but collector confirmed "
            f"{total}"
        )
    return {
        "reports": total,
        "elapsed_sec": elapsed,
        "reports_per_sec": total / elapsed if elapsed > 0 else float("inf"),
        "n_connections": int(n_connections),
    }


async def fetch_stats(host: str, port: int) -> dict:
    """One-shot telemetry poll of a running collector.

    Connects, sends a bare STATS frame (no session handshake — the
    collector answers STATS pre-HELLO), and returns the payload.  This
    is what a monitor sidecar or the load-generation example use to
    watch ingest progress from outside every session.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        reply = await protocol.request(
            reader, writer, protocol.stats_frame()
        )
        return reply["result"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def fetch_health(host: str, port: int) -> dict:
    """One-shot health probe of a running collector.

    Sends a bare HEALTH frame (answered pre-HELLO, like STATS) and
    returns the verdict payload — what a load balancer or ``repro-top``
    polls without joining any session.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        reply = await protocol.request(
            reader, writer, protocol.health_frame()
        )
        return reply["result"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
