"""Async report-collection service — the network front-end of the
unified report plane.

The paper's deployment model is a collector receiving one privatised
report per user over the wire; this subpackage is that collector, built
on asyncio over the streaming and engine layers:

* :mod:`~repro.serve.protocol` — the length-prefixed wire codec: a JSON
  HELLO handshake carrying the session config, packed binary
  ``(class_label, report)`` REPORTS frames (encoded through a reusable
  interleave arena, decoded as zero-copy views, coalesced off the socket
  by :class:`FrameReader`), and a JSON control channel.
* :mod:`~repro.serve.ringbuf` — the zero-allocation ingest buffers:
  :class:`ReportRing` columnar ring buffers written in place on arrival
  and the :class:`FlushArena` counting-sort flush scratch.
* :mod:`~repro.serve.registry` — :class:`SessionRegistry` hosting many
  concurrent cohorts (:class:`HostedSession`): ring-buffered ingest,
  high/low-water backpressure, epoch-cached queries, and mid-stream
  drains over :mod:`repro.stream.drain` adapters.
* :mod:`~repro.serve.collector` — :class:`ReportCollector`, the
  ``asyncio.start_server`` loop speaking the protocol.
* :mod:`~repro.serve.client` — :class:`ReportClient` and the
  :func:`generate_load` population simulator.

Quickstart (one process; see ``examples/report_service.py``)::

    import asyncio, numpy as np
    from repro.serve import ReportCollector, ReportClient

    async def main():
        async with ReportCollector() as collector:
            client = await ReportClient.connect(
                collector.host, collector.port,
                session="demo", framework="pts", epsilon=2.0,
                n_classes=3, n_items=64, seed=7,
            )
            async with client:
                await client.send(labels, items)
                estimate = await client.estimate()   # mid-stream query

    asyncio.run(main())

Run a standalone collector with ``repro-serve`` (``python -m
repro.serve``) and benchmark throughput with ``repro-bench serve``.
"""

from .client import ReportClient, fetch_health, fetch_stats, generate_load
from .collector import ReportCollector
from .protocol import FrameReader, ReportsEncoder, ServeError, WireError
from .registry import HostedSession, SessionRegistry, canonical_config
from .ringbuf import FlushArena, ReportRing

__all__ = [
    "FlushArena",
    "FrameReader",
    "HostedSession",
    "ReportClient",
    "ReportCollector",
    "ReportRing",
    "ReportsEncoder",
    "ServeError",
    "SessionRegistry",
    "WireError",
    "canonical_config",
    "fetch_health",
    "fetch_stats",
    "generate_load",
]
