"""``python -m repro.serve`` — the standalone collector (repro-serve)."""

from ..cli import serve_main

if __name__ == "__main__":
    raise SystemExit(serve_main())
