"""Zero-allocation ingest buffers for the serve plane's hot path.

The collector's REPORTS fast lane runs arrival → flush with no per-frame
allocation: decoded wire columns (zero-copy ``int32`` views over the
socket buffer) are written in place into a :class:`ReportRing`, and a
flush drains the whole buffered prefix through a counting sort in a
resident :class:`FlushArena`:

* :class:`ReportRing` — one growable ring of aligned ``(label, item)``
  ``int32`` columns.  Appends are at most two slice writes (the second
  across the wrap point); capacity doubles only when a burst outruns the
  flush cadence, and the linearised copy that regrowth implies is the
  only allocation the arrival path can ever make.
* :class:`FlushArena` — resident scratch reused across flushes.  Labels
  are bounded by ``n_classes``, so one ``bincount`` + ``cumsum`` yields
  the class histogram and bucket bounds in O(n); the stable bucket
  placement itself runs through NumPy's stable integer sort, which is an
  LSD radix sort — the C implementation of exactly this counting-sort
  pass — so the class-sorted batch costs O(n) with no comparison sort
  and no intermediate concatenation.  Output labels are reconstructed
  from the histogram (one slice fill per class), never materialised per
  chunk with ``np.full``.

The sorted output batch is the one allocation per flush: drain adapters
consume it asynchronously on worker threads (and the drain log may
retain it forever), so it must not live in reused scratch.
"""

from __future__ import annotations

import numpy as np

#: Smallest ring capacity (kept a power of two for cheap wrap math).
MIN_RING_CAPACITY = 1024


def _pow2_at_least(n: int) -> int:
    return 1 << max(int(n) - 1, MIN_RING_CAPACITY - 1).bit_length()


class ReportRing:
    """A growable ring buffer of aligned ``(label, item)`` report columns.

    Stored as two ``int32`` arrays (the wire dtype — half the memory
    traffic of ``int64`` staging) indexed by a head offset and a size.
    ``append`` accepts any integer array-likes whose values fit ``int32``
    (the wire codec and the domain bounds both guarantee this upstream);
    strided views decoded straight off the socket buffer write in place
    with no intermediate materialisation.
    """

    __slots__ = ("_labels", "_items", "_head", "_size")

    def __init__(self, capacity: int = 8192) -> None:
        cap = _pow2_at_least(capacity)
        self._labels = np.empty(cap, dtype=np.int32)
        self._items = np.empty(cap, dtype=np.int32)
        self._head = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        return self._labels.shape[0]

    def __len__(self) -> int:
        return self._size

    def append(self, labels: np.ndarray, items: np.ndarray) -> int:
        """Write one decoded batch in place; returns the report count."""
        n = int(labels.shape[0])
        if n == 0:
            return 0
        cap = self._labels.shape[0]
        if self._size + n > cap:
            self._grow(self._size + n)
            cap = self._labels.shape[0]
        tail = (self._head + self._size) & (cap - 1)
        first = min(n, cap - tail)
        self._labels[tail : tail + first] = labels[:first]
        self._items[tail : tail + first] = items[:first]
        if first < n:  # wrapped: the remainder lands at the buffer start
            self._labels[: n - first] = labels[first:]
            self._items[: n - first] = items[first:]
        self._size += n
        return n

    def _grow(self, needed: int) -> None:
        """Double (at least) the capacity, linearising the live window."""
        cap = _pow2_at_least(max(needed, 2 * self.capacity))
        labels = np.empty(cap, dtype=np.int32)
        items = np.empty(cap, dtype=np.int32)
        n = self._size
        self._copy_out(labels[:n], items[:n])
        self._labels, self._items = labels, items
        self._head = 0
        self._size = n

    def _copy_out(self, out_labels: np.ndarray, out_items: np.ndarray) -> None:
        """The live window, in arrival order, into ``out`` arrays (whose
        dtype may differ — the slice assignment converts in one pass)."""
        n = self._size
        cap = self._labels.shape[0]
        head = self._head
        first = min(n, cap - head)
        out_labels[:first] = self._labels[head : head + first]
        out_items[:first] = self._items[head : head + first]
        if first < n:
            out_labels[first:n] = self._labels[: n - first]
            out_items[first:n] = self._items[: n - first]

    def consume(self, out_labels: np.ndarray, out_items: np.ndarray) -> int:
        """Copy the buffered prefix into ``out`` arrays and drain it."""
        n = self._size
        self._copy_out(out_labels[:n], out_items[:n])
        self._head = (self._head + n) & (self.capacity - 1)
        self._size = 0
        return n


def _key_dtype(n_classes: int) -> np.dtype:
    """The narrowest unsigned dtype holding every class label.

    NumPy's stable integer sort is an LSD radix sort with one pass per
    key byte, so sorting ``uint8`` keys (any domain up to 256 classes)
    costs a single counting-sort pass over the batch — 4-5x faster than
    radixing the full-width label column for the same stable order.
    """
    if n_classes <= 1 << 8:
        return np.dtype(np.uint8)
    if n_classes <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


class FlushArena:
    """Resident scratch for counting-sort flushes, reused across calls.

    :meth:`class_sort` drains a :class:`ReportRing` into a freshly
    allocated class-sorted ``(labels, items)`` ``int64`` batch — fresh
    because drain adapters consume it asynchronously (and may log it),
    while the staging columns and narrowed sort keys all live here and
    are reused flush after flush.
    """

    __slots__ = ("_stage_labels", "_stage_items", "_keys")

    def __init__(self) -> None:
        self._stage_labels = np.empty(0, dtype=np.int32)
        self._stage_items = np.empty(0, dtype=np.int32)
        self._keys = np.empty(0, dtype=np.uint8)

    def _staging(
        self, n: int, key_dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._stage_labels.shape[0] < n:
            cap = _pow2_at_least(n)
            self._stage_labels = np.empty(cap, dtype=np.int32)
            self._stage_items = np.empty(cap, dtype=np.int32)
        if self._keys.dtype != key_dtype or self._keys.shape[0] < n:
            self._keys = np.empty(self._stage_labels.shape[0], dtype=key_dtype)
        return self._stage_labels[:n], self._stage_items[:n], self._keys[:n]

    def class_sort(
        self, ring: ReportRing, n_classes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drain ``ring`` into one class-sorted batch, stably in O(n).

        Reports keep their arrival order within each class — the exact
        order the old per-class list buffering produced — so drain-log
        replays stay bit-identical.
        """
        n = len(ring)
        items = np.empty(n, dtype=np.int64)
        labels = np.empty(n, dtype=np.int64)
        if n_classes == 1:
            ring.consume(labels, items)  # int32 -> int64, one pass
            labels.fill(0)
            return labels, items
        stage_labels, stage_items, keys = self._staging(
            n, _key_dtype(n_classes)
        )
        ring.consume(stage_labels, stage_items)  # int32 memcpy, <= 2 slices
        # Counting sort: the class histogram and bucket bounds come from
        # one bincount + cumsum; the stable placement radixes the
        # byte-narrowed keys (one counting pass per key byte) and gathers
        # the items through the resulting order, widening on the way out.
        counts = np.bincount(stage_labels, minlength=n_classes)
        np.copyto(keys, stage_labels, casting="unsafe")
        order = keys.argsort(kind="stable")
        items[:] = stage_items[order]
        bounds = np.cumsum(counts)
        start = 0
        for label in range(n_classes):
            end = int(bounds[label])
            if end > start:
                labels[start:end] = label
            start = end
        return labels, items
