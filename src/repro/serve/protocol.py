"""The report-collection wire protocol: length-prefixed frames.

Every message on a collector connection is one *frame*::

    frame   := u32_be length | u8 type | body           (length covers type+body)

    HELLO   (0x01)  JSON session config — framework/top-k kind, epsilon,
                    domain sizes, execution mode, optional seed/shards/
                    decay; opens or joins the named session.  May carry
                    an optional ``"trace"`` object (``{"trace_id": hex,
                    "span_id": hex}``, see
                    :class:`repro.obs.trace.TraceContext`) naming the
                    client-side trace this connection's work belongs to;
                    the collector parents its decode/flush/drain spans
                    on it.  The field is advisory: a collector without
                    tracing ignores it, a malformed value degrades to an
                    untraced connection, and it never affects the
                    estimates.
    REPORTS (0x02)  u32_be count | count x (i32_le label, i32_le item) —
                    the per-user reports, packed columnar-ready.  No
                    per-frame trace field: REPORTS inherit the
                    connection's HELLO trace context.
    QUERY   (0x03)  JSON ``{"query": "estimate" | "topk" | "class_sizes"
                    | "stats" | "advance_round", ...params}`` — the
                    control channel, answerable mid-stream.  Accepts the
                    same optional ``"trace"`` object as HELLO to
                    attribute this one query's server-side span.
    REPLY   (0x04)  JSON ``{"ok": true, "result": ...}`` (arrays as
                    nested lists).
    ERROR   (0x05)  JSON ``{"ok": false, "error": msg, "kind": cls}``.
    BYE     (0x06)  empty body; the collector settles the connection's
                    buffered reports and replies with the ingested count.
    STATS   (0x07)  empty body; the collector replies with its live
                    telemetry — frames decoded/rejected, reports
                    ingested, per-session ingest state, and a metrics
                    registry snapshot.  Accepted before the HELLO
                    handshake, so a monitor can poll a running collector
                    without joining a session.
    HEALTH  (0x08)  empty body; the collector replies with its health
                    verdict (machine-readable pass/warn/fail with
                    per-check reasons, see
                    :func:`repro.obs.health.evaluate_health`).  Like
                    STATS it is accepted before the HELLO handshake, so
                    probes need no session.

The codec is symmetric — client and collector share these helpers — and
pure plain-data (struct + JSON + fixed-width integer arrays, no
pickling), so either end can face an untrusted peer.  Report bodies
decode straight into ``int64`` NumPy columns, ready for the session
batch plane without per-report Python dispatch.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

import numpy as np

from ..exceptions import ReproError

#: Frame type tags.
HELLO = 0x01
REPORTS = 0x02
QUERY = 0x03
REPLY = 0x04
ERROR = 0x05
BYE = 0x06
STATS = 0x07
HEALTH = 0x08

_FRAME_TYPES = frozenset(
    (HELLO, REPORTS, QUERY, REPLY, ERROR, BYE, STATS, HEALTH)
)

#: Human-readable frame names (telemetry labels, log records).
FRAME_NAMES = {
    HELLO: "hello",
    REPORTS: "reports",
    QUERY: "query",
    REPLY: "reply",
    ERROR: "error",
    BYE: "bye",
    STATS: "stats",
    HEALTH: "health",
}

#: Hard cap on one frame's payload (type byte + body).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Report pairs that fit one maximal REPORTS frame.
MAX_REPORTS_PER_FRAME = (MAX_FRAME_BYTES - 5) // 8

_LEN = struct.Struct("!I")
_COUNT = struct.Struct("!I")


class ServeError(ReproError):
    """The report-collection service rejected a request (the collector's
    ERROR frame surfaced client-side, or a local serve-layer failure)."""


class WireError(ServeError):
    """A malformed, oversized, or out-of-protocol frame on the wire."""


def encode_frame(frame_type: int, body: bytes = b"") -> bytes:
    """One length-prefixed frame, ready to write."""
    if frame_type not in _FRAME_TYPES:
        raise WireError(f"unknown frame type {frame_type:#x}")
    payload_len = 1 + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {payload_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN.pack(payload_len) + bytes((frame_type,)) + body


def encode_json(frame_type: int, obj) -> bytes:
    """A JSON-bodied frame (HELLO / QUERY / REPLY / ERROR)."""
    return encode_frame(frame_type, json.dumps(obj).encode("utf-8"))


def decode_json(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable JSON frame body: {error}") from None
    if not isinstance(obj, dict):
        raise WireError(f"JSON frame body must be an object, got {type(obj).__name__}")
    return obj


def _i32_column(name: str, values) -> np.ndarray:
    """An integer column validated against the int32 wire range — a value
    that would wrap in the packed frame must fail loudly, not corrupt a
    cell of the served estimate.

    Columns already held as ``int32`` pass through untouched: they cannot
    hold an out-of-range value, so a preshaped report population skips
    both the min/max scan and any conversion copy on every chunk.
    """
    column = np.asarray(values)
    if column.ndim != 1:
        column = column.ravel()
    if column.dtype == np.int32 or column.size == 0:
        return column
    if column.dtype.kind not in "iu":
        raise WireError(f"{name} must be integers, got dtype {column.dtype}")
    low, high = int(column.min()), int(column.max())
    if low < -(2**31) or high >= 2**31:
        raise WireError(
            f"{name} values [{low}, {high}] do not fit the int32 wire format"
        )
    return column


def as_report_columns(labels, items) -> tuple[np.ndarray, np.ndarray]:
    """Aligned wire-ready report columns, validated once for a whole send.

    Returns the columns as ``int32`` (converted here if needed, so
    chunked sends slice preshaped views instead of re-validating and
    re-packing Python lists per chunk).
    """
    labels = _i32_column("labels", labels)
    items = _i32_column("items", items)
    if labels.shape != items.shape:
        raise WireError(
            f"labels ({labels.shape}) and items ({items.shape}) must align"
        )
    if labels.dtype != np.int32:
        labels = labels.astype(np.int32)
    if items.dtype != np.int32:
        items = items.astype(np.int32)
    return labels, items


#: Bytes of header per REPORTS frame: u32 length + u8 type + u32 count.
_REPORTS_HEADER = _LEN.size + 1 + _COUNT.size


def _pack_reports_into(
    arena: bytearray, offset: int, labels: np.ndarray, items: np.ndarray
) -> int:
    """One REPORTS frame at ``arena[offset:]``; returns bytes written.

    The ``(label, item)`` columns interleave straight into the arena
    through an ``int32`` view — no intermediate pair matrix, no
    ``tobytes`` copy.
    """
    n = int(labels.shape[0])
    _LEN.pack_into(arena, offset, 1 + _COUNT.size + 8 * n)
    arena[offset + _LEN.size] = REPORTS
    _COUNT.pack_into(arena, offset + _LEN.size + 1, n)
    if n:
        view = np.frombuffer(
            arena, dtype="<i4", count=2 * n, offset=offset + _REPORTS_HEADER
        )
        view[0::2] = labels
        view[1::2] = items
    return _REPORTS_HEADER + 8 * n


class ReportsEncoder:
    """A reusable interleave buffer building REPORTS frames back-to-back.

    The client write path packs many frames into one resident arena and
    hands the filled prefix to the transport as a single batched write —
    one write (and one payload copy, unavoidable because the transport
    may retain the buffer) per arena fill instead of one allocation +
    interleave + copy per frame.
    """

    __slots__ = ("_arena",)

    #: Default arena size: a dozen-ish 4096-report frames per write.
    DEFAULT_ARENA_BYTES = 512 * 1024

    def __init__(self, arena_bytes: int = DEFAULT_ARENA_BYTES) -> None:
        self._arena = bytearray(max(int(arena_bytes), _REPORTS_HEADER + 8))

    def pack(self, labels, items, chunk_size: Optional[int] = None):
        """Yield write payloads covering ``(labels, items)``.

        Columns are validated/converted once (see
        :func:`as_report_columns`); each payload holds as many
        ``chunk_size``-report frames as fit the arena.
        """
        labels, items = as_report_columns(labels, items)
        arena = self._arena
        used = 0
        for span in chunk_spans(labels.shape[0], chunk_size):
            chunk_labels = labels[span]
            need = _REPORTS_HEADER + 8 * int(chunk_labels.shape[0])
            if used + need > len(arena):
                if used:
                    yield bytes(memoryview(arena)[:used])
                    used = 0
                if need > len(arena):
                    self._arena = arena = bytearray(need)
            used += _pack_reports_into(arena, used, chunk_labels, items[span])
        if used or labels.shape[0] == 0:
            yield bytes(memoryview(arena)[:used])


def encode_reports(labels, items) -> bytes:
    """A REPORTS frame carrying aligned ``(label, item)`` int32 columns."""
    labels, items = as_report_columns(labels, items)
    n = int(labels.shape[0])
    if n > MAX_REPORTS_PER_FRAME:
        raise WireError(
            f"{n} reports exceed the {MAX_REPORTS_PER_FRAME}-per-frame cap; "
            "chunk the batch"
        )
    frame = bytearray(_REPORTS_HEADER + 8 * n)
    _pack_reports_into(frame, 0, labels, items)
    return bytes(frame)


def _reports_flat(body) -> np.ndarray:
    """The validated flat ``<i4`` view over a REPORTS body (zero-copy)."""
    if len(body) < _COUNT.size:
        raise WireError("truncated REPORTS frame: missing count")
    (n,) = _COUNT.unpack_from(body)
    payload = len(body) - _COUNT.size
    if payload % 4:
        raise WireError(
            f"REPORTS frame body of {payload} bytes is not int32-aligned"
        )
    flat = np.frombuffer(body, dtype="<i4", offset=_COUNT.size)
    if flat.size != 2 * n:
        raise WireError(
            f"REPORTS frame claims {n} reports but carries {flat.size // 2}"
        )
    return flat


def decode_reports_view(body) -> tuple[np.ndarray, np.ndarray]:
    """Zero-copy ``(labels, items)`` int32 views over a REPORTS body.

    The strided views alias ``body``'s memory (read-only when ``body`` is
    ``bytes``): the collector's fast lane writes them straight into a
    session ring buffer without materialising a per-frame array.  They
    are only valid while ``body``'s buffer is.
    """
    flat = _reports_flat(body)
    return flat[0::2], flat[1::2]


def decode_reports(body) -> tuple[np.ndarray, np.ndarray]:
    """``(labels, items)`` int64 columns from a REPORTS frame body.

    Each column is materialised with exactly one copy (strided wire view
    → fresh contiguous ``int64``), so the returned arrays own their data
    and are writable — safe to hand to any downstream consumer.
    """
    flat = _reports_flat(body)
    return flat[0::2].astype(np.int64), flat[1::2].astype(np.int64)


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """The next ``(frame_type, body)`` off the stream.

    Raises :class:`asyncio.IncompleteReadError` on a clean mid-frame EOF
    and :class:`WireError` on protocol violations.
    """
    header = await reader.readexactly(_LEN.size)
    (payload_len,) = _LEN.unpack(header)
    if payload_len < 1:
        raise WireError("empty frame payload")
    if payload_len > MAX_FRAME_BYTES:
        raise WireError(
            f"incoming frame of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    payload = await reader.readexactly(payload_len)
    frame_type = payload[0]
    if frame_type not in _FRAME_TYPES:
        raise WireError(f"unknown frame type {frame_type:#x}")
    return frame_type, payload[1:]


class FrameReader:
    """A buffered frame reader with coalesced REPORTS decode.

    One socket read can surface many frames; :meth:`read_batch` parses
    them out of a resident byte buffer and hands *consecutive REPORTS
    frames back as one batch of zero-copy body views* — the collector
    decodes them in a single pass into the session's ring buffer instead
    of waking once per frame.  Control frames come back one at a time as
    owned ``bytes`` (their JSON decode wants a real buffer anyway and
    they must outlive the read buffer).

    REPORTS body views alias the internal buffer and are only valid
    until the next ``read_*`` call — consume them before re-entering.
    """

    __slots__ = ("_reader", "_buf", "_pos", "_coalesce", "_read_size")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        coalesce: int = 64,
        read_size: int = 256 * 1024,
    ) -> None:
        self._reader = reader
        self._buf = bytearray()
        self._pos = 0
        self._coalesce = max(1, int(coalesce))
        self._read_size = max(4096, int(read_size))

    def _compact(self) -> None:
        if not self._pos:
            return
        try:
            del self._buf[: self._pos]
        except BufferError:  # a stale view still exports the buffer
            self._buf = bytearray(memoryview(self._buf)[self._pos :])
        self._pos = 0

    async def _fill(self) -> None:
        """Grow the buffer by one socket read (EOF raises like
        ``readexactly``: ``IncompleteReadError`` carrying the partial)."""
        self._compact()
        chunk = await self._reader.read(self._read_size)
        if not chunk:
            raise asyncio.IncompleteReadError(bytes(self._buf), None)
        self._buf += chunk

    def _parse(self) -> Optional[tuple[int, int, int]]:
        """``(frame_type, body_start, body_end)`` of the next complete
        frame in the buffer (consuming it), or ``None`` to read more."""
        buf, pos = self._buf, self._pos
        if len(buf) - pos < _LEN.size:
            return None
        (payload_len,) = _LEN.unpack_from(buf, pos)
        if payload_len < 1:
            raise WireError("empty frame payload")
        if payload_len > MAX_FRAME_BYTES:
            raise WireError(
                f"incoming frame of {payload_len} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap"
            )
        end = pos + _LEN.size + payload_len
        if len(buf) < end:
            return None
        frame_type = buf[pos + _LEN.size]
        if frame_type not in _FRAME_TYPES:
            raise WireError(f"unknown frame type {frame_type:#x}")
        self._pos = end
        return frame_type, pos + _LEN.size + 1, end

    async def _next_frame(self) -> tuple[int, int, int]:
        while True:
            parsed = self._parse()
            if parsed is not None:
                return parsed
            await self._fill()

    async def read_frame(self) -> tuple[int, bytes]:
        """One ``(frame_type, body)`` — the uncoalesced compatible form."""
        frame_type, start, end = await self._next_frame()
        return frame_type, bytes(self._buf[start:end])

    async def read_batch(self):
        """The next control frame, or a coalesced run of REPORTS frames.

        Returns ``(frame_type, body_bytes)`` for control frames and
        ``(REPORTS, [body_view, ...])`` for reports — every further
        complete REPORTS frame already sitting in the buffer joins the
        batch (up to the coalesce cap) without touching the event loop.
        """
        frame_type, start, end = await self._next_frame()
        if frame_type != REPORTS:
            return frame_type, bytes(self._buf[start:end])
        view = memoryview(self._buf)
        bodies = [view[start:end]]
        while len(bodies) < self._coalesce:
            mark = self._pos
            try:
                parsed = self._parse()
            except WireError:
                # Leave the malformed frame for the next read to report.
                self._pos = mark
                break
            if parsed is None or parsed[0] != REPORTS:
                self._pos = mark
                break
            bodies.append(view[parsed[1] : parsed[2]])
        return REPORTS, bodies


async def request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    frame: bytes,
) -> dict:
    """Write one frame, await the JSON reply, unwrap errors.

    The collector answers every HELLO/QUERY/BYE with a REPLY or ERROR
    frame; an ERROR raises :class:`ServeError` carrying the collector's
    message.
    """
    writer.write(frame)
    await writer.drain()
    frame_type, body = await read_frame(reader)
    obj = decode_json(body)
    if frame_type == ERROR:
        raise ServeError(
            f"{obj.get('kind', 'ServeError')}: {obj.get('error', 'unknown error')}"
        )
    if frame_type != REPLY:
        raise WireError(f"expected a REPLY frame, got type {frame_type:#x}")
    return obj


def error_frame(error: Exception) -> bytes:
    """The ERROR frame reporting ``error`` to the peer."""
    return encode_json(
        ERROR,
        {"ok": False, "error": str(error), "kind": type(error).__name__},
    )


def reply_frame(result, **extra) -> bytes:
    """A REPLY frame wrapping ``result`` (plus any extra fields)."""
    payload = {"ok": True, "result": result}
    payload.update(extra)
    return encode_json(REPLY, payload)


def hello_frame(config: dict) -> bytes:
    """The handshake frame for a session config (``None`` values elided)."""
    return encode_json(
        HELLO, {key: value for key, value in config.items() if value is not None}
    )


def query_frame(query: str, **params) -> bytes:
    body = {"query": query}
    body.update({key: value for key, value in params.items() if value is not None})
    return encode_json(QUERY, body)


def bye_frame() -> bytes:
    return encode_frame(BYE)


def stats_frame() -> bytes:
    """The telemetry poll frame (empty body; answered with a REPLY)."""
    return encode_frame(STATS)


def health_frame() -> bytes:
    """The health probe frame (empty body; answered with a REPLY)."""
    return encode_frame(HEALTH)


def chunk_spans(n: int, chunk_size: Optional[int] = None):
    """Slices cutting ``n`` reports into REPORTS-frame-sized chunks."""
    from ..mechanisms.engine import batch_spans

    size = MAX_REPORTS_PER_FRAME if chunk_size is None else int(chunk_size)
    size = min(size, MAX_REPORTS_PER_FRAME)
    return batch_spans(n, 1, size)
