"""The report-collection wire protocol: length-prefixed frames.

Every message on a collector connection is one *frame*::

    frame   := u32_be length | u8 type | body           (length covers type+body)

    HELLO   (0x01)  JSON session config — framework/top-k kind, epsilon,
                    domain sizes, execution mode, optional seed/shards/
                    decay; opens or joins the named session.
    REPORTS (0x02)  u32_be count | count x (i32_le label, i32_le item) —
                    the per-user reports, packed columnar-ready.
    QUERY   (0x03)  JSON ``{"query": "estimate" | "topk" | "class_sizes"
                    | "stats" | "advance_round", ...params}`` — the
                    control channel, answerable mid-stream.
    REPLY   (0x04)  JSON ``{"ok": true, "result": ...}`` (arrays as
                    nested lists).
    ERROR   (0x05)  JSON ``{"ok": false, "error": msg, "kind": cls}``.
    BYE     (0x06)  empty body; the collector settles the connection's
                    buffered reports and replies with the ingested count.
    STATS   (0x07)  empty body; the collector replies with its live
                    telemetry — frames decoded/rejected, reports
                    ingested, per-session ingest state, and a metrics
                    registry snapshot.  Accepted before the HELLO
                    handshake, so a monitor can poll a running collector
                    without joining a session.

The codec is symmetric — client and collector share these helpers — and
pure plain-data (struct + JSON + fixed-width integer arrays, no
pickling), so either end can face an untrusted peer.  Report bodies
decode straight into ``int64`` NumPy columns, ready for the session
batch plane without per-report Python dispatch.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

import numpy as np

from ..exceptions import ReproError

#: Frame type tags.
HELLO = 0x01
REPORTS = 0x02
QUERY = 0x03
REPLY = 0x04
ERROR = 0x05
BYE = 0x06
STATS = 0x07

_FRAME_TYPES = frozenset((HELLO, REPORTS, QUERY, REPLY, ERROR, BYE, STATS))

#: Human-readable frame names (telemetry labels, log records).
FRAME_NAMES = {
    HELLO: "hello",
    REPORTS: "reports",
    QUERY: "query",
    REPLY: "reply",
    ERROR: "error",
    BYE: "bye",
    STATS: "stats",
}

#: Hard cap on one frame's payload (type byte + body).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Report pairs that fit one maximal REPORTS frame.
MAX_REPORTS_PER_FRAME = (MAX_FRAME_BYTES - 5) // 8

_LEN = struct.Struct("!I")
_COUNT = struct.Struct("!I")


class ServeError(ReproError):
    """The report-collection service rejected a request (the collector's
    ERROR frame surfaced client-side, or a local serve-layer failure)."""


class WireError(ServeError):
    """A malformed, oversized, or out-of-protocol frame on the wire."""


def encode_frame(frame_type: int, body: bytes = b"") -> bytes:
    """One length-prefixed frame, ready to write."""
    if frame_type not in _FRAME_TYPES:
        raise WireError(f"unknown frame type {frame_type:#x}")
    payload_len = 1 + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {payload_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN.pack(payload_len) + bytes((frame_type,)) + body


def encode_json(frame_type: int, obj) -> bytes:
    """A JSON-bodied frame (HELLO / QUERY / REPLY / ERROR)."""
    return encode_frame(frame_type, json.dumps(obj).encode("utf-8"))


def decode_json(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable JSON frame body: {error}") from None
    if not isinstance(obj, dict):
        raise WireError(f"JSON frame body must be an object, got {type(obj).__name__}")
    return obj


def _i32_column(name: str, values) -> np.ndarray:
    """An integer column validated against the int32 wire range — a value
    that would wrap in the packed frame must fail loudly, not corrupt a
    cell of the served estimate."""
    column = np.asarray(values).ravel()
    if column.size == 0:
        return column
    if column.dtype.kind not in "iu":
        raise WireError(f"{name} must be integers, got dtype {column.dtype}")
    low, high = int(column.min()), int(column.max())
    if low < -(2**31) or high >= 2**31:
        raise WireError(
            f"{name} values [{low}, {high}] do not fit the int32 wire format"
        )
    return column


def encode_reports(labels, items) -> bytes:
    """A REPORTS frame carrying aligned ``(label, item)`` int32 columns."""
    labels = _i32_column("labels", labels)
    items = _i32_column("items", items)
    if labels.shape != items.shape:
        raise WireError(
            f"labels ({labels.shape}) and items ({items.shape}) must align"
        )
    n = int(labels.size)
    if n > MAX_REPORTS_PER_FRAME:
        raise WireError(
            f"{n} reports exceed the {MAX_REPORTS_PER_FRAME}-per-frame cap; "
            "chunk the batch"
        )
    pairs = np.empty((n, 2), dtype="<i4")
    pairs[:, 0] = labels
    pairs[:, 1] = items
    return encode_frame(REPORTS, _COUNT.pack(n) + pairs.tobytes())


def decode_reports(body: bytes) -> tuple[np.ndarray, np.ndarray]:
    """``(labels, items)`` int64 columns from a REPORTS frame body."""
    if len(body) < _COUNT.size:
        raise WireError("truncated REPORTS frame: missing count")
    (n,) = _COUNT.unpack_from(body)
    payload = len(body) - _COUNT.size
    if payload % 4:
        raise WireError(
            f"REPORTS frame body of {payload} bytes is not int32-aligned"
        )
    flat = np.frombuffer(body, dtype="<i4", offset=_COUNT.size)
    if flat.size != 2 * n:
        raise WireError(
            f"REPORTS frame claims {n} reports but carries {flat.size // 2}"
        )
    pairs = flat.reshape(n, 2).astype(np.int64)
    return pairs[:, 0], pairs[:, 1]


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """The next ``(frame_type, body)`` off the stream.

    Raises :class:`asyncio.IncompleteReadError` on a clean mid-frame EOF
    and :class:`WireError` on protocol violations.
    """
    header = await reader.readexactly(_LEN.size)
    (payload_len,) = _LEN.unpack(header)
    if payload_len < 1:
        raise WireError("empty frame payload")
    if payload_len > MAX_FRAME_BYTES:
        raise WireError(
            f"incoming frame of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    payload = await reader.readexactly(payload_len)
    frame_type = payload[0]
    if frame_type not in _FRAME_TYPES:
        raise WireError(f"unknown frame type {frame_type:#x}")
    return frame_type, payload[1:]


async def request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    frame: bytes,
) -> dict:
    """Write one frame, await the JSON reply, unwrap errors.

    The collector answers every HELLO/QUERY/BYE with a REPLY or ERROR
    frame; an ERROR raises :class:`ServeError` carrying the collector's
    message.
    """
    writer.write(frame)
    await writer.drain()
    frame_type, body = await read_frame(reader)
    obj = decode_json(body)
    if frame_type == ERROR:
        raise ServeError(
            f"{obj.get('kind', 'ServeError')}: {obj.get('error', 'unknown error')}"
        )
    if frame_type != REPLY:
        raise WireError(f"expected a REPLY frame, got type {frame_type:#x}")
    return obj


def error_frame(error: Exception) -> bytes:
    """The ERROR frame reporting ``error`` to the peer."""
    return encode_json(
        ERROR,
        {"ok": False, "error": str(error), "kind": type(error).__name__},
    )


def reply_frame(result, **extra) -> bytes:
    """A REPLY frame wrapping ``result`` (plus any extra fields)."""
    payload = {"ok": True, "result": result}
    payload.update(extra)
    return encode_json(REPLY, payload)


def hello_frame(config: dict) -> bytes:
    """The handshake frame for a session config (``None`` values elided)."""
    return encode_json(
        HELLO, {key: value for key, value in config.items() if value is not None}
    )


def query_frame(query: str, **params) -> bytes:
    body = {"query": query}
    body.update({key: value for key, value in params.items() if value is not None})
    return encode_json(QUERY, body)


def bye_frame() -> bytes:
    return encode_frame(BYE)


def stats_frame() -> bytes:
    """The telemetry poll frame (empty body; answered with a REPLY)."""
    return encode_frame(STATS)


def chunk_spans(n: int, chunk_size: Optional[int] = None):
    """Slices cutting ``n`` reports into REPORTS-frame-sized chunks."""
    from ..mechanisms.engine import batch_spans

    size = MAX_REPORTS_PER_FRAME if chunk_size is None else int(chunk_size)
    size = min(size, MAX_REPORTS_PER_FRAME)
    return batch_spans(n, 1, size)
