"""The asyncio report collector — the network-facing ingestion front-end.

:class:`ReportCollector` listens with :func:`asyncio.start_server` and
speaks the frame protocol of :mod:`repro.serve.protocol`.  Each
connection handshakes onto a hosted session (create-or-join through the
:class:`~repro.serve.registry.SessionRegistry`), then interleaves
REPORTS frames with QUERY frames answered mid-stream from drained
snapshots.  Reports ride the zero-allocation fast lane: a
:class:`~repro.serve.protocol.FrameReader` surfaces every consecutive
REPORTS frame sitting in the socket buffer as one coalesced batch of
zero-copy body views, which decode in a single pass straight into the
session's columnar ring buffer — no per-frame ndarray, no per-frame
event-loop wakeup.  The event loop only ever buffers and routes; the
actual privatisation/aggregation work runs on the drain adapters' worker
threads, so ingestion for one session overlaps with queries on another.

Backpressure is end-to-end: a session above its high-water mark of
unprocessed reports parks the connection coroutine after the offending
frame, which stops the collector reading the socket, fills the kernel
buffers, and blocks the client's writes until the aggregation plane
catches up below the low-water mark.

A periodic flusher bounds staleness for trickle streams: buffers that
never reach ``flush_reports`` are swept every ``flush_interval``
seconds, so a mid-stream query on a quiet session still reflects
(almost) everything accepted.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..exceptions import ReproError
from ..obs import trace as _trace
from ..obs.health import HealthMonitor, HealthPolicy
from ..obs.log import log_event
from ..obs.metrics import MetricsRegistry
from . import protocol
from .protocol import ServeError, WireError
from .registry import SessionRegistry


class ReportCollector:
    """Serve LDP report collection over localhost/TCP.

    Parameters
    ----------
    registry:
        The session registry to host; a fresh one is built from the
        keyword defaults when omitted.
    host / port:
        Bind address; port ``0`` (default) lets the OS pick — read the
        bound address back from :attr:`host` / :attr:`port` after
        :meth:`start`.
    flush_interval:
        Period of the background buffer sweep in seconds.
    coalesce_frames:
        Most consecutive REPORTS frames decoded as one batch per
        event-loop wakeup (``1`` disables coalescing).
    default_shards / flush_reports / high_water / record / executor / transport:
        Registry defaults when ``registry`` is omitted (see
        :class:`~repro.serve.registry.SessionRegistry`).
    metrics:
        The collector's telemetry registry.  Defaults to a private
        *always-enabled* :class:`~repro.obs.metrics.MetricsRegistry` —
        the STATS frame and ``/metrics`` endpoint reconcile against it,
        so it stays exact regardless of the process-wide telemetry
        switch.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_interval: float = 0.05,
        coalesce_frames: int = 64,
        default_shards: int = 1,
        flush_reports: int = 65_536,
        high_water: int = 262_144,
        record: bool = False,
        max_sessions: int = 256,
        metrics: Optional[MetricsRegistry] = None,
        executor: str = "thread",
        transport: Optional[str] = None,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        if flush_interval <= 0:
            raise ServeError(
                f"flush_interval must be positive, got {flush_interval!r}"
            )
        if coalesce_frames < 1:
            raise ServeError(
                f"coalesce_frames must be >= 1, got {coalesce_frames!r}"
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=True
        )
        if registry is not None:
            self.registry = registry
            if self.registry.metrics is None:
                self.registry.metrics = self.metrics
        else:
            self.registry = SessionRegistry(
                default_shards=default_shards,
                flush_reports=flush_reports,
                high_water=high_water,
                record=record,
                max_sessions=max_sessions,
                metrics=self.metrics,
                executor=executor,
                transport=transport,
            )
        self._bind_host = host
        self._bind_port = port
        self.flush_interval = float(flush_interval)
        self.coalesce_frames = int(coalesce_frames)
        self._server: Optional[asyncio.AbstractServer] = None
        self._flusher: Optional[asyncio.Task] = None
        self._next_connection_id = 0
        self._health = HealthMonitor(policy=health_policy)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        if self._server is None:
            return self._bind_host
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        if self._server is None:
            return self._bind_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ServeError("collector is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._bind_host, self._bind_port
        )
        self._flusher = asyncio.ensure_future(self._flush_loop())
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (the standalone ``repro-serve`` loop)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, settle every session's buffers, release workers."""
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.registry.settle_all()
        self.registry.close()

    async def __aenter__(self) -> "ReportCollector":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            for hosted in self.registry.sessions():
                hosted.try_flush()

    # ------------------------------------------------------------------
    # per-connection protocol loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        self.metrics.counter("serve_connections_total").inc()
        self.metrics.gauge("serve_connections_active").inc()
        log_event("serve.connection.open", connection=connection_id)
        try:
            await self._serve_connection(reader, writer, connection_id)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer went away mid-frame; its flushed reports stand
        except Exception as error:  # noqa: BLE001 - untrusted peer input;
            # report whatever a frame provoked instead of dropping silently
            self.metrics.counter("serve_frames_rejected_total").inc()
            await self._try_reply(writer, protocol.error_frame(error))
        finally:
            self.metrics.gauge("serve_connections_active").dec()
            log_event("serve.connection.close", connection=connection_id)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _read_frame(self, frames: protocol.FrameReader) -> tuple[int, bytes]:
        """Read and count one frame (rejected frames tally separately)."""
        try:
            frame_type, body = await frames.read_frame()
        except WireError:
            self.metrics.counter("serve_frames_rejected_total").inc()
            raise
        self.metrics.counter(
            "serve_frames_total", type=protocol.FRAME_NAMES[frame_type]
        ).inc()
        return frame_type, body

    async def _read_batch(self, frames: protocol.FrameReader, m_reports):
        """Read and count the next control frame or coalesced REPORTS run."""
        try:
            frame_type, body = await frames.read_batch()
        except WireError:
            self.metrics.counter("serve_frames_rejected_total").inc()
            raise
        if frame_type == protocol.REPORTS:
            m_reports.inc(len(body))
        else:
            self.metrics.counter(
                "serve_frames_total", type=protocol.FRAME_NAMES[frame_type]
            ).inc()
        return frame_type, body

    async def _serve_connection(self, reader, writer, connection_id) -> None:
        frames = protocol.FrameReader(reader, coalesce=self.coalesce_frames)
        while True:
            frame_type, body = await self._read_frame(frames)
            # Monitors may poll a running collector without joining a
            # session: STATS and HEALTH are answerable pre-HELLO.
            if frame_type == protocol.STATS:
                writer.write(protocol.reply_frame(self.stats()))
            elif frame_type == protocol.HEALTH:
                writer.write(protocol.reply_frame(self.health()))
            else:
                break
            await writer.drain()
        if frame_type != protocol.HELLO:
            raise WireError("connection must open with a HELLO frame")
        hello = protocol.decode_json(body)
        # The advisory trace announcement rides outside the canonical
        # session config: pop it before the config equality check, keep
        # it as this connection's context only while tracing is live
        # (malformed or absent degrades to untraced, never to an error).
        ctx = None
        if isinstance(hello, dict) and "trace" in hello:
            announced = _trace.TraceContext.from_wire(hello.pop("trace"))
            if _trace.get_tracer().enabled:
                ctx = announced
        try:
            hosted, created = self.registry.open(hello)
        except ReproError as error:
            await self._try_reply(writer, protocol.error_frame(error))
            return
        log_event(
            "serve.session.join",
            connection=connection_id,
            session=hosted.session_id,
            created=created,
        )
        writer.write(
            protocol.reply_frame(
                {
                    "session": hosted.session_id,
                    "kind": hosted.kind,
                    "created": created,
                }
            )
        )
        await writer.drain()

        accepted = 0
        # The REPORTS hot loop touches two counters per batch; fetch the
        # instruments once instead of re-keying the registry per frame.
        m_reports = self.metrics.counter("serve_frames_total", type="reports")
        m_ingested = self.metrics.counter("serve_reports_ingested_total")
        while True:
            frame_type, body = await self._read_batch(frames, m_reports)
            if frame_type == protocol.REPORTS:
                if ctx is None:
                    n = hosted.buffer_frames(body)
                else:
                    # Traced connection: one ingest span per coalesced
                    # run, whose child context the next flush parents on.
                    with _trace.get_tracer().span(
                        "collector.ingest",
                        ctx,
                        cat="serve",
                        session=hosted.session_id,
                        frames=len(body),
                    ) as ingest_span:
                        n = hosted.buffer_frames(body, trace=ingest_span.ctx)
                # The views alias the reader's buffer: release them before
                # the next read so the buffer can compact in place.
                del body
                accepted += n
                m_ingested.inc(n)
                hosted.try_flush(only_full=True)
                await hosted.wait_writable()
            elif frame_type == protocol.STATS:
                writer.write(protocol.reply_frame(self.stats()))
                await writer.drain()
            elif frame_type == protocol.HEALTH:
                writer.write(protocol.reply_frame(self.health()))
                await writer.drain()
            elif frame_type == protocol.QUERY:
                spec = protocol.decode_json(body)
                query_ctx = ctx
                if isinstance(spec, dict) and "trace" in spec:
                    # Popped unconditionally: the trace annotation must
                    # never reach the per-epoch query cache key.
                    announced = _trace.TraceContext.from_wire(spec.pop("trace"))
                    if announced is not None and _trace.get_tracer().enabled:
                        query_ctx = announced
                with _trace.get_tracer().span(
                    "collector.query",
                    query_ctx,
                    cat="serve",
                    session=hosted.session_id,
                ):
                    try:
                        result = await hosted.query(spec)
                    except Exception as error:  # noqa: BLE001
                        # Recoverable (e.g. estimate() before any data, or
                        # a malformed parameter): report, keep the
                        # connection.
                        writer.write(protocol.error_frame(error))
                    else:
                        writer.write(protocol.reply_frame(result))
                await writer.drain()
            elif frame_type == protocol.BYE:
                await hosted.settle()
                writer.write(protocol.reply_frame({"ingested": accepted}))
                await writer.drain()
                return
            else:
                raise WireError(
                    f"unexpected frame type {frame_type:#x} mid-session"
                )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The live telemetry payload answered to a STATS frame.

        Loop-thread only; never drains or blocks, so a monitor poll is
        cheap even under full ingest load.  ``collector`` summarises the
        wire-level counters, ``sessions`` the per-session ingest lags,
        and ``metrics`` is the full registry snapshot.
        """
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        frames = {
            name: counters[key]
            for name in protocol.FRAME_NAMES.values()
            if (key := f'serve_frames_total{{type="{name}"}}') in counters
        }
        return {
            "collector": {
                "host": self.host,
                "port": self.port,
                "connections_total": counters.get("serve_connections_total", 0),
                "connections_active": int(
                    snapshot["gauges"].get("serve_connections_active", 0)
                ),
                "frames": frames,
                "frames_rejected": counters.get("serve_frames_rejected_total", 0),
                "reports_ingested": counters.get("serve_reports_ingested_total", 0),
            },
            "sessions": [
                hosted.ingest_stats() for hosted in self.registry.sessions()
            ],
            "metrics": snapshot,
        }

    def health(self) -> dict:
        """The verdict payload behind ``/healthz`` and the HEALTH frame.

        Feeds the live per-session ingest stats and the collector's
        metrics snapshot through the stateful
        :class:`~repro.obs.health.HealthMonitor`; loop-thread only and
        never drains, so probes stay cheap under load.
        """
        return self._health.evaluate(
            [hosted.ingest_stats() for hosted in self.registry.sessions()],
            self.metrics.snapshot(),
        )

    async def _try_reply(self, writer, frame: bytes) -> None:
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass
