"""``python -m repro`` — forwards to the bench CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
