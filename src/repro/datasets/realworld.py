"""Seeded stand-ins for the paper's four Kaggle datasets.

The originals (Diabetes Prediction, Heart Disease Health Indicators,
MyAnimeList, JD contest) are not redistributable and unavailable offline,
so each generator below synthesises a dataset matching the statistics the
paper reports and that actually drive the algorithms: user count, class
count and balance, item-domain size, head skew, and cross-class overlap of
frequent items.  DESIGN.md Section 2 documents the substitution argument;
``scale`` shrinks the user count proportionally for laptop benches.

The frequency-estimation datasets (:func:`diabetes_like`,
:func:`heart_disease_like`) model the paper's per-feature protocol: users
are divided into one group per feature and each group mines the
(class label, feature value) pairs of its feature.  The helpers return a
:class:`FeatureStudy` bundling the per-feature datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DomainError
from ..rng import RngLike, ensure_rng
from .base import LabelItemDataset
from .synthetic import exponential_multiclass

#: Per-class user counts of the (20%-sampled) JD dataset from the paper's
#: Fig. 8 discussion: age groups <=25, 26-35, 36-45, 46-55, >=56.
JD_CLASS_SIZES: tuple[int, ...] = (850_000, 4_000_000, 3_000_000, 314_000, 170_000)

#: Item-domain size of the JD dataset.
JD_N_ITEMS: int = 28_000

#: Item-domain size of the MyAnimeList dataset (anime titles).
ANIME_N_ITEMS: int = 14_000

#: Pair count of the 20%-sampled MyAnimeList dataset (~7M records).
ANIME_N_USERS: int = 7_000_000


@dataclass
class FeatureStudy:
    """A per-feature collection of label-item datasets.

    The paper's frequency-estimation experiments assign each user group to
    one feature; RMSE is averaged over features.  ``datasets[i]`` holds
    the (class label, value of feature ``i``) pairs of group ``i``.
    """

    name: str
    datasets: list[LabelItemDataset]

    @property
    def n_features(self) -> int:
        return len(self.datasets)

    def __iter__(self):
        return iter(self.datasets)


def _class_conditional_values(
    n_per_class: np.ndarray,
    domain: int,
    shift: float,
    concentration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``(c, domain)`` pair counts for one feature.

    Each class draws values from a discretised log-normal-like profile;
    ``shift`` moves the positive class's mode right (e.g. diabetics have
    higher glucose), creating the class-conditional structure the
    multi-class estimators must recover.
    """
    n_classes = len(n_per_class)
    counts = np.zeros((n_classes, domain), dtype=np.int64)
    base_mode = 0.35
    for label, size in enumerate(n_per_class):
        mode = min(0.9, base_mode + shift * label)
        positions = (np.arange(domain) + 0.5) / domain
        log_dev = np.log(positions / mode)
        weights = np.exp(-0.5 * (log_dev / concentration) ** 2) / positions
        probs = weights / weights.sum()
        counts[label] = rng.multinomial(int(size), probs)
    return counts


def _binary_feature_study(
    name: str,
    n_users: int,
    positive_rate: float,
    feature_domains: list[int],
    scale: float,
    rng: np.random.Generator,
) -> FeatureStudy:
    """Shared machinery for the two clinical datasets."""
    if not 0.0 < positive_rate < 1.0:
        raise DomainError(f"positive rate must be in (0,1), got {positive_rate}")
    if scale <= 0:
        raise DomainError(f"scale must be positive, got {scale}")
    n_users = max(len(feature_domains) * 10, int(round(n_users * scale)))
    group_size = n_users // len(feature_domains)
    datasets = []
    for index, domain in enumerate(feature_domains):
        n_positive = int(round(group_size * positive_rate))
        per_class = np.asarray([group_size - n_positive, n_positive])
        shift = 0.25 if domain > 4 else 0.1
        concentration = 0.45 if domain > 20 else 0.8
        counts = _class_conditional_values(per_class, domain, shift, concentration, rng)
        datasets.append(
            LabelItemDataset.from_pair_counts(
                counts, name=f"{name}/feature{index}(d={domain})", rng=rng
            )
        )
    return FeatureStudy(name=name, datasets=datasets)


def diabetes_like(scale: float = 1.0, rng: RngLike = None) -> FeatureStudy:
    """Stand-in for the Diabetes Prediction dataset.

    100,000 individuals, 8 features, binary diabetes label (~8.5%
    positive); continuous features rounded to one decimal, the largest
    domain holding about 600 values (BMI).
    """
    rng = ensure_rng(rng)
    feature_domains = [2, 2, 5, 6, 13, 97, 18, 600]
    return _binary_feature_study(
        name="diabetes-like",
        n_users=100_000,
        positive_rate=0.085,
        feature_domains=feature_domains,
        scale=scale,
        rng=rng,
    )


def heart_disease_like(scale: float = 1.0, rng: RngLike = None) -> FeatureStudy:
    """Stand-in for the Heart Disease Health Indicators dataset.

    253,680 survey responses, 21 categorical features (largest domain
    84), binary heart-disease label (~9.4% positive).
    """
    rng = ensure_rng(rng)
    feature_domains = [2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 5, 6, 6, 13, 14, 30, 31, 84]
    return _binary_feature_study(
        name="heart-like",
        n_users=253_680,
        positive_rate=0.094,
        feature_domains=feature_domains,
        scale=scale,
        rng=rng,
    )


def _difficulty_scale(reference_scale: float, scale: float) -> float:
    """Exponential head scale preserving LDP difficulty across user scales.

    The top-k task's hardness is governed by the ratio of the count gap
    between adjacent head ranks (``∝ N / s``) to the LDP support noise
    (``∝ sqrt(N)``), i.e. ``∝ sqrt(N) / s``.  Shrinking the user count by
    ``scale`` therefore pairs with shrinking the head scale by
    ``sqrt(scale)`` so that laptop-sized benches reproduce the paper-scale
    orderings (DESIGN.md Section 2).
    """
    return max(0.002, reference_scale * float(np.sqrt(scale)))


def anime_like(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """Stand-in for the MyAnimeList top-k workload.

    Two gender classes (55/45 split), 14,000 anime titles, a nearly flat
    exponential head (many similarly popular shows — what makes the
    paper's top-20 task hard), and a strongly shared head: the hit shows
    are popular with both genders, which is exactly the "globally
    frequent items" effect the paper's PTS pipeline exploits.
    """
    rng = ensure_rng(rng)
    if scale <= 0:
        raise DomainError(f"scale must be positive, got {scale}")
    n_users = max(1000, int(round(ANIME_N_USERS * scale)))
    sizes = np.asarray([int(round(n_users * 0.55)), 0], dtype=np.int64)
    sizes[1] = n_users - sizes[0]
    exp_scale = _difficulty_scale(0.035, scale)  # calibrated: see DESIGN.md
    return exponential_multiclass(
        n_users=n_users,
        n_classes=2,
        n_items=ANIME_N_ITEMS,
        exp_scales=[exp_scale, exp_scale * 0.9],
        class_sizes=sizes,
        shared_head=14,
        head_window=20,
        name="anime-like",
        rng=rng,
    )


def jd_like(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """Stand-in for the JD contest top-k workload.

    Five age-group classes with the paper's very unbalanced sizes
    (850k/4M/3M/314k/170k before scaling), 28,000 items, a flat
    exponential sales head with substantial cross-class overlap (popular
    goods are popular with all age groups).
    """
    rng = ensure_rng(rng)
    if scale <= 0:
        raise DomainError(f"scale must be positive, got {scale}")
    sizes = np.maximum(50, np.round(np.asarray(JD_CLASS_SIZES, dtype=np.float64) * scale)).astype(
        np.int64
    )
    exp_scale = _difficulty_scale(0.022, scale)
    return exponential_multiclass(
        n_users=int(sizes.sum()),
        n_classes=len(sizes),
        n_items=JD_N_ITEMS,
        exp_scales=[exp_scale * f for f in (1.0, 1.05, 0.95, 1.1, 0.9)],
        class_sizes=sizes,
        shared_head=10,
        head_window=20,
        name="jd-like",
        rng=rng,
    )
