"""Synthetic dataset generators (paper Section VII-A).

Four families, mirroring the paper:

* :func:`syn1` — variance analysis with controlled correlation strength:
  4 classes x 4 items arranged as a Latin square of the pair counts
  ``{10^3, 10^4, 10^5, 10^6}``, so every class size and every global item
  count equals ``1.111e6`` while individual pair frequencies (and hence
  PMI) vary over three orders of magnitude.
* :func:`syn2` — variance analysis with varying class amount ``n``: one
  probe item has the fixed pair count ``10^4`` in every class while class
  sizes sweep ``{1.3e4, 2.11e5, 1.21e6, 3.01e6}``.
* :func:`syn3` / :func:`syn4` — top-k sweeps over the number of classes:
  20,000 items, five million instances (scalable), class sizes drawn from
  a normal distribution, per-class item popularity exponential with scale
  in ``[0.01, 0.1]``.  SYN3 plants globally frequent items (on average
  eight shared among any two classes' top-20); SYN4 gives every class a
  disjoint head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import DomainError
from ..rng import RngLike, ensure_rng
from .base import LabelItemDataset

#: Pair counts cycled through SYN1's Latin square.
SYN1_PAIR_COUNTS: tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)

#: Class sizes swept by SYN2.
SYN2_CLASS_SIZES: tuple[int, ...] = (13_000, 211_000, 1_210_000, 3_010_000)

#: SYN2's fixed probe-item pair count.
SYN2_PROBE_COUNT: int = 10_000


def syn1(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """SYN1: Latin square of pair counts for the PMI/variance study.

    ``scale`` shrinks every count proportionally (floor 1) so tests can
    run the same shape cheaply.  Cell ``(c, i)`` holds
    ``SYN1_PAIR_COUNTS[(i + c) % 4]`` users.
    """
    rng = ensure_rng(rng)
    base = np.asarray(SYN1_PAIR_COUNTS, dtype=np.float64)
    counts = np.empty((4, 4), dtype=np.int64)
    for label in range(4):
        counts[label] = np.maximum(1, np.round(np.roll(base, -label) * scale)).astype(
            np.int64
        )
    return LabelItemDataset.from_pair_counts(counts, name="SYN1", rng=rng)


def syn2(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """SYN2: fixed probe-item count, class sizes spanning two decades.

    Item 0 holds exactly ``SYN2_PROBE_COUNT * scale`` users in every
    class; the remainder of each class is spread evenly over items 1-3.
    """
    rng = ensure_rng(rng)
    probe = max(1, int(round(SYN2_PROBE_COUNT * scale)))
    counts = np.zeros((4, 4), dtype=np.int64)
    for label, class_size in enumerate(SYN2_CLASS_SIZES):
        size = max(probe + 3, int(round(class_size * scale)))
        counts[label, 0] = probe
        rest = size - probe
        counts[label, 1:] = rest // 3
        counts[label, 1] += rest - 3 * (rest // 3)
    return LabelItemDataset.from_pair_counts(counts, name="SYN2", rng=rng)


def _exponential_rank_probabilities(
    n_items: int, exp_scale: float
) -> np.ndarray:
    """Item-rank pmf ``P(r) ∝ exp(-r / (scale * d))``.

    ``exp_scale`` is the paper's exponential scale in ``[0.01, 0.1]``;
    smaller values concentrate more mass in the head.
    """
    if not 0.0 < exp_scale:
        raise DomainError(f"exponential scale must be positive, got {exp_scale}")
    ranks = np.arange(n_items, dtype=np.float64)
    weights = np.exp(-ranks / (exp_scale * n_items))
    return weights / weights.sum()


def _normal_class_sizes(
    n_users: int, n_classes: int, rng: np.random.Generator, spread: float = 0.25
) -> np.ndarray:
    """Class sizes ~ Normal(N/c, spread * N/c), clipped and renormalised."""
    mean = n_users / n_classes
    sizes = rng.normal(mean, spread * mean, size=n_classes)
    sizes = np.clip(sizes, mean * 0.1, None)
    sizes = np.round(sizes / sizes.sum() * n_users).astype(np.int64)
    sizes[-1] += n_users - sizes.sum()
    if (sizes <= 0).any():
        raise DomainError("class-size sampling produced an empty class; increase N")
    return sizes


def _rank_to_item_maps(
    n_classes: int,
    n_items: int,
    shared_head: int,
    head_window: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-class permutations mapping popularity rank -> item id.

    ``shared_head`` globally frequent items are placed at ranks drawn
    uniformly from each class's top ``head_window`` ranks, yielding an
    expected overlap of ``shared_head`` among any two classes' top-
    ``head_window`` items (paper: 8 among top 20).  The remaining ranks
    are filled with a per-class permutation of the other items.
    """
    if shared_head > head_window:
        raise DomainError(
            f"shared_head ({shared_head}) cannot exceed head_window ({head_window})"
        )
    if head_window > n_items:
        raise DomainError("head_window larger than the item domain")
    maps = np.empty((n_classes, n_items), dtype=np.int64)
    # The globally frequent items get arbitrary (random) ids, shared by
    # every class — contiguous ids would cluster them into one prefix
    # subtree and mask PEM's structural weakness.
    global_items = rng.choice(n_items, size=shared_head, replace=False)
    non_global = np.setdiff1d(np.arange(n_items), global_items)
    for label in range(n_classes):
        own_items = rng.permutation(non_global)
        ranks = np.empty(n_items, dtype=np.int64)
        head_positions = rng.choice(head_window, size=shared_head, replace=False)
        mask = np.zeros(n_items, dtype=bool)
        mask[head_positions] = True
        ranks[head_positions] = rng.permutation(global_items)
        ranks[~mask] = own_items
        maps[label] = ranks
    return maps


def exponential_multiclass(
    n_users: int,
    n_classes: int,
    n_items: int,
    exp_scales: Sequence[float],
    class_sizes: Optional[Sequence[int]] = None,
    shared_head: int = 0,
    head_window: int = 20,
    name: str = "exponential",
    rng: RngLike = None,
) -> LabelItemDataset:
    """Exponential-popularity generator (the paper's synthetic family).

    Per class ``c`` the item at popularity rank ``r`` has probability
    ``∝ exp(-r / (exp_scales[c] * d))``; rank-to-item-id maps are random
    permutations with an optional shared global head (see
    :func:`_rank_to_item_maps`).  The exponential head is nearly flat
    (adjacent ranks differ by a factor ``exp(-1/(s d))``), which is what
    makes top-k identification genuinely hard under LDP noise — the
    regime the paper's evaluation operates in.
    """
    rng = ensure_rng(rng)
    if n_classes < 1:
        raise DomainError("need at least one class")
    scales = np.asarray(list(exp_scales), dtype=np.float64)
    if scales.shape != (n_classes,):
        raise DomainError(f"need one exponential scale per class, got {scales.shape}")
    if class_sizes is None:
        sizes = np.full(n_classes, n_users // n_classes, dtype=np.int64)
        sizes[: n_users % n_classes] += 1
    else:
        sizes = np.asarray(class_sizes, dtype=np.int64)
        if sizes.shape != (n_classes,):
            raise DomainError(f"class_sizes must have length {n_classes}")
        if int(sizes.sum()) != n_users:
            raise DomainError("class_sizes must sum to n_users")
    rank_maps = _rank_to_item_maps(n_classes, n_items, shared_head, head_window, rng)
    counts = np.zeros((n_classes, n_items), dtype=np.int64)
    for label in range(n_classes):
        probs = _exponential_rank_probabilities(n_items, float(scales[label]))
        rank_counts = rng.multinomial(int(sizes[label]), probs)
        counts[label, rank_maps[label]] = rank_counts
    return LabelItemDataset.from_pair_counts(counts, name=name, rng=rng)


def _skewed_multiclass(
    name: str,
    n_users: int,
    n_classes: int,
    n_items: int,
    shared_head: int,
    rng: np.random.Generator,
    head_window: int = 20,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """Common SYN3/SYN4 machinery."""
    if n_classes < 2:
        raise DomainError("need at least two classes")
    class_sizes = _normal_class_sizes(n_users, n_classes, rng)
    scales = np.linspace(scale_range[0], scale_range[1], n_classes)
    return exponential_multiclass(
        n_users=int(class_sizes.sum()),
        n_classes=n_classes,
        n_items=n_items,
        exp_scales=scales,
        class_sizes=class_sizes,
        shared_head=shared_head,
        head_window=head_window,
        name=name,
        rng=rng,
    )


def syn3(
    n_classes: int = 10,
    n_users: int = 5_000_000,
    n_items: int = 20_000,
    rng: RngLike = None,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """SYN3: class-count sweep **with** globally frequent items.

    On average eight of the top-20 items are shared between any two
    classes, mimicking the cross-class head overlap the paper observed in
    real data.
    """
    rng = ensure_rng(rng)
    return _skewed_multiclass(
        name=f"SYN3(c={n_classes})",
        n_users=n_users,
        n_classes=n_classes,
        n_items=n_items,
        shared_head=8,
        rng=rng,
        scale_range=scale_range,
    )


def syn4(
    n_classes: int = 10,
    n_users: int = 5_000_000,
    n_items: int = 20_000,
    rng: RngLike = None,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """SYN4: same construction as SYN3 but with disjoint class heads."""
    rng = ensure_rng(rng)
    return _skewed_multiclass(
        name=f"SYN4(c={n_classes})",
        n_users=n_users,
        n_classes=n_classes,
        n_items=n_items,
        shared_head=0,
        rng=rng,
        scale_range=scale_range,
    )


def zipf_multiclass(
    n_users: int,
    n_classes: int,
    n_items: int,
    zipf_s: float = 1.2,
    class_sizes: Optional[Sequence[int]] = None,
    shared_head: int = 0,
    head_window: int = 20,
    name: str = "zipf",
    rng: RngLike = None,
) -> LabelItemDataset:
    """General Zipf-popularity generator used by examples and tests.

    ``P(rank r) ∝ (r + 1)^{-s}``; per-class rank-to-item maps follow the
    same shared-head construction as SYN3/SYN4.
    """
    rng = ensure_rng(rng)
    if class_sizes is None:
        sizes = np.full(n_classes, n_users // n_classes, dtype=np.int64)
        sizes[: n_users % n_classes] += 1
    else:
        sizes = np.asarray(class_sizes, dtype=np.int64)
        if sizes.shape != (n_classes,):
            raise DomainError(f"class_sizes must have length {n_classes}")
        if int(sizes.sum()) != n_users:
            raise DomainError("class_sizes must sum to n_users")
    ranks = np.arange(n_items, dtype=np.float64) + 1.0
    probs = ranks**-zipf_s
    probs /= probs.sum()
    rank_maps = _rank_to_item_maps(n_classes, n_items, shared_head, head_window, rng)
    counts = np.zeros((n_classes, n_items), dtype=np.int64)
    for label in range(n_classes):
        rank_counts = rng.multinomial(int(sizes[label]), probs)
        counts[label, rank_maps[label]] = rank_counts
    return LabelItemDataset.from_pair_counts(counts, name=name, rng=rng)


# ----------------------------------------------------------------------
# Time-varying streams: drift workloads
# ----------------------------------------------------------------------
#
# The four SYN families are fixed populations.  Live serving, however,
# faces *time-varying* streams — the distribution generating reports
# moves while the collector runs.  The generators below emit timestamped
# report batches whose instantaneous law follows one of three canonical
# drift patterns, each batch carrying its own ground truth
# (``class_probs`` / ``item_probs``) so staleness and recall can be
# scored per step:
#
# * ``"ramp"``  — frequency ramps: every class's item popularity
#   interpolates linearly from one Zipf ordering to an independent one.
# * ``"flip"``  — class-popularity flip: item popularity stays put while
#   the class mix inverts abruptly mid-stream (the dominant class
#   becomes the rarest).
# * ``"burst"`` — burst arrivals: a stationary base load punctuated by
#   volume spikes concentrated on one class and one item.

#: Supported drift patterns, in presentation order.
DRIFT_PATTERNS: tuple[str, ...] = ("ramp", "flip", "burst")


@dataclass(frozen=True)
class DriftStep:
    """The generating law at one stream step."""

    class_probs: np.ndarray  #: ``(c,)`` class mix
    item_probs: np.ndarray  #: ``(c, d)`` per-class item pmf (rows sum to 1)
    volume: float  #: arrival-rate multiplier for this step

    def pair_probs(self) -> np.ndarray:
        """Joint ``(c, d)`` pmf of one report at this step."""
        return self.class_probs[:, None] * self.item_probs

    def topk(self, k: int) -> dict[int, list[int]]:
        """Per-class true top-``k`` item ids, most probable first."""
        out: dict[int, list[int]] = {}
        for label, row in enumerate(self.item_probs):
            order = np.argsort(-row, kind="stable")[: int(k)]
            out[label] = [int(v) for v in order]
        return out


@dataclass(frozen=True)
class DriftBatch:
    """One timestamped report batch plus its instantaneous ground truth."""

    step: int
    time: float  #: step start time (seconds since stream start)
    timestamps: np.ndarray  #: per-report arrival times, non-decreasing
    labels: np.ndarray
    items: np.ndarray
    truth: DriftStep

    @property
    def n_reports(self) -> int:
        return int(self.labels.size)


def _zipf_row(n_items: int, exponent: float, rng) -> np.ndarray:
    """A Zipf(``exponent``) pmf over a random permutation of the items."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64) ** -float(exponent)
    row = np.empty(n_items, dtype=np.float64)
    row[rng.permutation(n_items)] = ranks / ranks.sum()
    return row


def drift_schedule(
    pattern: str,
    n_steps: int,
    n_classes: int,
    n_items: int,
    rng: RngLike = None,
    zipf_exponent: float = 1.2,
    flip_at: Optional[int] = None,
    burst_every: Optional[int] = None,
    burst_factor: float = 4.0,
) -> list[DriftStep]:
    """The per-step generating laws of one drift pattern.

    ``flip_at`` (pattern ``"flip"``) defaults to the stream midpoint;
    ``burst_every`` (pattern ``"burst"``) to ``max(3, n_steps // 4)``
    with each burst lasting one step and multiplying arrivals by
    ``burst_factor``.
    """
    if pattern not in DRIFT_PATTERNS:
        raise DomainError(
            f"pattern must be one of {DRIFT_PATTERNS}, got {pattern!r}"
        )
    if n_steps < 2:
        raise DomainError(f"n_steps must be >= 2, got {n_steps}")
    if n_classes < 1 or n_items < 2:
        raise DomainError(
            f"need n_classes >= 1 and n_items >= 2, got {n_classes}/{n_items}"
        )
    if burst_factor <= 1.0:
        raise DomainError(f"burst_factor must be > 1, got {burst_factor!r}")
    rng = ensure_rng(rng)
    uniform_mix = np.full(n_classes, 1.0 / n_classes)
    base = np.stack(
        [_zipf_row(n_items, zipf_exponent, rng) for _ in range(n_classes)]
    )
    steps: list[DriftStep] = []
    if pattern == "ramp":
        target = np.stack(
            [_zipf_row(n_items, zipf_exponent, rng) for _ in range(n_classes)]
        )
        for t in range(n_steps):
            u = t / (n_steps - 1)
            steps.append(
                DriftStep(
                    class_probs=uniform_mix.copy(),
                    item_probs=(1.0 - u) * base + u * target,
                    volume=1.0,
                )
            )
    elif pattern == "flip":
        flip_at = n_steps // 2 if flip_at is None else int(flip_at)
        if not 1 <= flip_at < n_steps:
            raise DomainError(
                f"flip_at must be in [1, n_steps), got {flip_at}"
            )
        weights = 2.0 ** -np.arange(n_classes, dtype=np.float64)
        before = weights / weights.sum()
        after = before[::-1].copy()
        for t in range(n_steps):
            mix = before if t < flip_at else after
            steps.append(
                DriftStep(
                    class_probs=mix.copy(),
                    item_probs=base.copy(),
                    volume=1.0,
                )
            )
    else:  # burst
        burst_every = (
            max(3, n_steps // 4) if burst_every is None else int(burst_every)
        )
        if burst_every < 2:
            raise DomainError(
                f"burst_every must be >= 2, got {burst_every}"
            )
        for t in range(n_steps):
            bursting = t > 0 and t % burst_every == 0
            if not bursting:
                steps.append(
                    DriftStep(
                        class_probs=uniform_mix.copy(),
                        item_probs=base.copy(),
                        volume=1.0,
                    )
                )
                continue
            burst_label = (t // burst_every - 1) % n_classes
            burst_item = int(rng.integers(0, n_items))
            mix = 0.5 * uniform_mix.copy()
            mix[burst_label] += 0.5
            item_probs = base.copy()
            item_probs[burst_label] = 0.4 * base[burst_label]
            item_probs[burst_label, burst_item] += 0.6
            steps.append(
                DriftStep(
                    class_probs=mix,
                    item_probs=item_probs,
                    volume=float(burst_factor),
                )
            )
    return steps


def drift_stream(
    pattern: str,
    n_steps: int = 32,
    reports_per_step: int = 4096,
    n_classes: int = 4,
    n_items: int = 256,
    step_seconds: float = 1.0,
    rng: RngLike = None,
    **schedule_kwargs,
):
    """Yield timestamped :class:`DriftBatch` report batches following one
    of the :data:`DRIFT_PATTERNS`.

    Each step draws ``round(reports_per_step * volume)`` reports from the
    step's law: labels from the class mix, items from the label's item
    pmf, arrival times sorted uniform within the step's
    ``step_seconds``-long interval.  The batch carries its generating
    :class:`DriftStep` so consumers can score estimates against the
    instantaneous truth.
    """
    if reports_per_step < 1:
        raise DomainError(
            f"reports_per_step must be >= 1, got {reports_per_step}"
        )
    if step_seconds <= 0:
        raise DomainError(f"step_seconds must be > 0, got {step_seconds!r}")
    rng = ensure_rng(rng)
    schedule = drift_schedule(
        pattern, n_steps, n_classes, n_items, rng=rng, **schedule_kwargs
    )
    for t, truth in enumerate(schedule):
        n = max(1, int(round(reports_per_step * truth.volume)))
        labels = rng.choice(n_classes, size=n, p=truth.class_probs)
        items = np.empty(n, dtype=np.int64)
        for label in range(n_classes):
            mask = labels == label
            count = int(mask.sum())
            if count:
                items[mask] = rng.choice(
                    n_items, size=count, p=truth.item_probs[label]
                )
        start = t * float(step_seconds)
        timestamps = start + np.sort(rng.random(n)) * float(step_seconds)
        yield DriftBatch(
            step=t,
            time=start,
            timestamps=timestamps,
            labels=labels.astype(np.int64),
            items=items,
            truth=truth,
        )
