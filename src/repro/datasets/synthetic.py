"""Synthetic dataset generators (paper Section VII-A).

Four families, mirroring the paper:

* :func:`syn1` — variance analysis with controlled correlation strength:
  4 classes x 4 items arranged as a Latin square of the pair counts
  ``{10^3, 10^4, 10^5, 10^6}``, so every class size and every global item
  count equals ``1.111e6`` while individual pair frequencies (and hence
  PMI) vary over three orders of magnitude.
* :func:`syn2` — variance analysis with varying class amount ``n``: one
  probe item has the fixed pair count ``10^4`` in every class while class
  sizes sweep ``{1.3e4, 2.11e5, 1.21e6, 3.01e6}``.
* :func:`syn3` / :func:`syn4` — top-k sweeps over the number of classes:
  20,000 items, five million instances (scalable), class sizes drawn from
  a normal distribution, per-class item popularity exponential with scale
  in ``[0.01, 0.1]``.  SYN3 plants globally frequent items (on average
  eight shared among any two classes' top-20); SYN4 gives every class a
  disjoint head.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import DomainError
from ..rng import RngLike, ensure_rng
from .base import LabelItemDataset

#: Pair counts cycled through SYN1's Latin square.
SYN1_PAIR_COUNTS: tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)

#: Class sizes swept by SYN2.
SYN2_CLASS_SIZES: tuple[int, ...] = (13_000, 211_000, 1_210_000, 3_010_000)

#: SYN2's fixed probe-item pair count.
SYN2_PROBE_COUNT: int = 10_000


def syn1(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """SYN1: Latin square of pair counts for the PMI/variance study.

    ``scale`` shrinks every count proportionally (floor 1) so tests can
    run the same shape cheaply.  Cell ``(c, i)`` holds
    ``SYN1_PAIR_COUNTS[(i + c) % 4]`` users.
    """
    rng = ensure_rng(rng)
    base = np.asarray(SYN1_PAIR_COUNTS, dtype=np.float64)
    counts = np.empty((4, 4), dtype=np.int64)
    for label in range(4):
        counts[label] = np.maximum(1, np.round(np.roll(base, -label) * scale)).astype(
            np.int64
        )
    return LabelItemDataset.from_pair_counts(counts, name="SYN1", rng=rng)


def syn2(scale: float = 1.0, rng: RngLike = None) -> LabelItemDataset:
    """SYN2: fixed probe-item count, class sizes spanning two decades.

    Item 0 holds exactly ``SYN2_PROBE_COUNT * scale`` users in every
    class; the remainder of each class is spread evenly over items 1-3.
    """
    rng = ensure_rng(rng)
    probe = max(1, int(round(SYN2_PROBE_COUNT * scale)))
    counts = np.zeros((4, 4), dtype=np.int64)
    for label, class_size in enumerate(SYN2_CLASS_SIZES):
        size = max(probe + 3, int(round(class_size * scale)))
        counts[label, 0] = probe
        rest = size - probe
        counts[label, 1:] = rest // 3
        counts[label, 1] += rest - 3 * (rest // 3)
    return LabelItemDataset.from_pair_counts(counts, name="SYN2", rng=rng)


def _exponential_rank_probabilities(
    n_items: int, exp_scale: float
) -> np.ndarray:
    """Item-rank pmf ``P(r) ∝ exp(-r / (scale * d))``.

    ``exp_scale`` is the paper's exponential scale in ``[0.01, 0.1]``;
    smaller values concentrate more mass in the head.
    """
    if not 0.0 < exp_scale:
        raise DomainError(f"exponential scale must be positive, got {exp_scale}")
    ranks = np.arange(n_items, dtype=np.float64)
    weights = np.exp(-ranks / (exp_scale * n_items))
    return weights / weights.sum()


def _normal_class_sizes(
    n_users: int, n_classes: int, rng: np.random.Generator, spread: float = 0.25
) -> np.ndarray:
    """Class sizes ~ Normal(N/c, spread * N/c), clipped and renormalised."""
    mean = n_users / n_classes
    sizes = rng.normal(mean, spread * mean, size=n_classes)
    sizes = np.clip(sizes, mean * 0.1, None)
    sizes = np.round(sizes / sizes.sum() * n_users).astype(np.int64)
    sizes[-1] += n_users - sizes.sum()
    if (sizes <= 0).any():
        raise DomainError("class-size sampling produced an empty class; increase N")
    return sizes


def _rank_to_item_maps(
    n_classes: int,
    n_items: int,
    shared_head: int,
    head_window: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-class permutations mapping popularity rank -> item id.

    ``shared_head`` globally frequent items are placed at ranks drawn
    uniformly from each class's top ``head_window`` ranks, yielding an
    expected overlap of ``shared_head`` among any two classes' top-
    ``head_window`` items (paper: 8 among top 20).  The remaining ranks
    are filled with a per-class permutation of the other items.
    """
    if shared_head > head_window:
        raise DomainError(
            f"shared_head ({shared_head}) cannot exceed head_window ({head_window})"
        )
    if head_window > n_items:
        raise DomainError("head_window larger than the item domain")
    maps = np.empty((n_classes, n_items), dtype=np.int64)
    # The globally frequent items get arbitrary (random) ids, shared by
    # every class — contiguous ids would cluster them into one prefix
    # subtree and mask PEM's structural weakness.
    global_items = rng.choice(n_items, size=shared_head, replace=False)
    non_global = np.setdiff1d(np.arange(n_items), global_items)
    for label in range(n_classes):
        own_items = rng.permutation(non_global)
        ranks = np.empty(n_items, dtype=np.int64)
        head_positions = rng.choice(head_window, size=shared_head, replace=False)
        mask = np.zeros(n_items, dtype=bool)
        mask[head_positions] = True
        ranks[head_positions] = rng.permutation(global_items)
        ranks[~mask] = own_items
        maps[label] = ranks
    return maps


def exponential_multiclass(
    n_users: int,
    n_classes: int,
    n_items: int,
    exp_scales: Sequence[float],
    class_sizes: Optional[Sequence[int]] = None,
    shared_head: int = 0,
    head_window: int = 20,
    name: str = "exponential",
    rng: RngLike = None,
) -> LabelItemDataset:
    """Exponential-popularity generator (the paper's synthetic family).

    Per class ``c`` the item at popularity rank ``r`` has probability
    ``∝ exp(-r / (exp_scales[c] * d))``; rank-to-item-id maps are random
    permutations with an optional shared global head (see
    :func:`_rank_to_item_maps`).  The exponential head is nearly flat
    (adjacent ranks differ by a factor ``exp(-1/(s d))``), which is what
    makes top-k identification genuinely hard under LDP noise — the
    regime the paper's evaluation operates in.
    """
    rng = ensure_rng(rng)
    if n_classes < 1:
        raise DomainError("need at least one class")
    scales = np.asarray(list(exp_scales), dtype=np.float64)
    if scales.shape != (n_classes,):
        raise DomainError(f"need one exponential scale per class, got {scales.shape}")
    if class_sizes is None:
        sizes = np.full(n_classes, n_users // n_classes, dtype=np.int64)
        sizes[: n_users % n_classes] += 1
    else:
        sizes = np.asarray(class_sizes, dtype=np.int64)
        if sizes.shape != (n_classes,):
            raise DomainError(f"class_sizes must have length {n_classes}")
        if int(sizes.sum()) != n_users:
            raise DomainError("class_sizes must sum to n_users")
    rank_maps = _rank_to_item_maps(n_classes, n_items, shared_head, head_window, rng)
    counts = np.zeros((n_classes, n_items), dtype=np.int64)
    for label in range(n_classes):
        probs = _exponential_rank_probabilities(n_items, float(scales[label]))
        rank_counts = rng.multinomial(int(sizes[label]), probs)
        counts[label, rank_maps[label]] = rank_counts
    return LabelItemDataset.from_pair_counts(counts, name=name, rng=rng)


def _skewed_multiclass(
    name: str,
    n_users: int,
    n_classes: int,
    n_items: int,
    shared_head: int,
    rng: np.random.Generator,
    head_window: int = 20,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """Common SYN3/SYN4 machinery."""
    if n_classes < 2:
        raise DomainError("need at least two classes")
    class_sizes = _normal_class_sizes(n_users, n_classes, rng)
    scales = np.linspace(scale_range[0], scale_range[1], n_classes)
    return exponential_multiclass(
        n_users=int(class_sizes.sum()),
        n_classes=n_classes,
        n_items=n_items,
        exp_scales=scales,
        class_sizes=class_sizes,
        shared_head=shared_head,
        head_window=head_window,
        name=name,
        rng=rng,
    )


def syn3(
    n_classes: int = 10,
    n_users: int = 5_000_000,
    n_items: int = 20_000,
    rng: RngLike = None,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """SYN3: class-count sweep **with** globally frequent items.

    On average eight of the top-20 items are shared between any two
    classes, mimicking the cross-class head overlap the paper observed in
    real data.
    """
    rng = ensure_rng(rng)
    return _skewed_multiclass(
        name=f"SYN3(c={n_classes})",
        n_users=n_users,
        n_classes=n_classes,
        n_items=n_items,
        shared_head=8,
        rng=rng,
        scale_range=scale_range,
    )


def syn4(
    n_classes: int = 10,
    n_users: int = 5_000_000,
    n_items: int = 20_000,
    rng: RngLike = None,
    scale_range: tuple[float, float] = (0.01, 0.1),
) -> LabelItemDataset:
    """SYN4: same construction as SYN3 but with disjoint class heads."""
    rng = ensure_rng(rng)
    return _skewed_multiclass(
        name=f"SYN4(c={n_classes})",
        n_users=n_users,
        n_classes=n_classes,
        n_items=n_items,
        shared_head=0,
        rng=rng,
        scale_range=scale_range,
    )


def zipf_multiclass(
    n_users: int,
    n_classes: int,
    n_items: int,
    zipf_s: float = 1.2,
    class_sizes: Optional[Sequence[int]] = None,
    shared_head: int = 0,
    head_window: int = 20,
    name: str = "zipf",
    rng: RngLike = None,
) -> LabelItemDataset:
    """General Zipf-popularity generator used by examples and tests.

    ``P(rank r) ∝ (r + 1)^{-s}``; per-class rank-to-item maps follow the
    same shared-head construction as SYN3/SYN4.
    """
    rng = ensure_rng(rng)
    if class_sizes is None:
        sizes = np.full(n_classes, n_users // n_classes, dtype=np.int64)
        sizes[: n_users % n_classes] += 1
    else:
        sizes = np.asarray(class_sizes, dtype=np.int64)
        if sizes.shape != (n_classes,):
            raise DomainError(f"class_sizes must have length {n_classes}")
        if int(sizes.sum()) != n_users:
            raise DomainError("class_sizes must sum to n_users")
    ranks = np.arange(n_items, dtype=np.float64) + 1.0
    probs = ranks**-zipf_s
    probs /= probs.sum()
    rank_maps = _rank_to_item_maps(n_classes, n_items, shared_head, head_window, rng)
    counts = np.zeros((n_classes, n_items), dtype=np.int64)
    for label in range(n_classes):
        rank_counts = rng.multinomial(int(sizes[label]), probs)
        counts[label, rank_maps[label]] = rank_counts
    return LabelItemDataset.from_pair_counts(counts, name=name, rng=rng)
