"""The label-item dataset container.

Every framework and scheme in the library consumes a
:class:`LabelItemDataset`: ``N`` users, each holding one label in
``[0, c)`` and one item in ``[0, d)``.  The container pre-computes the
``(c, d)`` pair-count matrix (the sufficient statistic every exact
simulation path needs) and offers ground-truth queries used by the
evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

import numpy as np

from ..exceptions import DomainError


@dataclass
class LabelItemDataset:
    """``N`` users' label-item pairs over fixed finite domains.

    Parameters
    ----------
    labels, items:
        Integer arrays of equal length; entry ``u`` is user ``u``'s pair.
    n_classes, n_items:
        Domain sizes ``c`` and ``d``.  May exceed the maxima observed in
        the data (domains are declared, not inferred).
    name:
        Optional human-readable tag used in reports.
    """

    labels: np.ndarray
    items: np.ndarray
    n_classes: int
    n_items: int
    name: str = "dataset"
    _pair_counts: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64).ravel()
        self.items = np.asarray(self.items, dtype=np.int64).ravel()
        if self.labels.shape != self.items.shape:
            raise DomainError(
                f"labels ({self.labels.shape}) and items ({self.items.shape}) "
                "must have the same length"
            )
        if self.n_classes < 1 or self.n_items < 1:
            raise DomainError("domains must be non-empty")
        if self.labels.size:
            if self.labels.min() < 0 or self.labels.max() >= self.n_classes:
                raise DomainError(
                    f"labels outside [0, {self.n_classes}): "
                    f"range [{self.labels.min()}, {self.labels.max()}]"
                )
            if self.items.min() < 0 or self.items.max() >= self.n_items:
                raise DomainError(
                    f"items outside [0, {self.n_items}): "
                    f"range [{self.items.min()}, {self.items.max()}]"
                )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[Hashable, Hashable]],
        name: str = "dataset",
    ) -> "LabelItemDataset":
        """Build a dataset from raw (label, item) pairs of any hashable
        values, assigning dense integer ids in first-seen order."""
        label_ids: dict[Hashable, int] = {}
        item_ids: dict[Hashable, int] = {}
        labels: list[int] = []
        items: list[int] = []
        for label, item in pairs:
            labels.append(label_ids.setdefault(label, len(label_ids)))
            items.append(item_ids.setdefault(item, len(item_ids)))
        if not labels:
            raise DomainError("cannot build a dataset from zero pairs")
        return cls(
            labels=np.asarray(labels),
            items=np.asarray(items),
            n_classes=len(label_ids),
            n_items=len(item_ids),
            name=name,
        )

    @classmethod
    def from_pair_counts(
        cls,
        pair_counts: np.ndarray,
        name: str = "dataset",
        rng: Optional[np.random.Generator] = None,
    ) -> "LabelItemDataset":
        """Materialise per-user arrays from a ``(c, d)`` count matrix.

        User order is shuffled when ``rng`` is given (useful before user
        partition); otherwise users are laid out in row-major block order.
        """
        counts = np.asarray(pair_counts, dtype=np.int64)
        if counts.ndim != 2:
            raise DomainError(f"pair_counts must be 2-D, got shape {counts.shape}")
        if (counts < 0).any():
            raise DomainError("pair counts must be non-negative")
        c, d = counts.shape
        flat = counts.ravel()
        pair_index = np.repeat(np.arange(flat.size), flat)
        if rng is not None:
            rng.shuffle(pair_index)
        labels, items = np.divmod(pair_index, d)
        dataset = cls(labels=labels, items=items, n_classes=c, n_items=d, name=name)
        dataset._pair_counts = counts.copy()
        return dataset

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of users ``N``."""
        return int(self.labels.size)

    def pair_counts(self) -> np.ndarray:
        """``(c, d)`` matrix of true pair counts ``f(C, I)`` (cached)."""
        if self._pair_counts is None:
            flat = self.labels * self.n_items + self.items
            counts = np.bincount(flat, minlength=self.n_classes * self.n_items)
            self._pair_counts = counts.reshape(self.n_classes, self.n_items)
        return self._pair_counts

    def class_counts(self) -> np.ndarray:
        """``(c,)`` true class sizes ``n_C``."""
        return self.pair_counts().sum(axis=1)

    def item_counts(self) -> np.ndarray:
        """``(d,)`` true global item counts ``f(I)``."""
        return self.pair_counts().sum(axis=0)

    def true_topk(self, k: int) -> dict[int, list[int]]:
        """Ground-truth top-``k`` item ids per class, most frequent first.

        Ties break toward the smaller item id (stable, deterministic).
        """
        if k < 1:
            raise DomainError(f"k must be >= 1, got {k}")
        counts = self.pair_counts()
        result: dict[int, list[int]] = {}
        for label in range(self.n_classes):
            order = np.lexsort((np.arange(self.n_items), -counts[label]))
            result[label] = [int(i) for i in order[:k]]
        return result

    # ------------------------------------------------------------------
    # restructuring
    # ------------------------------------------------------------------
    def shuffled(self, rng: np.random.Generator) -> "LabelItemDataset":
        """Return a copy with user order randomly permuted."""
        order = rng.permutation(self.n_users)
        out = LabelItemDataset(
            labels=self.labels[order],
            items=self.items[order],
            n_classes=self.n_classes,
            n_items=self.n_items,
            name=self.name,
        )
        out._pair_counts = self._pair_counts
        return out

    def split(self, fractions: Sequence[float], rng: np.random.Generator) -> list["LabelItemDataset"]:
        """Randomly partition users into ``len(fractions)`` disjoint parts.

        ``fractions`` must sum to (approximately) one; sizes are rounded
        with the remainder going to the last part.
        """
        total = float(sum(fractions))
        if not 0.999 <= total <= 1.001:
            raise DomainError(f"fractions must sum to 1, got {total}")
        order = rng.permutation(self.n_users)
        sizes = [int(round(f * self.n_users)) for f in fractions[:-1]]
        sizes.append(self.n_users - sum(sizes))
        if min(sizes) < 0:
            raise DomainError(f"rounded split produced a negative part: {sizes}")
        parts = []
        start = 0
        for size in sizes:
            index = order[start : start + size]
            parts.append(
                LabelItemDataset(
                    labels=self.labels[index],
                    items=self.items[index],
                    n_classes=self.n_classes,
                    n_items=self.n_items,
                    name=self.name,
                )
            )
            start += size
        return parts

    def subset(self, index: np.ndarray) -> "LabelItemDataset":
        """Dataset restricted to the users selected by ``index``."""
        return LabelItemDataset(
            labels=self.labels[index],
            items=self.items[index],
            n_classes=self.n_classes,
            n_items=self.n_items,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelItemDataset(name={self.name!r}, n_users={self.n_users}, "
            f"n_classes={self.n_classes}, n_items={self.n_items})"
        )
