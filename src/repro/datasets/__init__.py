"""Datasets: the container type plus the paper's six workloads.

Real Kaggle data is unavailable offline; :mod:`repro.datasets.realworld`
provides matched synthetic stand-ins (see DESIGN.md Section 2), and
:mod:`repro.datasets.loaders` can ingest the originals if you have them.
"""

from .base import LabelItemDataset
from .loaders import load_pairs_csv
from .realworld import (
    ANIME_N_ITEMS,
    ANIME_N_USERS,
    JD_CLASS_SIZES,
    JD_N_ITEMS,
    FeatureStudy,
    anime_like,
    diabetes_like,
    heart_disease_like,
    jd_like,
)
from .synthetic import (
    DRIFT_PATTERNS,
    SYN1_PAIR_COUNTS,
    SYN2_CLASS_SIZES,
    SYN2_PROBE_COUNT,
    DriftBatch,
    DriftStep,
    drift_schedule,
    drift_stream,
    syn1,
    syn2,
    syn3,
    syn4,
    zipf_multiclass,
)

__all__ = [
    "ANIME_N_ITEMS",
    "ANIME_N_USERS",
    "DRIFT_PATTERNS",
    "DriftBatch",
    "DriftStep",
    "FeatureStudy",
    "JD_CLASS_SIZES",
    "JD_N_ITEMS",
    "LabelItemDataset",
    "SYN1_PAIR_COUNTS",
    "SYN2_CLASS_SIZES",
    "SYN2_PROBE_COUNT",
    "anime_like",
    "diabetes_like",
    "drift_schedule",
    "drift_stream",
    "heart_disease_like",
    "jd_like",
    "load_pairs_csv",
    "syn1",
    "syn2",
    "syn3",
    "syn4",
    "zipf_multiclass",
]
