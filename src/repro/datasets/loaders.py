"""Loading label-item pairs from delimited text files.

If you have the paper's original Kaggle CSVs (or any two-column
label,item export), these helpers turn them into
:class:`~repro.datasets.base.LabelItemDataset` objects so every framework
and bench in this repository runs on the real data unchanged.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

from ..exceptions import DomainError
from .base import LabelItemDataset


def load_pairs_csv(
    path: Union[str, Path],
    label_column: Union[int, str] = 0,
    item_column: Union[int, str] = 1,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
    max_rows: Optional[int] = None,
    name: Optional[str] = None,
) -> LabelItemDataset:
    """Read ``(label, item)`` pairs from a delimited file.

    Columns may be given by index or, when the file has a header row, by
    name.  ``has_header=None`` auto-detects: string column selectors imply
    a header; integer selectors imply none.
    """
    path = Path(path)
    if has_header is None:
        has_header = isinstance(label_column, str) or isinstance(item_column, str)

    pairs: list[tuple[str, str]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header: Optional[list[str]] = None
        if has_header:
            header = next(reader, None)
            if header is None:
                raise DomainError(f"{path} is empty")
        label_index = _resolve_column(label_column, header, path)
        item_index = _resolve_column(item_column, header, path)
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if not row:
                continue
            try:
                pairs.append((row[label_index], row[item_index]))
            except IndexError as exc:
                raise DomainError(
                    f"{path}:{row_number + 1} has {len(row)} columns; "
                    f"need indexes {label_index} and {item_index}"
                ) from exc
    if not pairs:
        raise DomainError(f"{path} produced no label-item pairs")
    return LabelItemDataset.from_pairs(pairs, name=name or path.stem)


def _resolve_column(
    selector: Union[int, str], header: Optional[list[str]], path: Path
) -> int:
    """Turn a column selector into a positional index."""
    if isinstance(selector, int):
        return selector
    if header is None:
        raise DomainError(
            f"column {selector!r} requested by name but {path} has no header"
        )
    try:
        return header.index(selector)
    except ValueError as exc:
        raise DomainError(
            f"column {selector!r} not found in {path} header {header}"
        ) from exc
