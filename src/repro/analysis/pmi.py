"""Pointwise mutual information between labels and items.

The paper (Section V-C) quantifies label-item correlation strength with
``PMI(C; I) = log2[ p(C, I) / (p(C) p(I)) ]`` and shows that, with fixed
marginals, ``PMI ∝ f(C, I)`` — yet the estimator variance is dominated by
the class amount ``n`` and population ``N``, which Fig. 5(a) confirms
empirically.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DomainError


def pmi_matrix(pair_counts: np.ndarray) -> np.ndarray:
    """``(c, d)`` PMI values from a pair-count matrix.

    Cells with zero count (or zero marginal) get ``-inf``, the correct
    limit of ``log2 0``.
    """
    counts = np.asarray(pair_counts, dtype=np.float64)
    if counts.ndim != 2:
        raise DomainError(f"pair_counts must be 2-D, got shape {counts.shape}")
    total = counts.sum()
    if total <= 0:
        raise DomainError("pair counts sum to zero")
    joint = counts / total
    label_marginal = joint.sum(axis=1, keepdims=True)
    item_marginal = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (label_marginal * item_marginal)
        out = np.where(joint > 0, np.log2(np.where(ratio > 0, ratio, 1.0)), -np.inf)
    return out


def pmi(pair_counts: np.ndarray, label: int, item: int) -> float:
    """PMI of one ``(label, item)`` cell."""
    matrix = pmi_matrix(pair_counts)
    if not 0 <= label < matrix.shape[0]:
        raise DomainError(f"label {label} outside [0, {matrix.shape[0]})")
    if not 0 <= item < matrix.shape[1]:
        raise DomainError(f"item {item} outside [0, {matrix.shape[1]})")
    return float(matrix[label, item])
