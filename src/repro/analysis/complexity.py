"""Cost model for the paper's Table II (complexity analysis).

The table reports per-user communication, time, and space for the PEM-based
frameworks (HEC/PTS, PTJ) and the optimized schemes (PTJ†, PTS†), with the
user-side figure on the first line of each row and the server-side figure on
the second.  Symbols: ``c`` classes, ``d`` items, ``N`` users, ``k`` mined
items, ``m`` the PEM extension length.

These closed forms are evaluated here so the Table II bench can print the
same rows with concrete numbers, alongside *measured* per-user report sizes
from the implementations (which match the model's leading terms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import DomainError


@dataclass(frozen=True)
class CostRow:
    """One Table II row: user-side and server-side asymptotic costs."""

    method: str
    user_communication: float
    server_communication: float
    user_time: float
    server_time: float
    user_space: float
    server_space: float


def _check(c: int, d: int, n: int, k: int, m: int) -> None:
    if min(c, d, n, k, m) < 1:
        raise DomainError("all of c, d, N, k, m must be >= 1")


def hec_pts_pem_costs(c: int, d: int, n: int, k: int, m: int = 1) -> CostRow:
    """HEC / PTS row: PEM mining per class.

    User: ``O(2^m k log d)`` communication/space, ``O(2^m k)`` time.
    Server: ``O(2^m k [c (m + log k) log(d)/m + N])`` time,
    ``O(2^m c k log d)`` space.
    """
    _check(c, d, n, k, m)
    report = (1 << m) * k
    log_d = max(1.0, math.log2(d))
    log_k = max(1.0, math.log2(k))
    return CostRow(
        method="HEC/PTS (PEM)",
        user_communication=report * log_d,
        server_communication=report * c * log_d,
        user_time=report,
        server_time=report * (c * (m + log_k) * log_d / m + n),
        user_space=report * log_d,
        server_space=report * c * log_d,
    )


def ptj_pem_costs(c: int, d: int, n: int, k: int, m: int = 1) -> CostRow:
    """PTJ row: PEM over the joint ``c x d`` domain.

    User: ``O(2^m c k log(cd))``; server time
    ``O(2^m c k [(m + log(ck)) log(cd)/m + N])``.
    """
    _check(c, d, n, k, m)
    report = (1 << m) * c * k
    log_cd = max(1.0, math.log2(c * d))
    log_ck = max(1.0, math.log2(c * k))
    return CostRow(
        method="PTJ (PEM)",
        user_communication=report * log_cd,
        server_communication=report * log_cd,
        user_time=report,
        server_time=report * ((m + log_ck) * log_cd / m + n),
        user_space=report * log_cd,
        server_space=report * log_cd,
    )


def ptj_optimized_costs(c: int, d: int, n: int, k: int) -> CostRow:
    """PTJ† row: joint shuffled buckets + validity perturbation.

    User: ``O(ck)`` (the joint bucket report); server time
    ``O(ck (log(ck) log(d/k) + N))``; space ``O(cd)`` for the per-class
    candidate sets.
    """
    _check(c, d, n, k, 1)
    report = c * k
    log_ck = max(1.0, math.log2(c * k))
    log_dk = max(1.0, math.log2(max(2.0, d / k)))
    return CostRow(
        method="PTJ† (Shuffling+VP)",
        user_communication=report,
        server_communication=report,
        user_time=report,
        server_time=report * (log_ck * log_dk + n),
        user_space=float(c * d),
        server_space=float(c * d),
    )


def pts_optimized_costs(c: int, d: int, n: int, k: int) -> CostRow:
    """PTS† row: Algorithm 1 + Algorithm 2 (buckets, VP, CP).

    User: ``O(ck)`` during candidate generation and ``O(k)`` per class
    afterwards (the table reports the dominant ``O(ck)``); user space is
    ``O(d)`` (one candidate set), server space ``O(cd)``.
    """
    _check(c, d, n, k, 1)
    report = c * k
    log_ck = max(1.0, math.log2(c * k))
    log_dk = max(1.0, math.log2(max(2.0, d / k)))
    return CostRow(
        method="PTS† (Shuffling+VP+CP)",
        user_communication=report,
        server_communication=report,
        user_time=report,
        server_time=report * (log_ck * log_dk + n),
        user_space=float(d),
        server_space=float(c * d),
    )


def table2_rows(c: int, d: int, n: int, k: int, m: int = 1) -> list[CostRow]:
    """All four Table II rows for a concrete parameterisation."""
    return [
        hec_pts_pem_costs(c, d, n, k, m),
        ptj_pem_costs(c, d, n, k, m),
        ptj_optimized_costs(c, d, n, k),
        pts_optimized_costs(c, d, n, k),
    ]


def measured_report_bits(c: int, d: int, k: int, epsilon: float = 4.0) -> dict[str, int]:
    """Measured per-user report sizes (bits) of the actual mechanisms.

    * PEM-based rows report over ``2k`` (per-class) or ``2ck`` (joint)
      unary-encoded values;
    * the optimized rows send one validity-perturbed bucket vector
      (``4k(+1)`` per class group, ``4ck(+1)`` joint) — independent of d.
    """
    _check(c, d, 1, k, 1)
    return {
        "HEC/PTS (PEM)": 2 * k + 1,
        "PTJ (PEM)": 2 * c * k + 1,
        "PTJ† (Shuffling+VP)": 4 * c * k + 1,
        "PTS† (Shuffling+VP+CP)": max(1, math.ceil(math.log2(c))) + 4 * k + 1,
    }
