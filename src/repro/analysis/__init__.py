"""Analysis utilities: PMI, closed-form theory tables, complexity model."""

from .pmi import pmi, pmi_matrix

__all__ = ["pmi", "pmi_matrix"]
