"""Health verdicts: turn live telemetry into pass/warn/fail with reasons.

The metrics plane reports raw counters; an operator (or a load balancer
probe) wants a *verdict*.  :class:`HealthPolicy` holds the thresholds,
:func:`evaluate_health` folds a collector's session stats and registry
snapshot into one machine-readable payload::

    {"status": "warn",
     "checks": [{"check": "ingest_lag", "session": "cohort",
                 "status": "warn", "value": 0.61,
                 "reason": "160083 pending of 262144 high water"}, ...],
     "schema": 1}

Checks cover per-session ingest lag (pending vs the backpressure high
water), backpressure stall time, drift-event rate, shard imbalance, and
flush/drain latency percentiles (computed from the registry's own bucket
counts — no extra instrumentation).  The overall ``status`` is the worst
individual check; every non-pass check carries its reason, so ``fail``
is always attributable.

:class:`HealthMonitor` adds the small amount of state rate checks need
(drift events are judged per evaluation window, not cumulatively) and is
what the collector's ``/healthz`` route and HEALTH wire query answer
from.  Everything else is pure functions over plain data, so tests and
offline tooling can evaluate recorded snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

#: Version of the health payload layout.
HEALTH_SCHEMA = 1

#: Verdicts, worst last.
VERDICTS = ("pass", "warn", "fail")

_RANK = {verdict: rank for rank, verdict in enumerate(VERDICTS)}


def worst(verdicts: Iterable[str]) -> str:
    """The most severe verdict of an iterable (``pass`` when empty)."""
    rank = 0
    for verdict in verdicts:
        rank = max(rank, _RANK.get(verdict, 0))
    return VERDICTS[rank]


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds separating pass from warn from fail.

    ``*_warn`` crossing yields ``warn``; ``*_fail`` crossing yields
    ``fail``.  Set a pair to ``None`` to disable that check entirely.
    """

    #: Ingest lag as a fraction of the session's backpressure high water.
    lag_warn: Optional[float] = 0.5
    lag_fail: Optional[float] = 1.0
    #: Seconds a session has spent stalled in backpressure (cumulative
    #: plus any stall in progress).
    stall_warn: Optional[float] = 1.0
    stall_fail: Optional[float] = 30.0
    #: Drift events flagged since the previous evaluation.
    drift_warn: Optional[int] = 1
    drift_fail: Optional[int] = 10
    #: Shard imbalance in batches (max - min across shards).
    imbalance_warn: Optional[float] = 64
    imbalance_fail: Optional[float] = 1024
    #: Flush/drain latency percentile bound in seconds.
    flush_quantile: float = 0.99
    flush_warn: Optional[float] = 1.0
    flush_fail: Optional[float] = 10.0

    def grade(
        self, value: float, warn: Optional[float], fail: Optional[float]
    ) -> str:
        if fail is not None and value >= fail:
            return "fail"
        if warn is not None and value >= warn:
            return "warn"
        return "pass"


def histogram_quantile(state: dict, q: float) -> float:
    """A quantile estimate from a snapshot histogram's bucket counts.

    Linear interpolation inside the winning bucket (Prometheus
    ``histogram_quantile`` semantics); observations in the overflow
    bucket clamp to the last finite edge.  Returns 0.0 for an empty
    histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    edges, counts = state["edges"], state["counts"]
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    lower = 0.0
    for edge, count in zip(edges, counts):
        if cumulative + count >= target and count > 0:
            if edge == float("inf"):
                return float(lower)
            fraction = (target - cumulative) / count
            return lower + (edge - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += count
        lower = edge
    return float(lower)


def _parse_series(key: str) -> tuple[str, dict]:
    """``(family, labels)`` of a snapshot series key.

    The inverse of :func:`repro.obs.metrics.series_key` for the label
    shapes this library emits (no embedded commas/quotes in values
    beyond the escaping that function applies).
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    family, body = key[:brace], key[brace + 1 : -1]
    labels = {}
    for part in body.split(","):
        if "=" not in part:
            continue
        name, _, value = part.partition("=")
        value = value.strip('"')
        labels[name] = (
            value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
    return family, labels


def _check(
    check: str,
    status: str,
    value: float,
    reason: str,
    session: Optional[str] = None,
) -> dict:
    entry = {
        "check": check,
        "status": status,
        "value": value,
        "reason": reason,
    }
    if session is not None:
        entry["session"] = session
    return entry


def evaluate_health(
    sessions: Iterable[dict],
    snapshot: Optional[dict] = None,
    policy: Optional[HealthPolicy] = None,
    drift_baseline: Optional[dict] = None,
) -> dict:
    """One health payload from per-session ingest stats and a registry cut.

    ``sessions`` are :meth:`repro.serve.registry.HostedSession.ingest_stats`
    payloads (or anything shaped like them); ``snapshot`` is a metrics
    registry snapshot supplying the drift counters, imbalance gauge, and
    flush latency histograms.  ``drift_baseline`` maps session id to the
    drift-event count already judged (the :class:`HealthMonitor` window
    state); cumulative counts are used when absent.
    """
    policy = policy or HealthPolicy()
    snapshot = snapshot or {}
    drift_baseline = drift_baseline or {}
    checks: list[dict] = []

    for stats in sessions:
        session = str(stats.get("session", "?"))
        high_water = int(stats.get("high_water", 0) or 0)
        pending = int(stats.get("pending", 0) or 0)
        if high_water > 0:
            fraction = pending / high_water
            checks.append(
                _check(
                    "ingest_lag",
                    policy.grade(fraction, policy.lag_warn, policy.lag_fail),
                    round(fraction, 4),
                    f"{pending} pending of {high_water} high water",
                    session=session,
                )
            )
        stall = float(stats.get("stall_seconds", 0.0) or 0.0)
        checks.append(
            _check(
                "backpressure_stall",
                policy.grade(stall, policy.stall_warn, policy.stall_fail),
                round(stall, 4),
                f"{stall:.3f}s stalled in backpressure"
                + (" (stall in progress)" if stats.get("stalled") else ""),
                session=session,
            )
        )

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    for key, value in counters.items():
        family, labels = _parse_series(key)
        if family != "serve_drift_events_total":
            continue
        session = labels.get("session", "?")
        fresh = int(value) - int(drift_baseline.get(session, 0))
        checks.append(
            _check(
                "drift_rate",
                policy.grade(fresh, policy.drift_warn, policy.drift_fail),
                fresh,
                f"{fresh} drift event(s) this window "
                f"({int(value)} total)",
                session=session,
            )
        )

    imbalance = gauges.get("shard_imbalance_batches")
    if imbalance is not None:
        checks.append(
            _check(
                "shard_imbalance",
                policy.grade(
                    float(imbalance), policy.imbalance_warn, policy.imbalance_fail
                ),
                float(imbalance),
                f"max-min shard skew of {imbalance:g} batches",
            )
        )

    for key, state in histograms.items():
        family, labels = _parse_series(key)
        if family not in ("serve_flush_sort_seconds", "shard_drain_seconds"):
            continue
        if not sum(state.get("counts", ())):
            continue
        quantile = histogram_quantile(state, policy.flush_quantile)
        checks.append(
            _check(
                "flush_latency",
                policy.grade(quantile, policy.flush_warn, policy.flush_fail),
                round(quantile, 6),
                f"{family} p{int(policy.flush_quantile * 100)} "
                f"~{quantile:.4f}s",
                session=labels.get("session") or labels.get("executor"),
            )
        )

    return {
        "schema": HEALTH_SCHEMA,
        "status": worst(check["status"] for check in checks),
        "checks": checks,
    }


class HealthMonitor:
    """The stateful wrapper rate checks need.

    Keeps the drift-event counts already judged so each evaluation grades
    only the *new* events (a cohort that drifted once last week should
    not warn forever), and remembers the last verdict for cheap reads.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self._drift_seen: dict[str, int] = {}
        self.last: Optional[dict] = None

    def evaluate(
        self, sessions: Iterable[dict], snapshot: Optional[dict] = None
    ) -> dict:
        snapshot = snapshot or {}
        verdict = evaluate_health(
            sessions,
            snapshot,
            policy=self.policy,
            drift_baseline=self._drift_seen,
        )
        for key, value in snapshot.get("counters", {}).items():
            family, labels = _parse_series(key)
            if family == "serve_drift_events_total":
                self._drift_seen[labels.get("session", "?")] = int(value)
        self.last = verdict
        return verdict
