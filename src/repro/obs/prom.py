"""Prometheus text-format rendering of registry snapshots.

Renders the exposition format (``text/plain; version=0.0.4``) from one or
more :class:`~repro.obs.metrics.MetricsRegistry` snapshots: ``# TYPE``
headers per metric family, counters and gauges as plain samples, and
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``.  Snapshot keys are already Prometheus series
strings (see :func:`repro.obs.metrics.series_key`), so rendering is a
pure reformatting — the same function backs the ``/metrics`` HTTP
endpoint, the ``repro obs dump --format=prom`` CLI, and the snapshot
writer used by CI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .metrics import MetricsRegistry, merge_snapshots


def _family(series: str) -> str:
    """The metric family name of a series key (strip the label set)."""
    brace = series.find("{")
    return series if brace < 0 else series[:brace]


def _labels(series: str) -> str:
    """The raw ``k="v",...`` label body of a series key (may be empty)."""
    brace = series.find("{")
    return "" if brace < 0 else series[brace + 1 : -1]


def _with_label(series: str, extra: str) -> str:
    """Append one pre-escaped label pair to a series key's label set."""
    body = _labels(series)
    body = f"{body},{extra}" if body else extra
    return f"{_family(series)}{{{body}}}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_snapshot(snapshot: dict) -> str:
    """The Prometheus text exposition of one (possibly merged) snapshot."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for series, value in snapshot.get("counters", {}).items():
        type_line(_family(series), "counter")
        lines.append(f"{series} {_format_value(value)}")
    for series, value in snapshot.get("gauges", {}).items():
        type_line(_family(series), "gauge")
        lines.append(f"{series} {_format_value(value)}")
    for series, state in snapshot.get("histograms", {}).items():
        family = _family(series)
        type_line(family, "histogram")
        cumulative = 0
        for edge, count in zip(state["edges"], state["counts"]):
            cumulative += count
            bucket = _with_label(series, f'le="{_format_value(edge)}"')
            lines.append(f"{family}_bucket{bucket[len(family):]} {cumulative}")
        cumulative += state["counts"][-1]
        inf_bucket = _with_label(series, 'le="+Inf"')
        lines.append(f"{family}_bucket{inf_bucket[len(family):]} {cumulative}")
        label_body = _labels(series)
        suffix = f"{{{label_body}}}" if label_body else ""
        lines.append(f"{family}_sum{suffix} {_format_value(state['sum'])}")
        lines.append(f"{family}_count{suffix} {state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render(*registries: MetricsRegistry) -> str:
    """Render the merged snapshot of one or more live registries."""
    return render_snapshot(
        merge_snapshots(registry.snapshot() for registry in registries)
    )


def write_snapshot(
    path: Union[str, Path], *registries: MetricsRegistry
) -> Path:
    """Write the merged Prometheus text of ``registries`` to ``path``."""
    path = Path(path)
    path.write_text(render(*registries))
    return path
