"""Structured JSON log records — the tracing half of the telemetry plane.

One process-wide :class:`JsonLogger` emits newline-delimited JSON
records, each carrying a timestamp, an event name, and whatever context
fields the call site attaches (session ids, connection ids, pending
depths).  Logging is *off by default*: until a sink is configured
(:func:`configure_logging`, or the ``REPRO_OBS_LOG`` environment
variable naming a file), :func:`log_event` is a single attribute check.

Records are written line-atomically under a lock, so interleaved worker
threads never corrupt the stream; every line is independently
parseable::

    {"ts": 1754500000.123456, "event": "serve.backpressure.pause",
     "session": "cohort", "pending": 270000}
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

Sink = Union[None, str, Path, io.TextIOBase]


class JsonLogger:
    """Newline-delimited JSON event log with an optional sink."""

    def __init__(self, sink: Sink = None) -> None:
        self._stream = None
        self._owns_stream = False
        self._lock = threading.Lock()
        if sink is not None:
            self.configure(sink)

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def configure(self, sink: Sink) -> "JsonLogger":
        """Point the logger at a file path or text stream (``None`` turns
        logging off again); returns the logger."""
        self.close()
        if sink is None:
            return self
        if isinstance(sink, (str, Path)):
            self._stream = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        return self

    def close(self) -> None:
        stream, owned = self._stream, self._owns_stream
        self._stream = None
        self._owns_stream = False
        if stream is not None and owned:
            stream.close()

    def event(self, event: str, **fields) -> None:
        """Emit one record; a no-op until a sink is configured."""
        stream = self._stream
        if stream is None:
            return
        record = {"ts": round(time.time(), 6), "event": str(event)}
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            stream.write(line + "\n")
            stream.flush()


#: The process-wide logger; a sink named by REPRO_OBS_LOG attaches here.
_LOGGER = JsonLogger(os.environ.get("REPRO_OBS_LOG") or None)


def get_logger() -> JsonLogger:
    """The process-wide structured logger."""
    return _LOGGER


def configure_logging(sink: Sink) -> JsonLogger:
    """Attach a sink (path or stream) to the process-wide logger."""
    return _LOGGER.configure(sink)


def log_event(event: str, **fields) -> None:
    """Emit one structured record through the process-wide logger."""
    _LOGGER.event(event, **fields)
