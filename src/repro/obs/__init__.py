"""Unified telemetry plane: metrics, spans, structured logs, exposition.

Dependency-free observability for the whole stack.  One process-wide
:class:`MetricsRegistry` holds counters, gauges, and fixed-bucket
histograms; instruments are no-ops while the registry is disabled (the
default — flip with ``REPRO_OBS=1``, :func:`enable`, or the
:class:`enabled` context manager).  :func:`span` times a block against a
histogram, :func:`log_event` emits newline-delimited JSON records, and
the :mod:`~repro.obs.prom` / :mod:`~repro.obs.http` modules render the
registry as Prometheus text (``repro obs dump``, ``/metrics``).
"""

from .log import JsonLogger, configure_logging, get_logger, log_event
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    disable,
    enable,
    enabled,
    get_registry,
    merge_snapshots,
    series_key,
    span,
)
from .prom import render, render_snapshot, write_snapshot
from .http import start_metrics_server

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "series_key",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "span",
    "merge_snapshots",
    "render",
    "render_snapshot",
    "write_snapshot",
    "start_metrics_server",
    "JsonLogger",
    "get_logger",
    "configure_logging",
    "log_event",
]
