"""Unified telemetry plane: metrics, spans, traces, health, exposition.

Dependency-free observability for the whole stack.  One process-wide
:class:`MetricsRegistry` holds counters, gauges, and fixed-bucket
histograms; instruments are no-ops while the registry is disabled (the
default — flip with ``REPRO_OBS=1``, :func:`enable`, or the
:class:`enabled` context manager).  :func:`span` times a block against a
histogram, :func:`log_event` emits newline-delimited JSON records, and
the :mod:`~repro.obs.prom` / :mod:`~repro.obs.http` modules render the
registry as Prometheus text (``repro obs dump``, ``/metrics``).

Two further planes build on the same switch:

* :mod:`~repro.obs.trace` — end-to-end request tracing: a
  :class:`TraceContext` propagated client → wire → collector → shard
  workers, completed spans in a bounded ring on the process
  :class:`Tracer`, exported as Chrome trace-event JSON
  (``repro-bench obs trace``, ``/traces``).
* :mod:`~repro.obs.health` — verdicts: :func:`evaluate_health` turns
  session ingest stats plus a registry snapshot into machine-readable
  pass/warn/fail with reasons (``/healthz``, the HEALTH wire query, and
  the ``repro-top`` console in :mod:`~repro.obs.console`).
"""

from .log import JsonLogger, configure_logging, get_logger, log_event
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    disable,
    enable,
    enabled,
    get_registry,
    merge_snapshots,
    relabel_snapshot,
    series_key,
    span,
)
from .prom import render, render_snapshot, write_snapshot
from .http import start_http_server, start_metrics_server
from .health import (
    HEALTH_SCHEMA,
    HealthMonitor,
    HealthPolicy,
    evaluate_health,
    histogram_quantile,
)
from .trace import (
    SpanRing,
    TraceContext,
    Tracer,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "series_key",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "span",
    "merge_snapshots",
    "relabel_snapshot",
    "render",
    "render_snapshot",
    "write_snapshot",
    "start_http_server",
    "start_metrics_server",
    "HEALTH_SCHEMA",
    "HealthPolicy",
    "HealthMonitor",
    "evaluate_health",
    "histogram_quantile",
    "TraceContext",
    "Tracer",
    "SpanRing",
    "chrome_trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "trace_span",
    "tracing_enabled",
    "JsonLogger",
    "get_logger",
    "configure_logging",
    "log_event",
]
