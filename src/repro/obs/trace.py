"""Cross-layer request tracing: contexts, a span ring, Chrome export.

The metrics plane (:mod:`repro.obs.metrics`) counts *how much* work each
layer did; this module records *where a given batch went*.  A
:class:`TraceContext` — a trace id plus a span id and optional parent —
is born client-side, rides the wire protocol's optional ``trace`` field
(HELLO/QUERY JSON frames; REPORTS frames inherit the connection's
context), follows the collector's decode→ring→flush→drain pipeline, and
crosses :mod:`repro.stream.sharding` worker-process boundaries alongside
the shm manifest.  Completed spans land in a bounded overwrite ring
(:class:`SpanRing`) on the process-wide :class:`Tracer`; shard workers
ship their spans back piggybacked on drain replies, so one ring holds
the whole request path.

Everything here is **zero-cost while tracing is off** (the default):
:func:`trace_span` with a disabled tracer or a ``None`` context returns
a shared no-op span, call sites guard on ``tracer.enabled`` exactly like
the metrics registry, and no context objects are created at all.  Flip
with ``REPRO_OBS=1`` (the same switch as metrics) or
:func:`enable_tracing`.

The ring exports as Chrome trace-event JSON — ``{"traceEvents": [...]}``
with complete (``"ph": "X"``) events, microsecond timestamps, and the
trace/span/parent ids in ``args`` — loadable by Perfetto or
``chrome://tracing`` as-is, via ``repro-bench obs trace`` or the
``/traces`` HTTP route.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Optional, Union

#: Version of the span-record layout (bumped when fields change).
TRACE_SCHEMA = 1

#: Default bound on retained completed spans (older spans overwritten).
DEFAULT_RING_CAPACITY = 8192


def _new_id() -> str:
    """A fresh 64-bit hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


class TraceContext:
    """One position in a trace tree: ``(trace_id, span_id, parent_id)``.

    Contexts are plain immutable data — creating one never records
    anything.  :meth:`child` derives the context a sub-operation runs
    under (same trace, fresh span id, parented on this span), and
    :meth:`to_wire` / :meth:`from_wire` are the JSON form carried by the
    protocol's optional ``trace`` field.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = str(trace_id)
        self.span_id = _new_id() if span_id is None else str(span_id)
        self.parent_id = None if parent_id is None else str(parent_id)

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh trace with this context as its root span."""
        return cls(_new_id())

    def child(self) -> "TraceContext":
        """A new span of the same trace, parented on this one."""
        return TraceContext(self.trace_id, parent_id=self.span_id)

    def to_wire(self) -> dict:
        """The JSON form carried on HELLO/QUERY frames."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, obj) -> Optional["TraceContext"]:
        """Rebuild a peer's context from a frame's ``trace`` field.

        Untrusted input: anything that is not a dict carrying string ids
        (length-capped) yields ``None`` rather than raising, so a
        malformed trace field degrades to an untraced connection instead
        of killing it.
        """
        if not isinstance(obj, dict):
            return None
        trace_id, span_id = obj.get("trace_id"), obj.get("span_id")
        if not isinstance(trace_id, str) or not 1 <= len(trace_id) <= 64:
            return None
        if span_id is not None and (
            not isinstance(span_id, str) or not 1 <= len(span_id) <= 64
        ):
            return None
        return cls(trace_id, span_id=span_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext(trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id})"
        )


class SpanRing:
    """A bounded overwrite ring of completed span records.

    Writers never block and never allocate beyond the record itself: a
    shared :func:`itertools.count` hands out slot indices (atomic under
    the GIL, no lock on the write path) and each record lands at
    ``index % capacity``, overwriting the oldest once the ring wraps.
    :attr:`dropped` counts the overwritten spans so exporters can report
    truncation instead of silently presenting a partial trace.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: list = [None] * capacity
        self._counter = itertools.count()
        self._written = 0

    def append(self, record: dict) -> None:
        index = next(self._counter)
        self._slots[index % self.capacity] = record
        self._written = index + 1

    def __len__(self) -> int:
        return min(self._written, self.capacity)

    @property
    def total(self) -> int:
        """Spans ever recorded (retained plus overwritten)."""
        return self._written

    @property
    def dropped(self) -> int:
        """Spans overwritten by the bounded ring (0 until it wraps)."""
        return max(0, self._written - self.capacity)

    def spans(self) -> list[dict]:
        """The retained records, oldest first."""
        total = self._written
        if total <= self.capacity:
            records = self._slots[:total]
        else:
            head = total % self.capacity
            records = self._slots[head:] + self._slots[:head]
        # A concurrent writer may have nulled nothing (slots only ever
        # hold records), but guard against a torn startup anyway.
        return [record for record in records if record is not None]

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._counter = itertools.count()
        self._written = 0


class _NoopSpan:
    """The shared do-nothing span for disabled tracers / absent contexts."""

    __slots__ = ()
    ctx = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A recording span: measures wall-clock bounds, records on exit.

    ``ctx`` is the span's own context (a child of the one passed in when
    ``child=True``) — hand ``span.ctx`` to sub-operations so their spans
    parent on this one.
    """

    __slots__ = ("_tracer", "_name", "_cat", "ctx", "_args", "_start", "_t0")

    def __init__(self, tracer, name, cat, ctx, args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self.ctx = ctx
        self._args = args
        self._start = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.record(
            self._name,
            self.ctx,
            start=self._start,
            duration=time.perf_counter() - self._t0,
            cat=self._cat,
            **self._args,
        )


class Tracer:
    """The span recorder: a switch, a ring, and an export surface."""

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        enabled: bool = False,
        service: Optional[str] = None,
    ) -> None:
        self._enabled = bool(enabled)
        self.ring = SpanRing(capacity)
        self.service = service or f"pid{os.getpid()}"

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Tracer":
        self._enabled = True
        return self

    def disable(self) -> "Tracer":
        self._enabled = False
        return self

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        ctx: Optional[TraceContext],
        cat: str = "repro",
        child: bool = True,
        **args,
    ) -> Union[_ActiveSpan, _NoopSpan]:
        """A context manager timing one operation under ``ctx``.

        Returns the shared no-op span when tracing is off or ``ctx`` is
        ``None`` — the call costs one branch and allocates nothing, so
        instrumented hot paths stay free with tracing disabled.  With
        ``child=True`` (default) the span runs under a fresh child
        context (exposed as ``span.ctx`` for further propagation); with
        ``child=False`` it records as ``ctx``'s own span.
        """
        if not self._enabled or ctx is None:
            return _NOOP
        span_ctx = ctx.child() if child else ctx
        return _ActiveSpan(self, name, cat, span_ctx, args)

    def record(
        self,
        name: str,
        ctx: TraceContext,
        start: float,
        duration: float,
        cat: str = "repro",
        service: Optional[str] = None,
        thread: Optional[str] = None,
        **args,
    ) -> None:
        """Record one completed span (the raw form — used by the span
        context manager, and to fold spans shipped back from shard worker
        processes into the parent's ring)."""
        if not self._enabled or ctx is None:
            return
        self.ring.append(
            {
                "name": str(name),
                "cat": str(cat),
                "trace_id": ctx.trace_id,
                "span_id": ctx.span_id,
                "parent_id": ctx.parent_id,
                "start": float(start),
                "duration": float(duration),
                "service": service or self.service,
                "thread": thread or threading.current_thread().name,
                "args": args,
            }
        )

    def adopt(self, records) -> None:
        """Fold foreign span records (a shard worker's reply payload)
        into this ring; records are trusted to carry the span fields."""
        if not self._enabled:
            return
        for record in records:
            self.ring.append(dict(record))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def drain_spans(self) -> list[dict]:
        """The retained spans, leaving the ring untouched."""
        return self.ring.spans()

    def export_chrome(self) -> dict:
        """The ring as a Chrome trace-event document (see
        :func:`chrome_trace`)."""
        return chrome_trace(self.ring.spans(), dropped=self.ring.dropped)

    def write_chrome(self, path: Union[str, Path]) -> Path:
        """Write :meth:`export_chrome` as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.export_chrome(), indent=2) + "\n")
        return path

    def clear(self) -> None:
        self.ring.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(enabled={self._enabled}, spans={len(self.ring)}, "
            f"dropped={self.ring.dropped})"
        )


def chrome_trace(spans, dropped: int = 0) -> dict:
    """Span records as a Chrome trace-event JSON document.

    Every record becomes one complete (``"ph": "X"``) event with
    microsecond epoch timestamps; the trace/span/parent ids travel in
    ``args`` so tooling (and the tests) can stitch the request path back
    together.  Services map to ``pid`` rows and threads to ``tid`` rows
    via metadata events, which is how Perfetto groups the timeline.
    """
    events: list[dict] = []
    services: dict[str, int] = {}
    threads: dict[tuple[int, str], int] = {}
    for record in spans:
        service = record.get("service", "repro")
        pid = services.setdefault(service, len(services) + 1)
        thread_key = (pid, record.get("thread", "main"))
        tid = threads.setdefault(thread_key, len(threads) + 1)
        args = dict(record.get("args") or {})
        args["trace_id"] = record["trace_id"]
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        events.append(
            {
                "name": record["name"],
                "cat": record.get("cat", "repro"),
                "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": max(record["duration"], 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for service, pid in services.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": service},
            }
        )
    for (pid, thread), tid in threads.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {
        "traceEvents": events,
        "otherData": {"schema": TRACE_SCHEMA, "dropped_spans": int(dropped)},
    }


#: The process-wide tracer; enabled by the same switch as metrics.
_TRACER = Tracer(
    enabled=os.environ.get("REPRO_OBS", "") not in ("", "0")
)


def get_tracer() -> Tracer:
    """The process-wide tracer (serve/stream layers record here)."""
    return _TRACER


def enable_tracing() -> Tracer:
    """Switch the process-wide tracer on; returns it."""
    return _TRACER.enable()


def disable_tracing() -> Tracer:
    """Switch the process-wide tracer off; returns it."""
    return _TRACER.disable()


def trace_span(
    name: str, ctx: Optional[TraceContext], **args
) -> Union[_ActiveSpan, _NoopSpan]:
    """A span on the process-wide tracer (no-op when disabled/untraced)."""
    return _TRACER.span(name, ctx, **args)


class tracing_enabled:
    """Context manager: enable the tracer for a scope, restore on exit
    (the tracing twin of :class:`repro.obs.metrics.enabled`)."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = _TRACER if tracer is None else tracer
        self._was_enabled = False

    def __enter__(self) -> Tracer:
        self._was_enabled = self._tracer.enabled
        self._tracer.enable()
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        if not self._was_enabled:
            self._tracer.disable()
