"""A tiny asyncio HTTP handler exposing ``/metrics``.

``repro-serve --metrics-port`` mounts this next to the report collector:
one ``asyncio.start_server`` loop that answers ``GET /metrics`` with the
Prometheus text exposition of the supplied registries and closes the
connection.  It speaks just enough HTTP/1.0 for ``curl`` and a
Prometheus scraper — request line plus headers in, fixed response out —
and deliberately nothing more (no keep-alive, no chunking, no routing
table), so the serving path stays dependency-free.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Iterable, Optional

from . import prom
from .metrics import MetricsRegistry

_MAX_REQUEST_BYTES = 8192


def _response(status: str, body: str, content_type: str = "text/plain") -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


async def _handle(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    render: Callable[[], str],
) -> None:
    try:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            request = exc.partial
        except asyncio.LimitOverrunError:
            writer.write(_response("431 Request Header Fields Too Large", ""))
            return
        line = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            writer.write(_response("400 Bad Request", "bad request\n"))
            return
        method, path = parts[0], parts[1].split("?", 1)[0]
        if method != "GET":
            writer.write(_response("405 Method Not Allowed", "GET only\n"))
        elif path == "/metrics":
            writer.write(
                _response(
                    "200 OK",
                    render(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            )
        else:
            writer.write(_response("404 Not Found", "try /metrics\n"))
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def start_metrics_server(
    host: str,
    port: int,
    registries: Iterable[MetricsRegistry],
    *,
    render: Optional[Callable[[], str]] = None,
) -> asyncio.AbstractServer:
    """Serve ``GET /metrics`` for ``registries`` on ``host:port``.

    Returns the listening :class:`asyncio.AbstractServer`; the caller
    owns its lifetime (``server.close()`` / ``await server.wait_closed()``).
    ``render`` overrides the default merged-registry Prometheus renderer
    (used by tests and by callers that add derived series).
    """
    registries = tuple(registries)
    if render is None:
        render = lambda: prom.render(*registries)  # noqa: E731

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle(reader, writer, render)

    return await asyncio.start_server(
        handler, host, port, limit=_MAX_REQUEST_BYTES
    )
