"""A tiny asyncio HTTP server for the observability surfaces.

``repro-serve`` mounts this next to the report collector: one
``asyncio.start_server`` loop answering ``GET`` requests off a small
route table — ``/metrics`` (Prometheus text), ``/healthz``
(machine-readable pass/warn/fail), ``/traces`` (Chrome trace-event
JSON).  It speaks just enough HTTP/1.0 for ``curl``, a Prometheus
scraper, and a load-balancer probe — request line plus headers in, one
fixed response out, connection closed — and deliberately nothing more
(no keep-alive, no chunking, no TLS), so the serving path stays
dependency-free.

Malformed input gets an explicit status, never a silent close: a bad
request line is ``400``, an oversized request is ``413``, an unknown
path ``404``, a non-GET method ``405``, and a route handler that raises
is ``500`` — probes and scrapers see a diagnosable response either way.

Routes are callables returning ``(status, content_type, body)``; sync or
async both work.  :func:`start_metrics_server` builds the conventional
table from registries (plus any extra routes the caller mounts).
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Awaitable, Callable, Iterable, Mapping, Optional, Union

from . import prom
from .metrics import MetricsRegistry

_MAX_REQUEST_BYTES = 8192

#: A route handler: () -> (status, content_type, body), sync or async.
RouteResult = tuple[str, str, str]
Route = Callable[[], Union[RouteResult, Awaitable[RouteResult]]]

#: Content types of the standard surfaces.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def _response(status: str, body: str, content_type: str = "text/plain") -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


async def _read_request(reader: asyncio.StreamReader) -> Optional[bytes]:
    """The raw request head, or ``None`` when it exceeds the size cap."""
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial
    except asyncio.LimitOverrunError:
        return None


async def _handle(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    routes: Mapping[str, Route],
) -> None:
    try:
        request = await _read_request(reader)
        if request is None or len(request) > _MAX_REQUEST_BYTES:
            writer.write(
                _response("413 Request Entity Too Large", "request too large\n")
            )
            return
        line = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            writer.write(_response("400 Bad Request", "bad request\n"))
            return
        method, path = parts[0], parts[1].split("?", 1)[0]
        if method != "GET":
            writer.write(_response("405 Method Not Allowed", "GET only\n"))
            return
        route = routes.get(path)
        if route is None:
            known = " ".join(sorted(routes))
            writer.write(_response("404 Not Found", f"try one of: {known}\n"))
            return
        try:
            result = route()
            if inspect.isawaitable(result):
                result = await result
            status, content_type, body = result
        except Exception as error:  # noqa: BLE001 - a broken route must
            # answer, not drop the probe on the floor
            writer.write(
                _response(
                    "500 Internal Server Error",
                    f"{type(error).__name__}: {error}\n",
                )
            )
            return
        writer.write(_response(status, body, content_type=content_type))
    finally:
        try:
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def start_http_server(
    host: str, port: int, routes: Mapping[str, Route]
) -> asyncio.AbstractServer:
    """Serve ``routes`` on ``host:port``; the caller owns the server's
    lifetime (``server.close()`` / ``await server.wait_closed()``)."""
    routes = dict(routes)

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle(reader, writer, routes)

    return await asyncio.start_server(
        handler, host, port, limit=_MAX_REQUEST_BYTES
    )


async def start_metrics_server(
    host: str,
    port: int,
    registries: Iterable[MetricsRegistry],
    *,
    render: Optional[Callable[[], str]] = None,
    routes: Optional[Mapping[str, Route]] = None,
) -> asyncio.AbstractServer:
    """Serve ``GET /metrics`` for ``registries`` on ``host:port``.

    ``render`` overrides the default merged-registry Prometheus renderer
    (used by tests and by callers that add derived series); ``routes``
    mounts additional paths next to ``/metrics`` (``repro-serve`` adds
    ``/healthz`` and ``/traces`` this way).  Returns the listening
    server; the caller owns its lifetime.
    """
    registries = tuple(registries)
    if render is None:
        render = lambda: prom.render(*registries)  # noqa: E731

    def metrics_route() -> RouteResult:
        return "200 OK", PROMETHEUS_CONTENT_TYPE, render()

    table: dict[str, Route] = {"/metrics": metrics_route}
    if routes:
        table.update(routes)
    return await start_http_server(host, port, table)
