"""The metrics registry — counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds every instrument of one telemetry scope.
Instruments are identified by a metric *name* plus an optional label set
(Prometheus-style); :meth:`~MetricsRegistry.counter`,
:meth:`~MetricsRegistry.gauge` and :meth:`~MetricsRegistry.histogram` are
get-or-create, so call sites never coordinate registration.

Two registries matter in practice:

* the **process-wide default registry** (:func:`get_registry`), *disabled
  by default* — the engine, kernel, and stream layers record into it, and
  a disabled registry turns every ``inc``/``set``/``observe`` into a
  constant-time no-op, so instrumented hot paths cost nothing beyond a
  branch until someone calls :func:`enable` (or sets ``REPRO_OBS=1``);
* per-component registries (the serve collector owns an always-enabled
  one) whose counters must stay exact regardless of the global switch —
  the ``STATS`` wire frame reconciles against them.

All mutations take one registry-wide lock, so a concurrent
:meth:`~MetricsRegistry.snapshot` is a consistent cut: counters
incremented from shard worker threads sum exactly, never torn.  The
per-operation cost is one lock acquisition — instruments are updated per
*batch*, never per report, on every hot path in this library.

:func:`span` times a block of code (always, cheaply) and records the
duration into a registry histogram when the registry is enabled — the
single timing primitive shared by runtime telemetry and the bench
harness, so both read off one code path.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from typing import Iterable, Optional, Sequence, Union

#: Snapshot schema version (bumped when the layout changes).
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds for durations in seconds.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for batch/report-count histograms.
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 8, 64, 256, 1024, 4096, 8192, 16_384, 65_536, 262_144, 1_048_576,
)

LabelValue = Union[str, int, float, bool]


def _escape_label(value: object) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def series_key(name: str, labels: dict) -> str:
    """The canonical series identifier: ``name`` or ``name{k="v",...}``.

    Labels are sorted by key and values escaped, so the key is both a
    stable dict key for snapshots and a valid Prometheus series string.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("key", "_registry", "_value")

    def __init__(self, registry: "MetricsRegistry", key: str) -> None:
        self.key = key
        self._registry = registry
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._registry._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._registry._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, lags, levels)."""

    kind = "gauge"
    __slots__ = ("key", "_registry", "_value")

    def __init__(self, registry: "MetricsRegistry", key: str) -> None:
        self.key = key
        self._registry = registry
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._registry._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._registry._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._registry._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` semantics).

    ``edges`` are strictly increasing upper bounds; an observation lands
    in the first bucket whose edge is ``>= value``, values above the last
    edge land in the implicit overflow (``+Inf``) bucket.  ``sum`` and
    ``count`` track totals, so averages fall out of any snapshot.
    """

    kind = "histogram"
    __slots__ = ("key", "edges", "_registry", "_counts", "_sum", "_count")

    def __init__(
        self,
        registry: "MetricsRegistry",
        key: str,
        edges: Sequence[float],
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        self.key = key
        self.edges = edges
        self._registry = registry
        self._counts = [0] * (len(edges) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        value = float(value)
        index = bisect_left(self.edges, value)
        with self._registry._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._registry._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._registry._lock:
            return self._sum

    def state(self) -> dict:
        """Plain-data view: edges, per-bucket counts, sum, count."""
        with self._registry._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class Span:
    """A timing context: always measures, records only when enabled.

    ``elapsed`` holds the wall-clock duration in seconds after exit, so
    benches read their timings from the exact object that feeds the
    runtime histogram — one timing code path for both.
    """

    __slots__ = ("elapsed", "_histogram", "_start")

    def __init__(self, histogram: Optional[Histogram]) -> None:
        self.elapsed = 0.0
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """A concurrent get-or-create registry of named instruments."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.RLock()
        self._metrics: dict[str, object] = {}
        # (cls, name, labels-items) -> instrument; skips series_key
        # formatting on repeat fetches — hot paths fetch per call (never
        # caching on picklable sessions), so this lookup is the fast path.
        self._fetch_memo: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # the on/off switch
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "MetricsRegistry":
        self._enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self._enabled = False
        return self

    # ------------------------------------------------------------------
    # instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def _instrument(self, cls, name: str, labels: dict, **kwargs):
        memo_key = (cls, name, tuple(labels.items()))
        cached = self._fetch_memo.get(memo_key)
        if cached is not None:
            return cached
        key = series_key(name, labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {key!r} is a {existing.kind}, not a {cls.kind}"
                    )
                self._fetch_memo[memo_key] = existing
                return existing
            metric = cls(self, key, **kwargs)
            self._metrics[key] = metric
            self._fetch_memo[memo_key] = metric
            return metric

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Histogram:
        edges = DEFAULT_TIME_BUCKETS if buckets is None else buckets
        return self._instrument(Histogram, name, labels, edges=edges)

    def span(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Span:
        """A :class:`Span` recording into the ``name`` histogram."""
        return Span(self.histogram(name, buckets=buckets, **labels))

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------
    def metrics(self) -> list:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """A consistent plain-data cut of every registered instrument.

        Taken under the registry lock, so concurrent increments are never
        torn: the totals in one snapshot always add up.  Keys are
        Prometheus-style series strings (see :func:`series_key`), sorted.
        """
        with self._lock:
            counters = {}
            gauges = {}
            histograms = {}
            for key in sorted(self._metrics):
                metric = self._metrics[key]
                if isinstance(metric, Counter):
                    counters[key] = metric._value
                elif isinstance(metric, Gauge):
                    gauges[key] = metric._value
                else:
                    histograms[key] = {
                        "edges": list(metric.edges),
                        "counts": list(metric._counts),
                        "sum": metric._sum,
                        "count": metric._count,
                    }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def clear(self) -> None:
        """Drop every registered instrument (tests and long-lived procs)."""
        with self._lock:
            self._metrics.clear()
            self._fetch_memo.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(enabled={self._enabled}, "
            f"metrics={len(self)})"
        )


#: The process-wide default registry; disabled unless REPRO_OBS is set.
_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS", "") not in ("", "0")
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (engine/stream layers record here)."""
    return _REGISTRY


def enable() -> MetricsRegistry:
    """Switch the process-wide registry on; returns it."""
    return _REGISTRY.enable()


def disable() -> MetricsRegistry:
    """Switch the process-wide registry off; returns it."""
    return _REGISTRY.disable()


def span(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    buckets: Optional[Sequence[float]] = None,
    **labels: LabelValue,
) -> Span:
    """A timing context on ``registry`` (default: the process registry).

    Always measures (``span(...).elapsed`` works with telemetry off);
    records into the named histogram only when the registry is enabled.
    """
    target = _REGISTRY if registry is None else registry
    return target.span(name, buckets=buckets, **labels)


class enabled:
    """Context manager: enable a registry for a scope, restore on exit.

    The bench harness wraps each run in this so runtime metrics are
    captured into the artifact ``meta`` block without leaving the
    process-wide registry switched on afterwards.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = _REGISTRY if registry is None else registry
        self._was_enabled = False

    def __enter__(self) -> MetricsRegistry:
        self._was_enabled = self._registry.enabled
        self._registry.enable()
        return self._registry

    def __exit__(self, *exc_info) -> None:
        if not self._was_enabled:
            self._registry.disable()


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Combine several registry snapshots into one (later keys win on the
    rare collision; scopes use distinct metric names by convention)."""
    merged = {
        "schema": SNAPSHOT_SCHEMA,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for snapshot in snapshots:
        for section in ("counters", "gauges", "histograms"):
            merged[section].update(snapshot.get(section, {}))
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


def relabel_snapshot(snapshot: dict, **labels: LabelValue) -> dict:
    """A copy of ``snapshot`` with ``labels`` appended to every series.

    Shard worker processes ship their registry snapshots back to the
    parent piggybacked on drain replies; relabelling them (e.g.
    ``worker="shard0"``) before :func:`merge_snapshots` keeps a worker's
    ``stream_ingested_total`` from colliding with — and silently
    replacing — the parent's own series of the same name.
    """
    if not labels:
        return snapshot
    extra = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )

    def rekey(series: str) -> str:
        brace = series.find("{")
        if brace < 0:
            return f"{series}{{{extra}}}"
        return f"{series[:-1]},{extra}}}"

    out = {"schema": snapshot.get("schema", SNAPSHOT_SCHEMA)}
    for section in ("counters", "gauges", "histograms"):
        out[section] = {
            rekey(series): value
            for series, value in snapshot.get(section, {}).items()
        }
    return out
