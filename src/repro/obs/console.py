"""``repro-top`` — a live ops console for a running collector.

Polls the collector's STATS wire frame and HEALTH verdict on an
interval and renders one dashboard screen per sample: collector-level
frame counters, per-session throughput (derived from successive
``n_accepted`` samples), ingest lag, ring occupancy, query-cache hit
rate, and the health checks with their reasons.  Pure stdlib — ANSI
escapes for colour and screen clearing, no curses, no dependencies —
so it runs anywhere the client does::

    python -m repro top 9000
    python -m repro top 9000 --once --no-color   # one plain sample

Rendering is a pure function (:func:`render_dashboard`) over the two
polled payloads, so tests drive it with fabricated samples; the poll
loop (:func:`run_top`) owns only timing, screen clearing, and the
previous-sample state that turns counters into rates.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import Optional

_CLEAR = "\x1b[2J\x1b[H"
_RESET = "\x1b[0m"
_COLORS = {"pass": "\x1b[32m", "warn": "\x1b[33m", "fail": "\x1b[31m"}


def _paint(text: str, verdict: str, color: bool) -> str:
    if not color:
        return text
    return f"{_COLORS.get(verdict, '')}{text}{_RESET}"


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    if denominator <= 0:
        return None
    return numerator / denominator


def _percent(value: Optional[float]) -> str:
    return "-" if value is None else f"{100.0 * value:.0f}%"


def _session_series(snapshot: dict, family: str, section: str) -> dict:
    """``session label -> value`` for one per-session metric family."""
    out = {}
    prefix = f'{family}{{session="'
    for key, value in snapshot.get(section, {}).items():
        if key.startswith(prefix):
            out[key[len(prefix):-2]] = value
    return out


def render_dashboard(
    stats: dict,
    health: dict,
    rates: Optional[dict] = None,
    color: bool = True,
    now: Optional[float] = None,
) -> str:
    """One dashboard screen for a STATS payload and a HEALTH verdict.

    ``rates`` maps session id to a reports/second figure the caller
    derived from successive samples (``None`` renders ``-``).
    """
    rates = rates or {}
    collector = stats.get("collector", {})
    sessions = stats.get("sessions", [])
    snapshot = stats.get("metrics", {})
    status = health.get("status", "pass")
    checks = health.get("checks", [])

    stamp = time.strftime(
        "%H:%M:%S", time.localtime(time.time() if now is None else now)
    )
    lines = [
        (
            f"repro-top  {collector.get('host', '?')}:"
            f"{collector.get('port', '?')}  {stamp}   health: "
            + _paint(status.upper(), status, color)
            + f"   sessions: {len(sessions)}"
            f"   connections: {collector.get('connections_active', 0)}"
        ),
        (
            f"  ingested {collector.get('reports_ingested', 0):,}"
            f"   frames "
            + " ".join(
                f"{name}:{count}"
                for name, count in sorted(
                    collector.get("frames", {}).items()
                )
            )
            + f"   rejected {collector.get('frames_rejected', 0)}"
        ),
        "",
        (
            f"  {'SESSION':<16} {'KIND':<10} {'ACCEPTED':>12} {'PENDING':>9} "
            f"{'RATE/S':>10} {'RING':>6} {'CACHE':>6} {'STALL':>7}"
        ),
    ]
    occupancy = _session_series(snapshot, "serve_ring_occupancy", "gauges")
    capacity = _session_series(snapshot, "serve_ring_capacity", "gauges")
    hits = _session_series(
        snapshot, "serve_query_cache_hits_total", "counters"
    )
    misses = _session_series(
        snapshot, "serve_query_cache_misses_total", "counters"
    )
    for session in sessions:
        sid = str(session.get("session", "?"))
        rate = rates.get(sid)
        ring = _ratio(occupancy.get(sid, 0), capacity.get(sid, 0))
        lookups = hits.get(sid, 0) + misses.get(sid, 0)
        cache = _ratio(hits.get(sid, 0), lookups)
        stalled = session.get("stalled", False)
        stall = f"{session.get('stall_seconds', 0.0):.1f}s"
        if stalled:
            stall = _paint(stall + "!", "fail", color)
        lines.append(
            f"  {sid:<16.16} {str(session.get('kind', '?')):<10} "
            f"{session.get('n_accepted', 0):>12,} "
            f"{session.get('pending', 0):>9,} "
            f"{'-' if rate is None else format(rate, ',.0f'):>10} "
            f"{_percent(ring):>6} {_percent(cache):>6} {stall:>7}"
        )
    if not sessions:
        lines.append("  (no sessions yet)")
    lines.append("")
    lines.append("  checks:")
    for check in checks:
        verdict = check.get("status", "pass")
        scope = f" {check['session']}" if "session" in check else ""
        lines.append(
            "    "
            + _paint(f"[{verdict}]", verdict, color)
            + f" {check.get('check', '?')}{scope}: {check.get('reason', '')}"
        )
    if not checks:
        lines.append("    (none)")
    return "\n".join(lines) + "\n"


async def sample(host: str, port: int) -> tuple[dict, dict]:
    """One (stats, health) poll of a running collector."""
    from ..serve import fetch_health, fetch_stats  # lazy: obs stays below serve

    return (
        await fetch_stats(host, port),
        await fetch_health(host, port),
    )


async def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    color: bool = True,
    clear: bool = True,
) -> None:
    """The poll-render loop; ``iterations=None`` runs until interrupted."""
    previous: dict[str, tuple[float, int]] = {}
    count = 0
    while iterations is None or count < iterations:
        stats, health = await sample(host, port)
        clock = time.perf_counter()
        rates: dict[str, float] = {}
        for session in stats.get("sessions", []):
            sid = str(session.get("session", "?"))
            accepted = int(session.get("n_accepted", 0))
            seen = previous.get(sid)
            if seen is not None and clock > seen[0]:
                rates[sid] = (accepted - seen[1]) / (clock - seen[0])
            previous[sid] = (clock, accepted)
        screen = render_dashboard(stats, health, rates=rates, color=color)
        print((_CLEAR if clear else "") + screen, end="", flush=True)
        count += 1
        if iterations is not None and count >= iterations:
            return
        await asyncio.sleep(interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live ops console for a running repro-serve collector.",
    )
    parser.add_argument("port", type=int, help="collector wire port")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between samples"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one sample and exit"
    )
    parser.add_argument(
        "--no-color", action="store_true", help="plain text (no ANSI colour)"
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(
            run_top(
                args.host,
                args.port,
                interval=args.interval,
                iterations=1 if args.once else None,
                color=not args.no_color,
                clear=not args.once,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    except (ConnectionError, OSError) as error:
        print(f"repro-top: cannot reach {args.host}:{args.port} ({error})")
        return 1
    return 0
