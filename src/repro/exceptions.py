"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle anything that goes wrong inside the
privacy pipeline while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class PrivacyBudgetError(ReproError, ValueError):
    """An invalid privacy budget was supplied (non-positive, NaN, ...)."""


class DomainError(ReproError, ValueError):
    """A value lies outside the declared item/label domain, or the domain
    itself is malformed (e.g. non-positive size)."""


class AggregationError(ReproError, ValueError):
    """Server-side aggregation received reports that are inconsistent with
    the mechanism configuration (wrong shape, wrong domain, ...)."""


class ProtocolError(ReproError, RuntimeError):
    """A multi-round protocol (e.g. top-k mining) was driven in an invalid
    order, such as estimating before any data was collected."""


class ConfigurationError(ReproError, ValueError):
    """A framework or scheme was constructed with incompatible options."""
