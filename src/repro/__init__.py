"""repro — Multi-class Item Mining under Local Differential Privacy.

A from-scratch reproduction of the ICDE 2025 paper: LDP frequency oracles
(GRR, SUE/OUE, OLH, RAPPOR, Hadamard response), the paper's validity and
correlated perturbation mechanisms, the HEC/PTJ/PTS/PTS-CP multi-class
frameworks, and the shuffling-based multi-class top-k mining pipeline,
plus datasets, metrics and a bench harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import LabelItemDataset, estimate_frequencies

    rng = np.random.default_rng(7)
    data = LabelItemDataset(
        labels=rng.integers(0, 3, 10_000),
        items=rng.integers(0, 50, 10_000),
        n_classes=3,
        n_items=50,
    )
    f_hat = estimate_frequencies(data, framework="pts-cp", epsilon=2.0, rng=rng)
"""

from .core.frameworks import (
    HECFramework,
    MulticlassFramework,
    PTJFramework,
    PTSCPFramework,
    PTSFramework,
    make_framework,
)
from .core.queries import estimate_frequencies, mine_topk
from .datasets import LabelItemDataset
from .exceptions import (
    AggregationError,
    ConfigurationError,
    DomainError,
    PrivacyBudgetError,
    ProtocolError,
    ReproError,
)
from .mechanisms import (
    CorrelatedPerturbation,
    GeneralizedRandomResponse,
    OptimizedUnaryEncoding,
    PrivacyBudget,
    ValidityPerturbation,
)
from .stream import OnlineFrameworkSession, ShardedAggregator, make_session
from .types import INVALID_ITEM, DomainSpec, LabelItemPair

__version__ = "1.1.0"

__all__ = [
    "AggregationError",
    "ConfigurationError",
    "CorrelatedPerturbation",
    "DomainError",
    "DomainSpec",
    "GeneralizedRandomResponse",
    "HECFramework",
    "INVALID_ITEM",
    "LabelItemDataset",
    "LabelItemPair",
    "MulticlassFramework",
    "OnlineFrameworkSession",
    "OptimizedUnaryEncoding",
    "PTJFramework",
    "PTSCPFramework",
    "PTSFramework",
    "PrivacyBudget",
    "PrivacyBudgetError",
    "ProtocolError",
    "ReproError",
    "ShardedAggregator",
    "ValidityPerturbation",
    "estimate_frequencies",
    "make_framework",
    "make_session",
    "mine_topk",
    "__version__",
]
