"""High-level one-call API for the two multi-class item mining queries.

These wrap the frameworks (frequency estimation, Section VI-A) and the
top-k schemes (Section VI-B) behind two functions mirroring the paper's
query types.  For fine-grained control instantiate the framework or
scheme classes directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.base import LabelItemDataset
from ..rng import RngLike, ensure_rng
from .frameworks import make_framework


def estimate_frequencies(
    dataset: LabelItemDataset,
    framework: str = "pts-cp",
    epsilon: float = 1.0,
    mode: str = "simulate",
    label_fraction: Optional[float] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Multi-class frequency estimation (paper Definition 3).

    Returns the unbiased ``(c, d)`` matrix of estimated pair counts
    ``f̂(C, I)``.

    Parameters
    ----------
    framework:
        ``"hec"``, ``"ptj"``, ``"pts"`` or ``"pts-cp"`` (paper names).
    epsilon:
        Total per-user budget ε.
    mode:
        ``"simulate"`` (exact sufficient statistics, fast) or
        ``"protocol"`` (literal per-user reports).
    label_fraction:
        ε₁/ε for the split-budget frameworks; defaults to the paper's 0.5.
    """
    rng = ensure_rng(rng)
    fw = make_framework(
        framework,
        epsilon=epsilon,
        n_classes=dataset.n_classes,
        n_items=dataset.n_items,
        mode=mode,
        rng=rng,
        label_fraction=label_fraction,
    )
    return fw.estimate_frequencies(dataset)


def mine_topk(
    dataset: LabelItemDataset,
    k: int = 20,
    framework: str = "pts",
    epsilon: float = 4.0,
    optimized: bool = True,
    rng: RngLike = None,
    **scheme_options,
) -> dict[int, list[int]]:
    """Multi-class top-k item mining (paper Definition 4).

    Returns ``{class label: [top items, most frequent first]}``.

    Parameters
    ----------
    framework:
        ``"hec"``, ``"ptj"`` or ``"pts"``.
    optimized:
        ``True`` applies the paper's full optimization stack for the
        framework (shuffling + validity perturbation, plus correlated
        perturbation and global candidates for PTS); ``False`` runs the
        PEM-based baseline.
    scheme_options:
        Forwarded to :class:`repro.core.topk.scheme.MultiClassTopK`
        (e.g. ``a=0.2``, ``b=2.0``, ``label_fraction=0.5``).
    """
    from .topk.scheme import MultiClassTopK

    rng = ensure_rng(rng)
    scheme = MultiClassTopK.for_framework(
        framework,
        k=k,
        epsilon=epsilon,
        n_classes=dataset.n_classes,
        n_items=dataset.n_items,
        optimized=optimized,
        rng=rng,
        **scheme_options,
    )
    return scheme.mine(dataset)
