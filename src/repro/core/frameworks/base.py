"""Framework base class for multi-class frequency estimation.

A *framework* fixes how the label-item pair travels to the server (HEC's
user partition, PTJ's joint domain, PTS's split budget, PTS-CP's
correlated perturbation) and produces an unbiased ``(c, d)`` matrix of
estimated pair counts from a :class:`~repro.datasets.base.LabelItemDataset`.

Every framework supports two execution modes:

``"simulate"`` (default)
    Exact sufficient-statistic sampling — the aggregated supports are
    drawn directly from the distribution the per-user protocol induces
    (see :mod:`repro.mechanisms.base`).  Scales to millions of users.

``"protocol"``
    The literal wire protocol: one report per user, privatised and
    aggregated in vectorised batches through the report-plane engine
    (:mod:`repro.mechanisms.engine`).  One-shot protocol runs are simply
    a stream of one batch: the framework routes the dataset through its
    :class:`~repro.stream.session.OnlineFrameworkSession`, so the
    one-shot and streaming paths share a single ingest/estimate core.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ...datasets.base import LabelItemDataset
from ...exceptions import ConfigurationError
from ...mechanisms.base import check_domain_size, check_epsilon
from ...rng import RngLike, ensure_rng

#: The two execution modes accepted by every framework.
MODES = ("simulate", "protocol")


class MulticlassFramework(abc.ABC):
    """Estimate the ``(c, d)`` pair-count matrix under ε-LDP.

    Parameters
    ----------
    epsilon:
        Total per-user privacy budget.
    n_classes, n_items:
        Domain sizes; must match the dataset passed to
        :meth:`estimate_frequencies`.
    mode:
        ``"simulate"`` or ``"protocol"`` (see module docstring).
    """

    name: str = "framework"

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.n_classes = check_domain_size(n_classes)
        self.n_items = check_domain_size(n_items)
        if mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def estimate_frequencies(
        self, dataset: LabelItemDataset, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Run the framework end to end and return estimated pair counts."""
        self._check_dataset(dataset)
        rng = rng if rng is not None else self.rng
        if self.mode == "simulate":
            return self._estimate_simulated(dataset, rng)
        return self._estimate_protocol(dataset, rng)

    @abc.abstractmethod
    def communication_bits_per_user(self) -> int:
        """Per-user report size in bits (Table II accounting)."""

    def streaming_session(self, rng: RngLike = None):
        """A fresh online session with this framework's configuration.

        The session ingests ``(labels, items)`` batches incrementally and
        answers ``estimate()`` / ``topk(k)`` queries at any point
        mid-stream (see :mod:`repro.stream.session`).  Pass ``rng`` to
        give the session its own stream; it defaults to a child of this
        framework's generator so framework and session stay independent.
        """
        from ...rng import spawn
        from ...stream.session import make_session

        if rng is None:
            rng = spawn(self.rng, 1)[0]
        return make_session(
            self.name,
            epsilon=self.epsilon,
            n_classes=self.n_classes,
            n_items=self.n_items,
            mode=self.mode,
            rng=rng,
            label_fraction=getattr(self, "label_fraction", None),
        )

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _estimate_simulated(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        """Sufficient-statistic path."""

    def _estimate_protocol(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-user report path: the dataset as a stream of one batch.

        Delegates to the framework's online session, whose protocol-mode
        ingest privatises and aggregates through the vectorised report
        plane — there is exactly one protocol implementation per
        framework, shared by one-shot and streaming execution.  (For HEC
        this assigns users to class groups iid-uniformly, the streaming
        law; the calibration divides by realised group sizes, so the
        estimates stay unbiased.)
        """
        from ...stream.session import make_session

        session = make_session(
            self.name,
            epsilon=self.epsilon,
            n_classes=self.n_classes,
            n_items=self.n_items,
            mode="protocol",
            rng=rng,
            label_fraction=getattr(self, "label_fraction", None),
        )
        session.ingest_batch(dataset.labels, dataset.items)
        return session.estimate()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_dataset(self, dataset: LabelItemDataset) -> None:
        if dataset.n_classes != self.n_classes or dataset.n_items != self.n_items:
            raise ConfigurationError(
                f"framework configured for (c={self.n_classes}, d={self.n_items}) "
                f"but dataset has (c={dataset.n_classes}, d={dataset.n_items})"
            )
        if dataset.n_users == 0:
            raise ConfigurationError("dataset holds no users")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon!r}, "
            f"n_classes={self.n_classes!r}, n_items={self.n_items!r}, "
            f"mode={self.mode!r})"
        )


def split_counts_into_groups(
    pair_counts: np.ndarray, group_sizes: list[int], rng: np.random.Generator
) -> np.ndarray:
    """Exactly partition a ``(c, d)`` count matrix into user groups.

    Returns ``(g, c, d)`` counts whose sum over axis 0 reproduces the
    input.  Each group is a uniform random sample without replacement of
    the user population, so per-group cell counts follow the multivariate
    hypergeometric distribution — identical in law to shuffling the users
    and slicing.
    """
    counts = np.asarray(pair_counts, dtype=np.int64)
    remaining = counts.ravel().copy()
    total = int(remaining.sum())
    if sum(group_sizes) != total:
        raise ConfigurationError(
            f"group sizes sum to {sum(group_sizes)} but the dataset has {total} users"
        )
    out = np.empty((len(group_sizes), counts.size), dtype=np.int64)
    for index, size in enumerate(group_sizes):
        if size == int(remaining.sum()):
            draw = remaining.copy()
        else:
            draw = rng.multivariate_hypergeometric(remaining, size, method="marginals")
        out[index] = draw
        remaining -= draw
    return out.reshape(len(group_sizes), *counts.shape)
