"""PTS — Perturbing The pair Separately (paper Section III-B).

The label is perturbed with GRR under budget ε₁ and the item with OUE
under ε₂ = ε - ε₁ (defaults ε₁ = ε₂ = ε/2).  The server groups item
supports by perturbed label and inverts with the paper's Eq. (6)
(:func:`repro.core.estimators.calibrate_pts`).

PTS keeps the per-user report at ``O(d)`` bits, but label flips smear a
user's (still truthfully perturbed) item into the wrong class — the
cross-class noise the correlated mechanism (:mod:`.pts_cp`) then removes.
"""

from __future__ import annotations

import numpy as np

from ...datasets.base import LabelItemDataset
from ...exceptions import ConfigurationError
from ...mechanisms.budget import split_budget
from ...mechanisms.grr import GeneralizedRandomResponse
from ...mechanisms.ue import OptimizedUnaryEncoding
from ...rng import RngLike
from ..estimators import calibrate_pts
from .base import MulticlassFramework


def route_labels_grr(
    pair_counts: np.ndarray, p1: float, rng: np.random.Generator
) -> np.ndarray:
    """GRR-route users by label: returns ``(c, d)`` counts of users
    reported under each label, preserving their true items.

    Module-level so the streaming session
    (:class:`repro.stream.session.OnlinePTS`) shares the exact routing law
    with the one-shot framework.
    """
    counts = np.asarray(pair_counts, dtype=np.int64)
    c = counts.shape[0]
    stay = rng.binomial(counts, p1)
    leavers = counts - stay
    routed = stay.astype(np.int64)
    uniform_others = np.full(c - 1, 1.0 / (c - 1))
    for origin in range(c):
        row = leavers[origin]
        total = int(row.sum())
        if total == 0:
            continue
        destinations = rng.multinomial(row, uniform_others)
        others = np.delete(np.arange(c), origin)
        routed[others] += destinations.T
    return routed


class PTSFramework(MulticlassFramework):
    """Split-budget framework: GRR labels (ε₁) + OUE items (ε₂)."""

    name = "pts"

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        label_fraction: float = 0.5,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        if self.n_classes < 2:
            raise ConfigurationError(
                "PTS needs at least two classes (with one class the label "
                "perturbation is vacuous; use a plain frequency oracle)"
            )
        self.label_fraction = float(label_fraction)
        self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
        self._label_oracle = GeneralizedRandomResponse(
            self.epsilon1, self.n_classes, rng=self.rng
        )
        self._item_oracle = OptimizedUnaryEncoding(
            self.epsilon2, self.n_items, rng=self.rng
        )

    @property
    def p1(self) -> float:
        return self._label_oracle.p

    @property
    def q1(self) -> float:
        return self._label_oracle.q

    @property
    def p2(self) -> float:
        return self._item_oracle.p

    @property
    def q2(self) -> float:
        return self._item_oracle.q

    def communication_bits_per_user(self) -> int:
        return (
            self._label_oracle.communication_bits()
            + self._item_oracle.communication_bits()
        )

    # ------------------------------------------------------------------
    # simulate path
    # ------------------------------------------------------------------
    def _route_labels(
        self, pair_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return route_labels_grr(pair_counts, self.p1, rng)

    def _estimate_simulated(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        counts = dataset.pair_counts()
        routed = self._route_labels(counts, rng)
        label_counts = routed.sum(axis=1)
        p2, q2 = self.p2, self.q2
        ones = rng.binomial(routed, p2)
        zeros = rng.binomial(label_counts[:, None] - routed, q2)
        pair_support = ones + zeros
        return calibrate_pts(
            pair_support,
            label_counts,
            dataset.n_users,
            self.p1,
            self.q1,
            p2,
            q2,
        )
