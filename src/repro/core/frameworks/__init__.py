"""The four multi-class frequency-estimation frameworks.

``make_framework`` builds one by name — the names match the paper's
legends: ``"hec"``, ``"ptj"``, ``"pts"``, ``"pts-cp"``.
"""

from typing import Optional

from ...exceptions import ConfigurationError
from ...rng import RngLike
from .base import MODES, MulticlassFramework, split_counts_into_groups
from .hec import HECFramework, simulate_hec_group_support
from .ptj import PTJFramework
from .pts import PTSFramework, route_labels_grr
from .pts_cp import PTSCPFramework

#: Registry of framework constructors keyed by paper name.
FRAMEWORKS = {
    "hec": HECFramework,
    "ptj": PTJFramework,
    "pts": PTSFramework,
    "pts-cp": PTSCPFramework,
}


def make_framework(
    name: str,
    epsilon: float,
    n_classes: int,
    n_items: int,
    mode: str = "simulate",
    rng: RngLike = None,
    label_fraction: Optional[float] = None,
) -> MulticlassFramework:
    """Build a framework by its paper name.

    ``label_fraction`` is forwarded to the split-budget frameworks (PTS,
    PTS-CP) and rejected for the others.
    """
    try:
        cls = FRAMEWORKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown framework {name!r}; choose from {sorted(FRAMEWORKS)}"
        ) from None
    kwargs = dict(
        epsilon=epsilon, n_classes=n_classes, n_items=n_items, mode=mode, rng=rng
    )
    if label_fraction is not None:
        if name not in ("pts", "pts-cp"):
            raise ConfigurationError(
                f"label_fraction only applies to pts/pts-cp, not {name!r}"
            )
        kwargs["label_fraction"] = label_fraction
    return cls(**kwargs)


__all__ = [
    "FRAMEWORKS",
    "HECFramework",
    "MODES",
    "MulticlassFramework",
    "PTJFramework",
    "PTSCPFramework",
    "PTSFramework",
    "make_framework",
    "route_labels_grr",
    "simulate_hec_group_support",
    "split_counts_into_groups",
]
