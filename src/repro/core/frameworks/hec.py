"""HEC — Handling Each Class independently (paper Section II-D).

The strawman framework: users are partitioned into ``c`` equal groups,
group ``g`` mines class ``g`` with the *full* budget ε through the
adaptive GRR/OUE oracle.  A user whose label does not match her group's
class is *invalid* and reports a uniformly random item for deniability.

HEC wastes roughly a ``(c-1)/c`` fraction of users per class and its
random-item deniability injects ``(N - n)/d`` bias per cell (Theorem 4);
both effects are what the paper's PTJ/PTS frameworks remove.
"""

from __future__ import annotations

import numpy as np

from ...datasets.base import LabelItemDataset
from ...mechanisms.adaptive import make_adaptive
from ...rng import RngLike
from ..estimators import calibrate_hec
from .base import MulticlassFramework, split_counts_into_groups


def simulate_hec_group_support(
    oracle, valid_counts: np.ndarray, n_invalid: int, rng: np.random.Generator
) -> np.ndarray:
    """Support of one HEC group: valid users through the adaptive oracle,
    invalid users replaced by a uniformly random item first.

    Module-level so the streaming session
    (:class:`repro.stream.session.OnlineHEC`) shares the exact sampling
    law with the one-shot framework.
    """
    d = oracle.domain_size
    if oracle.name == "grr":
        support = oracle.simulate_support(valid_counts, rng=rng)
        if n_invalid:
            # uniform item + GRR lands uniformly on the whole domain
            # (q + (p-q)/d per value, summing to one).
            support += rng.multinomial(n_invalid, np.full(d, 1.0 / d))
        return support
    # OUE: valid users are exact binomials; an invalid user sets bit v
    # with marginal probability q + (p - q)/d.
    p, q = oracle.p, oracle.q
    valid_counts = np.asarray(valid_counts, dtype=np.int64)
    n_valid = int(valid_counts.sum())
    ones = rng.binomial(valid_counts, p)
    zeros = rng.binomial(n_valid - valid_counts, q)
    support = ones + zeros
    if n_invalid:
        support += rng.binomial(np.full(d, n_invalid), q + (p - q) / d)
    return support.astype(np.int64)


class HECFramework(MulticlassFramework):
    """User-partition strawman with random-item deniability."""

    name = "hec"

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        # One oracle instance to read (p, q, selected) from; group runs
        # reuse the same probabilities.
        self._oracle = make_adaptive(self.epsilon, self.n_items, rng=self.rng)

    @property
    def oracle_name(self) -> str:
        """Which oracle the adaptive rule selected ("grr" or "oue")."""
        return self._oracle.name

    def communication_bits_per_user(self) -> int:
        return self._oracle.communication_bits()

    # ------------------------------------------------------------------
    # group bookkeeping
    # ------------------------------------------------------------------
    def _group_sizes(self, n_users: int) -> list[int]:
        base = n_users // self.n_classes
        sizes = [base] * self.n_classes
        for index in range(n_users - base * self.n_classes):
            sizes[index] += 1
        return sizes

    # ------------------------------------------------------------------
    # simulate path
    # ------------------------------------------------------------------
    def _estimate_simulated(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        sizes = self._group_sizes(dataset.n_users)
        groups = split_counts_into_groups(dataset.pair_counts(), sizes, rng)
        p, q = self._oracle.p, self._oracle.q
        support = np.empty((self.n_classes, self.n_items), dtype=np.int64)
        for g in range(self.n_classes):
            valid_counts = groups[g, g, :]
            n_invalid = int(groups[g].sum() - valid_counts.sum())
            support[g] = self._simulate_group(valid_counts, n_invalid, rng)
        return calibrate_hec(
            support, np.asarray(sizes, dtype=np.float64), dataset.n_users, p, q
        )

    def _simulate_group(
        self, valid_counts: np.ndarray, n_invalid: int, rng: np.random.Generator
    ) -> np.ndarray:
        return simulate_hec_group_support(self._oracle, valid_counts, n_invalid, rng)
