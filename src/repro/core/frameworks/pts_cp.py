"""PTS-CP — the PTS framework upgraded with correlated perturbation.

Identical wire shape to PTS (label + ``(d+1)``-bit vector), but the item
perturbation is *conditioned on the label's fate*: a flipped label
invalidates the item, the validity flag records it, and the server's
flag-filtered aggregation plus Eq. (4) remove the cross-class noise PTS
suffers from.  This is the paper's headline mechanism for multi-class
frequency estimation (Sections IV-B, VI-A).
"""

from __future__ import annotations

import numpy as np

from ...datasets.base import LabelItemDataset
from ...exceptions import ConfigurationError
from ...mechanisms.budget import split_budget
from ...mechanisms.correlated import CorrelatedPerturbation
from ...rng import RngLike
from .base import MulticlassFramework


class PTSCPFramework(MulticlassFramework):
    """Correlated-perturbation framework (the paper's PTS-CP)."""

    name = "pts-cp"

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        label_fraction: float = 0.5,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        if self.n_classes < 2:
            raise ConfigurationError("PTS-CP needs at least two classes")
        self.label_fraction = float(label_fraction)
        self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
        self._mechanism = CorrelatedPerturbation(
            self.epsilon1,
            self.epsilon2,
            n_classes=self.n_classes,
            n_items=self.n_items,
            rng=self.rng,
        )

    @property
    def mechanism(self) -> CorrelatedPerturbation:
        """The underlying correlated mechanism (exposes p1/q1/p2/q2)."""
        return self._mechanism

    def communication_bits_per_user(self) -> int:
        return self._mechanism.communication_bits()

    def _estimate_simulated(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        support = self._mechanism.simulate_support(dataset.pair_counts(), rng=rng)
        return self._mechanism.estimate(support)
