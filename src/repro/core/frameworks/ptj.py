"""PTJ — Perturbing The pair Jointly (paper Section III-B).

The label-item pair is flattened into the Cartesian product domain
``P = C x I`` of size ``c*d`` and perturbed as a single value with the
full budget ε through the adaptive GRR/OUE oracle.  No invalid data is
ever produced, and the whole budget benefits a single perturbation —
PTJ's utility is typically the best of the basic frameworks — but the
report costs ``O(c d)`` bits under OUE, the framework's documented
drawback (Section V-C, Table II).
"""

from __future__ import annotations

import numpy as np

from ...datasets.base import LabelItemDataset
from ...mechanisms.adaptive import make_adaptive
from ...rng import RngLike
from ..estimators import calibrate_ptj
from .base import MulticlassFramework


class PTJFramework(MulticlassFramework):
    """Joint-domain framework over ``c * d`` values."""

    name = "ptj"

    def __init__(
        self,
        epsilon: float,
        n_classes: int,
        n_items: int,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        super().__init__(epsilon, n_classes, n_items, mode=mode, rng=rng)
        self._oracle = make_adaptive(
            self.epsilon, self.n_classes * self.n_items, rng=self.rng
        )

    @property
    def oracle_name(self) -> str:
        """Which oracle the adaptive rule selected ("grr" or "oue")."""
        return self._oracle.name

    def communication_bits_per_user(self) -> int:
        return self._oracle.communication_bits()

    def _estimate_simulated(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> np.ndarray:
        flat_counts = dataset.pair_counts().ravel()
        support = self._oracle.simulate_support(flat_counts, rng=rng)
        return calibrate_ptj(
            support,
            dataset.n_users,
            self._oracle.p,
            self._oracle.q,
            self.n_classes,
        )
