"""The paper's contribution: multi-class item mining under LDP.

* :mod:`repro.core.frameworks` — HEC / PTJ / PTS / PTS-CP frequency
  estimation.
* :mod:`repro.core.estimators` — the unbiased calibrations (Eqs. 4 and 6).
* :mod:`repro.core.variance` — Theorems 4-10 and Table I closed forms.
* :mod:`repro.core.topk` — the multi-class top-k mining schemes
  (Algorithms 1-2, PEM baseline, candidate shuffling).
* :mod:`repro.core.queries` — one-call high-level API.
"""

from .estimators import (
    calibrate_cp,
    calibrate_hec,
    calibrate_ptj,
    calibrate_pts,
    estimate_class_sizes,
)
from .frameworks import (
    FRAMEWORKS,
    HECFramework,
    MulticlassFramework,
    PTJFramework,
    PTSCPFramework,
    PTSFramework,
    make_framework,
)

__all__ = [
    "FRAMEWORKS",
    "HECFramework",
    "MulticlassFramework",
    "PTJFramework",
    "PTSCPFramework",
    "PTSFramework",
    "calibrate_cp",
    "calibrate_hec",
    "calibrate_ptj",
    "calibrate_pts",
    "estimate_class_sizes",
    "make_framework",
]
