"""Closed-form utility theory (paper Section V, Theorems 4-10, Table I).

All quantities are expressed in *counts* (not relative frequencies), as in
the paper.  Notation:

* ``p, q`` — bit/report keep probabilities of a generic LDP oracle;
* ``p1, q1`` — GRR label-perturbation probabilities;
* ``p2, q2`` — VP/OUE item-perturbation probabilities;
* ``f`` — true pair count ``f(C, I)``; ``n`` — class size; ``n_total`` —
  population ``N``; ``m`` — number of invalid users; ``d`` — valid item
  domain size; ``f_item`` — global item count ``Σ_C f(C, I)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DomainError
from ..mechanisms.grr import grr_probabilities
from ..mechanisms.ue import oue_probabilities

# ----------------------------------------------------------------------
# Theorems 4-5: noise injected by invalid users
# ----------------------------------------------------------------------


def ldp_invalid_noise(m: int, d: int, p: float, q: float) -> tuple[float, float]:
    """Theorem 4: (expectation, variance) of the raw-count noise that ``m``
    invalid users inject into one valid item when each replaces her invalid
    item by a uniformly random valid one.

    ``E = mq + (m/d)(p-q)``, ``Var = mq(1-q) + (m/d)(p-q)(1-p-q)``.
    """
    if d < 1:
        raise DomainError(f"domain size must be >= 1, got {d}")
    expectation = m * q + (m / d) * (p - q)
    variance = m * q * (1.0 - q) + (m / d) * (p - q) * (1.0 - p - q)
    return expectation, variance


def vp_invalid_noise(m: int, p: float, q: float) -> tuple[float, float]:
    """Theorem 5: (expectation, variance) of the noise ``m`` invalid users
    inject into one valid item under validity perturbation.

    ``E = mq(1-p)`` — the background flip ``q`` must coincide with the
    validity flag surviving clear (probability ``1-p``).
    ``Var = mq(1-q) - mpq(1 + pq - 2q)``.
    """
    expectation = m * q * (1.0 - p)
    variance = m * q * (1.0 - q) - m * p * q * (1.0 + p * q - 2.0 * q)
    return expectation, variance


# ----------------------------------------------------------------------
# Theorems 6-7: raw count moments with invalid users present
# ----------------------------------------------------------------------


def ldp_count_moments(
    n1: float, n2: float, m: float, d: int, p: float, q: float
) -> tuple[float, float]:
    """Theorem 6: (E, Var) of the target item's raw support under a plain
    LDP oracle when ``n1`` users hold it, ``n2`` hold other valid items and
    ``m`` invalid users report random valid items."""
    if d < 1:
        raise DomainError(f"domain size must be >= 1, got {d}")
    expectation = n1 * p + n2 * q + m * q + (m / d) * (p - q)
    variance = (
        n1 * (p - p * p)
        + n2 * (q - q * q)
        + m * (q - q * q)
        + (m / d) * (p - q) * (1.0 - p - q)
    )
    return expectation, variance


def vp_count_moments(
    n1: float, n2: float, m: float, p: float, q: float
) -> tuple[float, float]:
    """Theorem 7: (E, Var) of the target item's flag-filtered support under
    validity perturbation.

    ``E = n1 p(1-q) + n2 q(1-q) + m q(1-p)``; the variance expands the
    Bernoulli terms ``p(1-q)``, ``q(1-q)`` and ``q(1-p)``.
    """
    expectation = n1 * p * (1.0 - q) + n2 * q * (1.0 - q) + m * q * (1.0 - p)
    variance = (
        n1 * (p - p * p + 2.0 * p * p * q - p * q - p * p * q * q)
        + n2 * (q - 2.0 * q * q + 2.0 * q**3 - q**4)
        + m * (q - q * q + 2.0 * p * q * q - p * q - p * p * q * q)
    )
    return expectation, variance


def vp_vs_ldp_variance_gap(
    n1: float, n2: float, m: float, d: int, p: float, q: float
) -> float:
    """Section V-B closing identity: ``Var_VP - Var_LDP``.

    ``= n1 pq(2p - 1 - pq) + n2 q^2 (2q - 1 - q^2)
    + m pq(2q - 1 - pq) - (m/d)(p-q)(1-p-q)`` — always negative, i.e. the
    validity perturbation strictly beats the random-replacement oracle.
    """
    if d < 1:
        raise DomainError(f"domain size must be >= 1, got {d}")
    return (
        n1 * p * q * (2.0 * p - 1.0 - p * q)
        + n2 * q * q * (2.0 * q - 1.0 - q * q)
        + m * p * q * (2.0 * q - 1.0 - p * q)
        - (m / d) * (p - q) * (1.0 - p - q)
    )


# ----------------------------------------------------------------------
# Theorem 8 / Eq. (5): correlated-perturbation estimator variance
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CPProbabilities:
    """The four perturbation probabilities of the correlated mechanism."""

    p1: float
    q1: float
    p2: float
    q2: float

    @classmethod
    def from_budgets(
        cls, epsilon1: float, epsilon2: float, n_classes: int
    ) -> "CPProbabilities":
        """Paper defaults: GRR over ``c`` classes for labels, OUE for items."""
        p1, q1 = grr_probabilities(epsilon1, n_classes)
        p2, q2 = oue_probabilities(epsilon2)
        return cls(p1=p1, q1=q1, p2=p2, q2=q2)

    @property
    def pass_true(self) -> float:
        """Pr[report counted at the true cell] = ``p1 (1-q2) p2``."""
        return self.p1 * (1.0 - self.q2) * self.p2

    @property
    def pass_same_class(self) -> float:
        """Pr[counted at a same-class other item] = ``p1 (1-q2) q2``."""
        return self.p1 * (1.0 - self.q2) * self.q2

    @property
    def pass_other_class(self) -> float:
        """Pr[an other-class user is counted here] = ``q1 (1-p2) q2``."""
        return self.q1 * (1.0 - self.p2) * self.q2

    @property
    def denominator(self) -> float:
        """Calibration denominator ``p1 (1-q2)(p2 - q2)``."""
        return self.p1 * (1.0 - self.q2) * (self.p2 - self.q2)

    @property
    def class_correction(self) -> float:
        """Eq. (4)'s ``n̂`` multiplier ``q2 [p1(1-q2) - q1(1-p2)] / denom``."""
        kappa = self.q2 * (self.p1 * (1.0 - self.q2) - self.q1 * (1.0 - self.p2))
        return kappa / self.denominator


def cp_estimate_variance(
    f: float,
    n: float,
    n_total: float,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> float:
    """Theorem 8 / Eq. (5): variance of the calibrated CP estimate.

    Sum of the three binomial support terms plus the propagated variance
    of the class-size estimate ``n̂``.
    """
    probs = CPProbabilities(p1=p1, q1=q1, p2=p2, q2=q2)
    a, b, e = probs.pass_true, probs.pass_same_class, probs.pass_other_class
    d2 = probs.denominator**2
    support_var = (
        f * a * (1.0 - a) + (n - f) * b * (1.0 - b) + (n_total - n) * e * (1.0 - e)
    ) / d2
    class_var = (
        n * (p1 * (1.0 - p1) - q1 * (1.0 - q1)) + n_total * q1 * (1.0 - q1)
    ) / (p1 - q1) ** 2
    return support_var + probs.class_correction**2 * class_var


# ----------------------------------------------------------------------
# Table I: grouped variable coefficients of Eq. (5)
# ----------------------------------------------------------------------

#: Privacy budgets of the paper's Table I columns.
TABLE1_EPSILONS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)


def table1_coefficients(
    epsilon: float, n_classes: int = 4, label_fraction: float = 0.5
) -> tuple[float, float, float]:
    """Coefficients of ``f(C,I)``, ``n`` and ``N`` in Eq. (5) (Table I).

    The grouping matches the paper's numeric table (verified against the
    printed values): the ``n̂`` correction's population part is evaluated
    at the marginal of ``n`` only, i.e.

    * ``coef_f = [A(1-A) - B(1-B)] / D^2``
    * ``coef_n = [B(1-B) - E(1-E)] / D^2
      + G^2 [p1(1-p1) - q1(1-q1)] / (p1-q1)^2``
    * ``coef_N = E(1-E) / D^2``

    with ``A, B, E`` the three pass probabilities, ``D`` the calibration
    denominator and ``G`` the class-correction multiplier.  The defaults
    (``c = 4``, even split) are the SYN1 regime used by the paper.
    """
    eps1 = epsilon * label_fraction
    eps2 = epsilon - eps1
    probs = CPProbabilities.from_budgets(eps1, eps2, n_classes)
    a, b, e = probs.pass_true, probs.pass_same_class, probs.pass_other_class
    d2 = probs.denominator**2
    coef_f = (a * (1.0 - a) - b * (1.0 - b)) / d2
    coef_n = (b * (1.0 - b) - e * (1.0 - e)) / d2 + probs.class_correction**2 * (
        probs.p1 * (1.0 - probs.p1) - probs.q1 * (1.0 - probs.q1)
    ) / (probs.p1 - probs.q1) ** 2
    coef_big_n = e * (1.0 - e) / d2
    return coef_f, coef_n, coef_big_n


def table1(
    epsilons: tuple[float, ...] = TABLE1_EPSILONS,
    n_classes: int = 4,
) -> dict[str, np.ndarray]:
    """Regenerate the paper's Table I as arrays keyed by variable name."""
    rows = {"epsilon": np.asarray(epsilons, dtype=np.float64)}
    coefficients = np.asarray(
        [table1_coefficients(eps, n_classes=n_classes) for eps in epsilons]
    )
    rows["f(C,I)"] = coefficients[:, 0]
    rows["n"] = coefficients[:, 1]
    rows["N"] = coefficients[:, 2]
    return rows


# ----------------------------------------------------------------------
# Theorem 9-10: PTS (GRR + OUE) estimator variance and the CP gap
# ----------------------------------------------------------------------


def pts_estimate_variance(
    f: float,
    n: float,
    n_total: float,
    f_item: float,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> float:
    """Variance of the Eq. (6) (GRR label + OUE item) estimator.

    Treats the three aggregates (pair support, class size, item total) as
    independent — the same simplification the paper's Section V-C uses.
    The pair support decomposes over four user populations:
    same-pair (``p1 p2``), same-class-other-item (``p1 q2``),
    other-class-same-item (``q1 p2``), other-class-other-item (``q1 q2``).
    """
    d = (p1 - q1) * (p2 - q2)
    cases = (
        (f, p1 * p2),
        (n - f, p1 * q2),
        (f_item - f, q1 * p2),
        (n_total - n - (f_item - f), q1 * q2),
    )
    support_var = sum(count * pr * (1.0 - pr) for count, pr in cases) / d**2
    class_var = (n * p1 * (1.0 - p1) + (n_total - n) * q1 * (1.0 - q1)) / (p1 - q1) ** 2
    item_var = (f_item * p2 * (1.0 - p2) + (n_total - f_item) * q2 * (1.0 - q2)) / (
        p2 - q2
    ) ** 2
    class_coef = q2 * (p1 - q1) / d
    item_coef = q1 * (p2 - q2) / d
    return support_var + class_coef**2 * class_var + item_coef**2 * item_var


def theorem10_gap_lower_bound(
    f: float,
    n: float,
    n_total: float,
    f_item: float,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> float:
    """Theorem 10: lower bound on ``Var_PTS(GRR+OUE) - Var_CP`` — positive,
    i.e. the correlated perturbation strictly improves on the naive
    separate perturbation."""
    denom_cp = (p1 * (1.0 - q2) * (p2 - q2)) ** 2
    term1 = (
        (n - f) * p1**2 * q2**2 * (1.0 - q2) ** 2
        + (n_total - n) * q1 * q2 * p2 * (1.0 - q1 * q2) ** 2
    ) / denom_cp
    term2 = (
        q1 * q2 * (1.0 - p2) / (p1 * (1.0 - q2) * (p2 - q2))
    ) ** 2 * (n * p1 * (1.0 - p1) + (n_total - n) * q1 * (1.0 - q1)) / (p1 - q1) ** 2
    term3 = (q1 / ((p1 - q1) * (p2 - q2))) ** 2 * (
        f_item * p2 * (1.0 - p2) + (n_total - f_item) * q2 * (1.0 - q2)
    )
    return term1 + term2 + term3


# ----------------------------------------------------------------------
# Streaming plug-in variance matrices
# ----------------------------------------------------------------------
#
# The scalar theorems above take the *true* counts.  A live session only
# has its own private estimate, so the streaming layer (drift detection,
# adaptive round advancement) evaluates the same closed forms at the
# plugged-in estimate, with every population count clipped to its valid
# range first — negative cells and over-unity sums would otherwise
# produce negative "variances".  The results are per-cell ``(c, d)``
# matrices aligned with ``OnlineFrameworkSession.estimate()``.


def _clipped_counts(estimate, upper) -> np.ndarray:
    est = np.asarray(estimate, dtype=np.float64)
    return np.clip(est, 0.0, np.maximum(np.asarray(upper, dtype=np.float64), 0.0))


def ldp_variance_matrix(estimate, n_total: float, p: float, q: float) -> np.ndarray:
    """Per-cell variance of the calibrated joint-domain (PTJ) estimate,
    evaluated at the plug-in counts: ``Var(f̂) = [f p(1-p) + (N-f) q(1-q)]
    / (p-q)^2`` (Theorem 6 with the deniability term absent)."""
    f = _clipped_counts(estimate, n_total)
    support_var = f * p * (1.0 - p) + (n_total - f) * q * (1.0 - q)
    return support_var / (p - q) ** 2


def hec_variance_matrix(
    estimate, group_sizes, n_total: float, p: float, q: float
) -> np.ndarray:
    """Per-cell plug-in variance of the HEC estimate.

    Group ``g``'s support is rescaled by ``N / n_g`` in the calibration,
    so its binomial variance propagates with the square of that factor;
    the expected in-group holder count is the global estimate thinned by
    the group sampling rate ``n_g / N``.
    """
    sizes = np.asarray(group_sizes, dtype=np.float64)
    if (sizes <= 0).any():
        raise DomainError("every HEC group needs at least one user")
    rate = sizes / max(float(n_total), 1.0)
    v = _clipped_counts(
        np.asarray(estimate, dtype=np.float64) * rate[:, None], sizes[:, None]
    )
    support_var = v * p * (1.0 - p) + (sizes[:, None] - v) * q * (1.0 - q)
    scale = float(n_total) / sizes
    return scale[:, None] ** 2 * support_var / (p - q) ** 2


def pts_variance_matrix(
    estimate,
    class_sizes,
    n_total: float,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> np.ndarray:
    """Vectorised :func:`pts_estimate_variance` evaluated at the plug-in
    estimate: ``class_sizes`` are the (estimated) ``n_C`` and the item
    totals ``f_item`` come from the estimate's column sums."""
    n = _clipped_counts(class_sizes, n_total)[:, None]
    f = _clipped_counts(estimate, n)
    f_item = np.clip(f.sum(axis=0), f.max(axis=0), float(n_total))[None, :]
    denom = (p1 - q1) * (p2 - q2)
    cases = (
        (f, p1 * p2),
        (np.maximum(n - f, 0.0), p1 * q2),
        (np.maximum(f_item - f, 0.0), q1 * p2),
        (np.maximum(n_total - n - (f_item - f), 0.0), q1 * q2),
    )
    support_var = sum(count * pr * (1.0 - pr) for count, pr in cases) / denom**2
    class_var = (
        n * p1 * (1.0 - p1) + (n_total - n) * q1 * (1.0 - q1)
    ) / (p1 - q1) ** 2
    item_var = (
        f_item * p2 * (1.0 - p2) + (n_total - f_item) * q2 * (1.0 - q2)
    ) / (p2 - q2) ** 2
    class_coef = q2 * (p1 - q1) / denom
    item_coef = q1 * (p2 - q2) / denom
    return support_var + class_coef**2 * class_var + item_coef**2 * item_var


def cp_variance_matrix(
    estimate,
    class_sizes,
    n_total: float,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> np.ndarray:
    """Vectorised Theorem 8 (:func:`cp_estimate_variance`) evaluated at
    the plug-in estimate and (estimated) class sizes."""
    probs = CPProbabilities(p1=p1, q1=q1, p2=p2, q2=q2)
    n = _clipped_counts(class_sizes, n_total)[:, None]
    f = _clipped_counts(estimate, n)
    a, b, e = probs.pass_true, probs.pass_same_class, probs.pass_other_class
    support_var = (
        f * a * (1.0 - a)
        + np.maximum(n - f, 0.0) * b * (1.0 - b)
        + np.maximum(n_total - n, 0.0) * e * (1.0 - e)
    ) / probs.denominator**2
    class_var = (
        n * (p1 * (1.0 - p1) - q1 * (1.0 - q1)) + n_total * q1 * (1.0 - q1)
    ) / (p1 - q1) ** 2
    return support_var + probs.class_correction**2 * class_var
