"""Unbiased frequency calibrations for the multi-class frameworks.

These are the pure inversion formulas of paper Section VI-A, factored out
of the framework classes so they can be tested algebraically and reused by
the top-k pipeline:

* :func:`calibrate_hec` — per-group calibration with the paper's ``c``
  scaling (Section VI-A, first bullet).
* :func:`calibrate_ptj` — the standard pure-protocol inversion over the
  joint domain.
* :func:`calibrate_pts` — Eq. (6): GRR label + OUE item.
* :func:`calibrate_cp` — Eq. (4): the correlated mechanism (also available
  as :meth:`repro.mechanisms.correlated.CorrelatedPerturbation.estimate`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AggregationError


def _as_float(array: np.ndarray) -> np.ndarray:
    return np.asarray(array, dtype=np.float64)


def calibrate_hec(
    group_support: np.ndarray,
    group_sizes: np.ndarray,
    n_total: int,
    p: float,
    q: float,
) -> np.ndarray:
    """HEC calibration ``f̂(C,I) = (c f̃(C,I) - N q) / (p - q)``.

    ``group_support[g]`` is the support vector collected from group ``g``
    (the group assigned to class ``g``).  With exactly equal groups the
    paper's formula applies verbatim; for uneven groups each row is scaled
    by its own ``N / group_size`` factor, which reduces to ``c`` in the
    balanced case.

    Note the estimator is unbiased only up to the random-item deniability
    noise ``(N - n) / d`` per cell (paper Theorem 4) — HEC's fundamental
    handicap, visible in Fig. 6.
    """
    support = _as_float(group_support)
    sizes = _as_float(group_sizes)
    if support.ndim != 2 or sizes.shape != (support.shape[0],):
        raise AggregationError(
            f"need (c, d) supports and (c,) group sizes, got {support.shape} "
            f"and {sizes.shape}"
        )
    if (sizes <= 0).any():
        raise AggregationError("every HEC group must contain at least one user")
    scale = n_total / sizes
    return (scale[:, None] * support - n_total * q) / (p - q)


def calibrate_ptj(
    support: np.ndarray, n_total: int, p: float, q: float, n_classes: int
) -> np.ndarray:
    """PTJ calibration ``f̂ = (f̃ - N q)/(p - q)`` reshaped to ``(c, d)``."""
    support = _as_float(support).ravel()
    if support.size % n_classes:
        raise AggregationError(
            f"joint support of size {support.size} does not divide into "
            f"{n_classes} classes"
        )
    flat = (support - n_total * q) / (p - q)
    return flat.reshape(n_classes, -1)


def calibrate_pts(
    pair_support: np.ndarray,
    label_counts: np.ndarray,
    n_total: int,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> np.ndarray:
    """Eq. (6): unbiased pair counts under GRR labels + OUE items.

    ``pair_support[C', I]`` counts reports with perturbed label ``C'`` and
    item bit ``I`` set; ``label_counts`` are the raw per-label report
    counts ``ñ``.
    """
    support = _as_float(pair_support)
    labels = _as_float(label_counts)
    if support.ndim != 2 or labels.shape != (support.shape[0],):
        raise AggregationError(
            f"need (c, d) supports and (c,) label counts, got {support.shape} "
            f"and {labels.shape}"
        )
    n_hat = (labels - n_total * q1) / (p1 - q1)
    item_total_hat = (support.sum(axis=0) - n_total * q2) / (p2 - q2)
    numerator = (
        support
        - n_hat[:, None] * q2 * (p1 - q1)
        - item_total_hat[None, :] * q1 * (p2 - q2)
        - n_total * q1 * q2
    )
    return numerator / ((p1 - q1) * (p2 - q2))


def calibrate_cp(
    item_support: np.ndarray,
    label_counts: np.ndarray,
    n_total: int,
    p1: float,
    q1: float,
    p2: float,
    q2: float,
) -> np.ndarray:
    """Eq. (4): unbiased pair counts under the correlated mechanism.

    ``item_support[C', I]`` counts flag-filtered reports; ``label_counts``
    are the raw per-label counts ``ñ``.
    """
    support = _as_float(item_support)
    labels = _as_float(label_counts)
    if support.ndim != 2 or labels.shape != (support.shape[0],):
        raise AggregationError(
            f"need (c, d) supports and (c,) label counts, got {support.shape} "
            f"and {labels.shape}"
        )
    n_hat = (labels - n_total * q1) / (p1 - q1)
    denominator = p1 * (1.0 - q2) * (p2 - q2)
    cross = q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2))
    numerator = (
        support - n_total * q1 * q2 * (1.0 - p2) - n_hat[:, None] * cross
    )
    return numerator / denominator


def estimate_class_sizes(
    label_counts: np.ndarray, n_total: int, p1: float, q1: float
) -> np.ndarray:
    """Unbiased class sizes ``n̂ = (ñ - N q1)/(p1 - q1)`` (shared helper)."""
    labels = _as_float(label_counts)
    return (labels - n_total * q1) / (p1 - q1)
