"""Shared low-level report simulation for the top-k pipelines.

Every top-k iteration reduces to: a report domain (buckets or candidate
values), per-domain-value counts of *valid* users, and a pool of invalid
users.  Two invalid-handling policies exist:

* ``"random"`` — the conventional deniability trick (PEM's choice): each
  invalid user reports a uniformly random valid value, then everyone goes
  through OUE.  The random injections distort valid supports (Theorem 4).
* ``"vp"`` — the paper's validity perturbation: invalid users raise the
  validity flag, aggregation is flag-filtered (Theorem 5).

Each policy runs in either execution mode: ``"simulate"`` draws the
supports from their exact sufficient-statistic distribution
(:func:`simulate_iteration_support`), ``"protocol"`` privatises one
report per user through the vectorised report-plane engine
(:func:`protocol_iteration_support`).  :func:`iteration_support`
dispatches; the top-k pipelines thread an execution ``mode`` down to it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...exceptions import ConfigurationError, DomainError
from ...mechanisms.engine import batch_support
from ...mechanisms.ue import OptimizedUnaryEncoding
from ...mechanisms.validity import ValidityPerturbation

#: The two invalid-data policies.
INVALID_MODES = ("random", "vp")

#: The two execution modes (mirrors ``repro.core.frameworks.base.MODES``).
EXECUTION_MODES = ("simulate", "protocol")


def _replacement_probabilities(
    size: int, replacement_weights: Optional[np.ndarray]
) -> np.ndarray:
    """Normalised replacement distribution for the ``"random"`` policy."""
    if replacement_weights is None:
        return np.full(size, 1.0 / size)
    weights = np.asarray(replacement_weights, dtype=np.float64)
    if weights.shape != (size,):
        raise DomainError(
            f"replacement_weights shape {weights.shape} != ({size},)"
        )
    total = weights.sum()
    if total <= 0:
        raise DomainError("replacement_weights must have positive mass")
    return weights / total


def simulate_iteration_support(
    valid_counts: np.ndarray,
    n_invalid: int,
    epsilon: float,
    invalid_mode: str,
    rng: np.random.Generator,
    replacement_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Support counts over the report domain for one iteration.

    Parameters
    ----------
    valid_counts:
        Per-report-value counts of valid users (length = report domain).
    n_invalid:
        Users whose value is invalid this iteration (pruned item, foreign
        label, ...).
    invalid_mode:
        ``"random"`` or ``"vp"`` (see module docstring).
    replacement_weights:
        For ``"random"``: the probability a replacing user picks each
        value (e.g. proportional to bucket sizes).  Uniform by default.
    """
    counts = np.asarray(valid_counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise DomainError(f"valid_counts must be a non-empty vector, got {counts.shape}")
    if n_invalid < 0:
        raise DomainError(f"n_invalid must be >= 0, got {n_invalid}")
    if invalid_mode not in INVALID_MODES:
        raise ConfigurationError(
            f"invalid_mode must be one of {INVALID_MODES}, got {invalid_mode!r}"
        )

    if invalid_mode == "vp":
        oracle = ValidityPerturbation(epsilon, counts.size)
        support = oracle.simulate_support(counts, rng=rng, n_invalid=n_invalid)
        return support[: counts.size]

    # "random": replace invalid values, then OUE everyone.
    if n_invalid:
        weights = _replacement_probabilities(counts.size, replacement_weights)
        counts = counts + rng.multinomial(n_invalid, weights)
    oracle = OptimizedUnaryEncoding(epsilon, counts.size)
    return oracle.simulate_support(counts, rng=rng)


def protocol_iteration_support(
    valid_counts: np.ndarray,
    n_invalid: int,
    epsilon: float,
    invalid_mode: str,
    rng: np.random.Generator,
    replacement_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Support counts for one iteration via the literal wire protocol.

    Same parameters and return shape as :func:`simulate_iteration_support`
    — one report per user, privatised and aggregated in vectorised blocks
    through the report-plane engine
    (:func:`repro.mechanisms.engine.batch_support`).
    """
    counts = np.asarray(valid_counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise DomainError(f"valid_counts must be a non-empty vector, got {counts.shape}")
    if n_invalid < 0:
        raise DomainError(f"n_invalid must be >= 0, got {n_invalid}")
    if invalid_mode not in INVALID_MODES:
        raise ConfigurationError(
            f"invalid_mode must be one of {INVALID_MODES}, got {invalid_mode!r}"
        )
    values = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    if invalid_mode == "vp":
        if n_invalid:
            values = np.concatenate(
                [values, np.full(n_invalid, -1, dtype=np.int64)]
            )
        oracle = ValidityPerturbation(epsilon, counts.size, rng=rng)
        return batch_support(oracle, values)[: counts.size]
    if n_invalid:
        weights = _replacement_probabilities(counts.size, replacement_weights)
        replacements = rng.choice(counts.size, size=n_invalid, p=weights)
        values = np.concatenate([values, replacements.astype(np.int64)])
    oracle = OptimizedUnaryEncoding(epsilon, counts.size, rng=rng)
    return batch_support(oracle, values)


def iteration_support(
    valid_counts: np.ndarray,
    n_invalid: int,
    epsilon: float,
    invalid_mode: str,
    rng: np.random.Generator,
    replacement_weights: Optional[np.ndarray] = None,
    mode: str = "simulate",
) -> np.ndarray:
    """One iteration's supports under the chosen execution ``mode``.

    Dispatches to :func:`simulate_iteration_support` (exact sufficient
    statistics) or :func:`protocol_iteration_support` (per-user reports
    through the batch engine); the two agree in distribution.
    """
    if mode not in EXECUTION_MODES:
        raise ConfigurationError(
            f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
        )
    if mode == "protocol":
        return protocol_iteration_support(
            valid_counts,
            n_invalid,
            epsilon,
            invalid_mode,
            rng,
            replacement_weights=replacement_weights,
        )
    return simulate_iteration_support(
        valid_counts,
        n_invalid,
        epsilon,
        invalid_mode,
        rng,
        replacement_weights=replacement_weights,
    )


def split_counts_over_iterations(
    counts: np.ndarray, n_iterations: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Partition a user population (given as value counts) into
    ``n_iterations`` near-equal random cohorts.

    Returns a list of count vectors summing to the input.  Sampling is
    without replacement (multivariate hypergeometric), identical in law to
    shuffling the users and slicing — each user reports in exactly one
    iteration, as the privacy analysis requires.
    """
    if n_iterations < 1:
        raise DomainError(f"need >= 1 iteration, got {n_iterations}")
    flat = np.asarray(counts, dtype=np.int64).ravel()
    if (flat < 0).any():
        raise DomainError("counts must be non-negative")
    total = int(flat.sum())
    base = total // n_iterations
    sizes = [base + (index < total % n_iterations) for index in range(n_iterations)]
    remaining = flat.copy()
    parts: list[np.ndarray] = []
    for size in sizes:
        if size == int(remaining.sum()):
            draw = remaining.copy()
        elif size == 0:
            draw = np.zeros_like(remaining)
        else:
            draw = rng.multivariate_hypergeometric(remaining, size, method="marginals")
        parts.append(draw.reshape(np.asarray(counts).shape))
        remaining -= draw
    return parts


def top_indices(support: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest supports, ties toward lower index.

    Deterministic given the support vector, so pruning is reproducible.
    """
    support = np.asarray(support)
    if k < 1:
        raise DomainError(f"k must be >= 1, got {k}")
    k = min(k, support.size)
    order = np.lexsort((np.arange(support.size), -support.astype(np.float64)))
    return order[:k]


def topk_per_class(estimates: np.ndarray, k: int) -> dict[int, list[int]]:
    """Per-class top-``k`` item ids from a ``(c, d)`` estimate matrix.

    The online-query counterpart of
    :meth:`repro.datasets.base.LabelItemDataset.true_topk`: same ordering
    rule (most frequent first, ties toward the smaller id), applied to
    estimated counts.  Used by the streaming sessions' ``topk`` query.
    """
    matrix = np.asarray(estimates)
    if matrix.ndim != 2:
        raise DomainError(f"estimates must be a (c, d) matrix, got {matrix.shape}")
    return {
        label: [int(i) for i in top_indices(matrix[label], k)]
        for label in range(matrix.shape[0])
    }
