"""PEM — Prefix Extending Method (Wang et al., TDSC 2021).

The state-of-the-art heavy-hitter baseline the paper builds on and
compares against.  Items are encoded as fixed-length bit strings; users
are partitioned over the iterations; iteration ``t`` collects supports of
the candidate prefixes at the current length, the server keeps the **top
k** and extends them by ``m`` bits — so every report domain has
``k * 2^m`` values and the per-user communication is the paper Table II's
``O(2^m k log d)``.

Two deliberate weaknesses, which the paper's optimizations remove, are
faithfully reproduced:

* only ``k`` prefixes survive each level, so one noisy level permanently
  loses a true heavy hitter, and prefix aggregation creates
  **false-positive prefixes** (Fig. 3) — structured sibling sums can
  outrank the true top item's prefix;
* users whose prefix was pruned become **invalid** and, in the classic
  protocol, are replaced by a uniformly random candidate, injecting
  Theorem-4 noise.  Passing ``invalid_mode="vp"`` swaps in the validity
  perturbation (the "+VP" ablation rows of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...exceptions import ConfigurationError, DomainError
from ...mechanisms.base import check_epsilon
from ...rng import RngLike, ensure_rng
from .pruning import estimate_final, prefix_prune_once
from .reporting import (
    EXECUTION_MODES,
    INVALID_MODES,
    split_counts_over_iterations,
)
from .trie import PrefixTrie, bits_needed


def pem_iteration_count(domain_size: int, k: int, extension_bits: int = 1) -> int:
    """Number of PEM iterations for a domain: extensions plus the final.

    The starting prefix length gives a report domain of about
    ``k * 2^m`` values, and each iteration adds ``m`` bits.
    """
    total_bits = bits_needed(domain_size)
    start_bits = min(total_bits, bits_needed(min(domain_size, k << extension_bits)))
    extensions = int(np.ceil((total_bits - start_bits) / extension_bits))
    return extensions + 1


@dataclass
class PEMResult:
    """Outcome of one PEM run."""

    top_items: list[int]
    supports: np.ndarray
    candidates: np.ndarray
    trie: Optional[PrefixTrie] = field(default=None, repr=False)


class PEMMiner:
    """Top-k mining over one value domain via prefix extension.

    Parameters
    ----------
    k:
        Number of heavy hitters to return.
    epsilon:
        Per-user item budget for the OUE/VP reports.
    domain_size:
        Size of the (possibly joint) value domain.
    keep:
        Prefixes kept per iteration.  Default ``k`` — the original PEM
        retention; the joint PTJ baseline passes ``k*c``.
    extension_bits:
        The paper's ``m``: bits added per iteration (default 1).
    invalid_mode:
        ``"random"`` (classic PEM) or ``"vp"`` (the +VP ablation).
    mode:
        ``"simulate"`` (exact sufficient statistics, the default) or
        ``"protocol"`` — every iteration consumes per-user report batches
        through the vectorised engine instead.
    record_trie:
        Keep an explicit :class:`~repro.core.topk.trie.PrefixTrie` of the
        expansion path (used by tests and demos; costs memory).
    """

    def __init__(
        self,
        k: int,
        epsilon: float,
        domain_size: int,
        keep: Optional[int] = None,
        extension_bits: int = 1,
        invalid_mode: str = "random",
        mode: str = "simulate",
        record_trie: bool = False,
        rng: RngLike = None,
    ) -> None:
        if k < 1:
            raise DomainError(f"k must be >= 1, got {k}")
        if domain_size < 1:
            raise DomainError(f"domain size must be >= 1, got {domain_size}")
        if extension_bits < 1:
            raise DomainError(f"extension_bits must be >= 1, got {extension_bits}")
        if invalid_mode not in INVALID_MODES:
            raise ConfigurationError(
                f"invalid_mode must be one of {INVALID_MODES}, got {invalid_mode!r}"
            )
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.k = int(k)
        self.epsilon = check_epsilon(epsilon)
        self.domain_size = int(domain_size)
        self.keep = int(keep) if keep is not None else self.k
        self.extension_bits = int(extension_bits)
        self.invalid_mode = invalid_mode
        self.record_trie = record_trie
        self.rng = ensure_rng(rng)
        self.total_bits = bits_needed(self.domain_size)
        self.start_bits = min(
            self.total_bits,
            bits_needed(min(self.domain_size, self.keep << self.extension_bits)),
        )

    @property
    def n_iterations(self) -> int:
        """Total mining iterations (extension steps + final)."""
        extensions = int(
            np.ceil((self.total_bits - self.start_bits) / self.extension_bits)
        )
        return extensions + 1

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def mine_counts(
        self,
        item_counts: np.ndarray,
        n_always_invalid: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> PEMResult:
        """Mine the top-k from true per-item counts.

        Each iteration's supports come from the configured execution
        ``mode``: exact sufficient-statistic simulation, or per-user
        report batches privatised and folded through the report-plane
        engine.  ``n_always_invalid`` users never hold a valid item (e.g.
        HEC's foreign-label users) and follow the invalid policy each
        iteration.
        """
        rng = rng if rng is not None else self.rng
        counts = np.asarray(item_counts, dtype=np.int64).ravel()
        if counts.size != self.domain_size:
            raise DomainError(
                f"expected counts of length {self.domain_size}, got {counts.size}"
            )
        trie = PrefixTrie(self.total_bits) if self.record_trie else None

        iterations = self.n_iterations
        cohorts = split_counts_over_iterations(counts, iterations, rng)
        invalid_cohorts = self._split_scalar(n_always_invalid, iterations, rng)

        prefixes = np.arange(1 << self.start_bits, dtype=np.int64)
        depth = self.start_bits
        for iteration in range(iterations - 1):
            outcome = prefix_prune_once(
                prefixes=prefixes,
                depth=depth,
                total_bits=self.total_bits,
                cohort_item_counts=cohorts[iteration],
                n_extra_invalid=invalid_cohorts[iteration],
                keep=self.keep,
                epsilon=self.epsilon,
                invalid_mode=self.invalid_mode,
                rng=rng,
                extension_bits=self.extension_bits,
                mode=self.mode,
            )
            if trie is not None:
                kept_now = outcome.candidates >> min(
                    self.extension_bits, self.total_bits - depth
                )
                trie.insert_frontier(
                    np.unique(kept_now), depth, np.zeros(np.unique(kept_now).size)
                )
            prefixes = outcome.candidates
            depth = min(depth + self.extension_bits, self.total_bits)

        # Final iteration: full-length codes, direct estimation.
        candidates = prefixes[prefixes < self.domain_size]
        top_items, support = estimate_final(
            candidates=candidates,
            valid_item_counts=cohorts[-1],
            n_invalid=invalid_cohorts[-1],
            epsilon=self.epsilon,
            invalid_mode=self.invalid_mode,
            k=self.k,
            rng=rng,
            mode=self.mode,
        )
        if trie is not None and candidates.size:
            trie.insert_frontier(candidates, self.total_bits, support)
        return PEMResult(
            top_items=top_items,
            supports=support,
            candidates=candidates,
            trie=trie,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _split_scalar(
        total: int, n_parts: int, rng: np.random.Generator
    ) -> list[int]:
        """Split a user count into near-equal random cohorts."""
        if total < 0:
            raise DomainError(f"cannot split a negative count: {total}")
        if total == 0:
            return [0] * n_parts
        parts = split_counts_over_iterations(np.asarray([total]), n_parts, rng)
        return [int(part[0]) for part in parts]
