"""End-to-end multi-class top-k mining schemes (paper Section VI-B).

:class:`MultiClassTopK` assembles the full pipelines evaluated in the
paper's Figs. 7-10 and Table III:

===========================  ====================================================
paper legend                 construction here
===========================  ====================================================
``HEC``                      user partition per class + PEM (random replacement)
``PTJ``                      PEM over the joint label-item domain
``PTJ-Shuffling+VP``         joint shuffled buckets + validity perturbation
``PTS``                      GRR label routing + per-class PEM
``PTS-Shuffling+VP+CP``      Algorithm 1 global candidates + Algorithm 2
                             per-class mining with buckets, VP and the CP
                             final iteration under the ``b`` noise rule
===========================  ====================================================

The four optimizations are independent toggles so the Table III ablation
rows are first-class configurations:

* ``"shuffle"`` — shuffled-bucket pruning instead of prefix extension;
* ``"vp"``      — validity perturbation instead of random replacement;
* ``"cp"``      — correlated final iteration (PTS only);
* ``"global"``  — Algorithm 1's sampled global candidate phase (PTS only).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ...datasets.base import LabelItemDataset
from ...exceptions import ConfigurationError, DomainError
from ...mechanisms.base import check_epsilon
from ...mechanisms.budget import split_budget
from ...mechanisms.grr import grr_probabilities
from ...rng import RngLike, ensure_rng
from ..frameworks.base import split_counts_into_groups
from .candidate import CandidateGenerationResult, generate_candidates
from .classwise import ClassMiningData, mine_class_topk, noise_rule_use_cp
from .pruning import (
    bucket_iteration_count,
    bucket_prune_once,
    estimate_final,
    prefix_prune_once,
)
from .reporting import (
    EXECUTION_MODES,
    iteration_support,
    split_counts_over_iterations,
    top_indices,
)
from .shuffling import assign_buckets
from .trie import bits_needed
from ...rng import derive_seed

#: Recognised optimization toggles.
OPTIMIZATIONS = frozenset({"shuffle", "vp", "cp", "global"})

#: Framework names accepted by :meth:`MultiClassTopK.for_framework`.
TOPK_FRAMEWORKS = ("hec", "ptj", "pts")


class MultiClassTopK:
    """Configurable multi-class top-k mining pipeline.

    Parameters
    ----------
    framework:
        ``"hec"``, ``"ptj"`` or ``"pts"``.
    k, epsilon:
        Items per class and the total per-user budget ε.
    optimizations:
        Any subset of ``{"shuffle", "vp", "cp", "global"}``; ``cp`` and
        ``global`` are PTS-only (they require label routing).
    a:
        Fraction of users sampled for the Algorithm-1 global phase
        (paper default 0.2).
    b:
        Noise-rule threshold of Algorithm 2 (paper default 2).
    label_fraction:
        ε₁/ε for the PTS label perturbation (paper default 0.5).
    mode:
        Execution mode threaded into every iteration: ``"simulate"``
        (exact sufficient statistics, default) or ``"protocol"``
        (per-user report batches through the vectorised engine).
    """

    def __init__(
        self,
        framework: str,
        k: int,
        epsilon: float,
        n_classes: int,
        n_items: int,
        optimizations: Iterable[str] = (),
        a: float = 0.2,
        b: float = 2.0,
        label_fraction: float = 0.5,
        mode: str = "simulate",
        rng: RngLike = None,
    ) -> None:
        if framework not in TOPK_FRAMEWORKS:
            raise ConfigurationError(
                f"framework must be one of {TOPK_FRAMEWORKS}, got {framework!r}"
            )
        if k < 1:
            raise DomainError(f"k must be >= 1, got {k}")
        if n_classes < 1 or n_items < 1:
            raise DomainError("domains must be non-empty")
        if not 0.0 < a < 1.0:
            raise ConfigurationError(f"a must be in (0, 1), got {a}")
        if b <= 0:
            raise ConfigurationError(f"b must be positive, got {b}")
        self.framework = framework
        self.k = int(k)
        self.epsilon = check_epsilon(epsilon)
        self.n_classes = int(n_classes)
        self.n_items = int(n_items)
        self.optimizations = frozenset(optimizations)
        unknown = self.optimizations - OPTIMIZATIONS
        if unknown:
            raise ConfigurationError(
                f"unknown optimizations {sorted(unknown)}; "
                f"choose from {sorted(OPTIMIZATIONS)}"
            )
        if self.optimizations & {"cp", "global"} and framework != "pts":
            raise ConfigurationError(
                "the 'cp' and 'global' optimizations require the pts "
                "framework (they rely on label routing)"
            )
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.a = float(a)
        self.b = float(b)
        self.label_fraction = float(label_fraction)
        self.rng = ensure_rng(rng)
        if framework == "pts":
            self.epsilon1, self.epsilon2 = split_budget(epsilon, label_fraction)
        else:
            # HEC and PTJ spend the whole budget on the single report.
            self.epsilon1, self.epsilon2 = 0.0, self.epsilon

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_framework(
        cls,
        framework: str,
        k: int,
        epsilon: float,
        n_classes: int,
        n_items: int,
        optimized: bool = True,
        rng: RngLike = None,
        **options,
    ) -> "MultiClassTopK":
        """Build the paper's named configuration for ``framework``.

        ``optimized=True`` yields ``PTJ-Shuffling+VP`` /
        ``PTS-Shuffling+VP+CP`` (+ global candidates); HEC has no
        optimized variant in the paper and always runs the baseline.
        """
        if optimized and framework == "ptj":
            toggles: Iterable[str] = ("shuffle", "vp")
        elif optimized and framework == "pts":
            toggles = ("shuffle", "vp", "cp", "global")
        else:
            toggles = ()
        return cls(
            framework,
            k=k,
            epsilon=epsilon,
            n_classes=n_classes,
            n_items=n_items,
            optimizations=toggles,
            rng=rng,
            **options,
        )

    @property
    def use_shuffle(self) -> bool:
        return "shuffle" in self.optimizations

    @property
    def use_vp(self) -> bool:
        return "vp" in self.optimizations

    @property
    def use_cp(self) -> bool:
        return "cp" in self.optimizations

    @property
    def use_global(self) -> bool:
        return "global" in self.optimizations

    @property
    def invalid_mode(self) -> str:
        """Invalid-data policy implied by the VP toggle."""
        return "vp" if self.use_vp else "random"

    def describe(self) -> str:
        """The paper-style method name for reports (e.g. PTS-Shuffling+VP+CP)."""
        if not self.optimizations:
            return self.framework.upper()
        parts = []
        if self.use_shuffle:
            parts.append("Shuffling")
        if self.use_vp:
            parts.append("VP")
        if self.use_cp:
            parts.append("CP")
        if self.use_global:
            parts.append("Global")
        return f"{self.framework.upper()}-" + "+".join(parts)

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def mine(
        self, dataset: LabelItemDataset, rng: Optional[np.random.Generator] = None
    ) -> dict[int, list[int]]:
        """Mine the per-class top-k.  Returns ``{label: items}``; a class
        the pipeline could not resolve (e.g. starved under PTJ) maps to a
        short or empty list."""
        if dataset.n_classes != self.n_classes or dataset.n_items != self.n_items:
            raise ConfigurationError(
                f"scheme configured for (c={self.n_classes}, d={self.n_items}) "
                f"but dataset has (c={dataset.n_classes}, d={dataset.n_items})"
            )
        rng = rng if rng is not None else self.rng
        if self.framework == "hec":
            return self._mine_hec(dataset, rng)
        if self.framework == "ptj":
            return self._mine_ptj(dataset, rng)
        return self._mine_pts(dataset, rng)

    # ------------------------------------------------------------------
    # HEC
    # ------------------------------------------------------------------
    def _mine_hec(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> dict[int, list[int]]:
        c = self.n_classes
        sizes = [dataset.n_users // c] * c
        for index in range(dataset.n_users - sum(sizes)):
            sizes[index] += 1
        groups = split_counts_into_groups(dataset.pair_counts(), sizes, rng)
        result: dict[int, list[int]] = {}
        for g in range(c):
            valid = groups[g, g, :]
            n_invalid = int(groups[g].sum() - valid.sum())
            result[g] = self._mine_single_domain(valid, n_invalid, rng)
        return result

    def _mine_single_domain(
        self, valid_counts: np.ndarray, n_always_invalid: int, rng: np.random.Generator
    ) -> list[int]:
        """One class's mining run over the plain item domain (HEC groups)."""
        d, k = self.n_items, self.k
        if self.use_shuffle:
            iterations = bucket_iteration_count(d, k)
            cohorts = split_counts_over_iterations(valid_counts, iterations, rng)
            invalid_cohorts = _split_scalar(n_always_invalid, iterations, rng)
            candidates = np.arange(d, dtype=np.int64)
            for cohort, extra in zip(cohorts[:-1], invalid_cohorts[:-1]):
                outcome = bucket_prune_once(
                    candidates=candidates,
                    cohort_item_counts=cohort,
                    n_extra_invalid=extra,
                    n_buckets=4 * k,
                    keep=2 * k,
                    epsilon=self.epsilon2,
                    invalid_mode=self.invalid_mode,
                    rng=rng,
                    mode=self.mode,
                )
                candidates = outcome.candidates
            top, _support = estimate_final(
                candidates=candidates,
                valid_item_counts=cohorts[-1],
                n_invalid=invalid_cohorts[-1],
                epsilon=self.epsilon2,
                invalid_mode=self.invalid_mode,
                k=k,
                rng=rng,
                mode=self.mode,
            )
            return top
        from .pem import PEMMiner

        miner = PEMMiner(
            k=k,
            epsilon=self.epsilon2,
            domain_size=d,
            invalid_mode=self.invalid_mode,
            mode=self.mode,
            rng=rng,
        )
        return miner.mine_counts(valid_counts, n_always_invalid=n_always_invalid, rng=rng).top_items

    # ------------------------------------------------------------------
    # PTJ
    # ------------------------------------------------------------------
    def _mine_ptj(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> dict[int, list[int]]:
        if self.use_shuffle:
            return self._mine_ptj_buckets(dataset, rng)
        return self._mine_ptj_prefix(dataset, rng)

    def _mine_ptj_buckets(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> dict[int, list[int]]:
        """Joint shuffled buckets: ``4k`` buckets per class, the top
        ``2kc`` kept *globally* — large classes can crowd out small ones,
        which is exactly the Fig. 8 starvation effect."""
        c, d, k = self.n_classes, self.n_items, self.k
        iterations = bucket_iteration_count(d, k)
        cohorts = split_counts_over_iterations(dataset.pair_counts(), iterations, rng)
        class_candidates = [np.arange(d, dtype=np.int64) for _ in range(c)]

        for cohort in cohorts[:-1]:
            assignments = []
            joint_counts = []
            offsets = [0]
            for label in range(c):
                if class_candidates[label].size == 0:
                    assignments.append(None)
                    offsets.append(offsets[-1])
                    continue
                assignment = assign_buckets(
                    class_candidates[label], 4 * k, derive_seed(rng)
                )
                assignments.append(assignment)
                joint_counts.append(
                    assignment.bucket_counts(cohort[label][assignment.candidates])
                )
                offsets.append(offsets[-1] + assignment.n_buckets)
            if offsets[-1] == 0:
                break
            joint = np.concatenate(joint_counts)
            n_invalid = int(cohort.sum() - joint.sum())
            support = iteration_support(
                valid_counts=joint,
                n_invalid=n_invalid,
                epsilon=self.epsilon,
                invalid_mode=self.invalid_mode,
                rng=rng,
                replacement_weights=self._joint_bucket_weights(assignments),
                mode=self.mode,
            )
            kept = set(top_indices(support, min(2 * k * c, joint.size)).tolist())
            for label in range(c):
                assignment = assignments[label]
                if assignment is None:
                    continue
                local_kept = [
                    bucket
                    for bucket in range(assignment.n_buckets)
                    if offsets[label] + bucket in kept
                ]
                if local_kept:
                    class_candidates[label] = assignment.surviving_candidates(
                        np.asarray(local_kept)
                    )
                else:
                    class_candidates[label] = np.empty(0, dtype=np.int64)

        # Final iteration: direct supports over the surviving pairs.
        final = cohorts[-1]
        joint_counts = []
        offsets = [0]
        for label in range(c):
            cand = class_candidates[label]
            joint_counts.append(final[label][cand])
            offsets.append(offsets[-1] + cand.size)
        result: dict[int, list[int]] = {label: [] for label in range(c)}
        if offsets[-1] == 0:
            return result
        joint = np.concatenate(joint_counts)
        n_invalid = int(final.sum() - joint.sum())
        support = iteration_support(
            valid_counts=joint,
            n_invalid=n_invalid,
            epsilon=self.epsilon,
            invalid_mode=self.invalid_mode,
            rng=rng,
            mode=self.mode,
        )
        for label in range(c):
            cand = class_candidates[label]
            if cand.size == 0:
                continue
            block = support[offsets[label] : offsets[label + 1]]
            kept = top_indices(block, min(self.k, cand.size))
            result[label] = [int(v) for v in cand[kept]]
        return result

    @staticmethod
    def _joint_bucket_weights(assignments: list) -> np.ndarray:
        """Replacement weights proportional to bucket sizes across the
        concatenated per-class blocks."""
        sizes = [
            assignment.bucket_sizes().astype(np.float64)
            for assignment in assignments
            if assignment is not None
        ]
        return np.concatenate(sizes)

    def _mine_ptj_prefix(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> dict[int, list[int]]:
        """Baseline PTJ: PEM over the label-major joint encoding, keeping
        the top ``2kc`` prefixes globally."""
        c, d, k = self.n_classes, self.n_items, self.k
        item_bits = bits_needed(d)
        label_bits = bits_needed(c)
        total_bits = label_bits + item_bits
        flat_counts = np.zeros((1 << total_bits,), dtype=np.int64)
        pair_counts = dataset.pair_counts()
        labels = np.repeat(np.arange(c), d)
        items = np.tile(np.arange(d), c)
        flat_counts[(labels << item_bits) | items] = pair_counts.ravel()

        start_bits = min(total_bits, bits_needed(min(1 << total_bits, 2 * k * c)))
        iterations = total_bits - start_bits + 1
        cohorts = split_counts_over_iterations(flat_counts, iterations, rng)
        prefixes = np.arange(1 << start_bits, dtype=np.int64)
        depth = start_bits
        for cohort in cohorts[:-1]:
            outcome = prefix_prune_once(
                prefixes=prefixes,
                depth=depth,
                total_bits=total_bits,
                cohort_item_counts=cohort,
                n_extra_invalid=0,
                keep=k * c,  # PEM retention scaled to the joint domain
                epsilon=self.epsilon,
                invalid_mode=self.invalid_mode,
                rng=rng,
                mode=self.mode,
            )
            prefixes = outcome.candidates
            depth += 1
        # Final: full-length codes; per-class selection.
        valid_codes = prefixes[(prefixes & ((1 << item_bits) - 1)) < d]
        valid_codes = valid_codes[(valid_codes >> item_bits) < c]
        result: dict[int, list[int]] = {label: [] for label in range(c)}
        if valid_codes.size == 0:
            return result
        final = cohorts[-1]
        candidate_counts = final[valid_codes]
        n_invalid = int(final.sum() - candidate_counts.sum())
        support = iteration_support(
            valid_counts=candidate_counts,
            n_invalid=n_invalid,
            epsilon=self.epsilon,
            invalid_mode=self.invalid_mode,
            rng=rng,
            mode=self.mode,
        )
        code_labels = valid_codes >> item_bits
        for label in range(c):
            mask = code_labels == label
            if not mask.any():
                continue
            block_support = support[mask]
            block_items = valid_codes[mask] & ((1 << item_bits) - 1)
            kept = top_indices(block_support, min(self.k, block_items.size))
            result[label] = [int(v) for v in block_items[kept]]
        return result

    # ------------------------------------------------------------------
    # PTS
    # ------------------------------------------------------------------
    def _mine_pts(
        self, dataset: LabelItemDataset, rng: np.random.Generator
    ) -> dict[int, list[int]]:
        c, d, k = self.n_classes, self.n_items, self.k
        pair_counts = dataset.pair_counts()
        total_bits = bits_needed(d)
        # PEM's report domain is k * 2^m values (m = 1 here), so prefix
        # schedules start at ~2k prefixes; bucket schedules start full.
        start_bits = min(total_bits, bits_needed(min(d, 2 * k)))
        if self.use_shuffle:
            iterations = bucket_iteration_count(d, k)
        else:
            iterations = total_bits - start_bits + 1
        it_f = iterations // 2 if (self.use_global and iterations >= 2) else 0
        it_r = iterations - it_f

        # --- phase allocation -----------------------------------------
        if it_f > 0:
            n_global = int(round(self.a * dataset.n_users))
            n_global = min(max(n_global, 0), dataset.n_users - 1)
            split = split_counts_into_groups(
                pair_counts, [n_global, dataset.n_users - n_global], rng
            )
            global_counts, class_counts = split[0], split[1]
        else:
            global_counts = np.zeros_like(pair_counts)
            class_counts = pair_counts

        # --- Algorithm 1: global candidates + class-size estimates ----
        generation: Optional[CandidateGenerationResult] = None
        if it_f > 0:
            generation = generate_candidates(
                item_counts=global_counts.sum(axis=0),
                label_counts=global_counts.sum(axis=1),
                k=k,
                n_iterations=it_f,
                epsilon1=self.epsilon1,
                epsilon2=self.epsilon2,
                invalid_mode=self.invalid_mode,
                use_buckets=self.use_shuffle,
                rng=rng,
                total_bits=None if self.use_shuffle else total_bits,
                start_prefixes=(
                    None
                    if self.use_shuffle
                    else np.arange(1 << start_bits, dtype=np.int64)
                ),
                start_depth=None if self.use_shuffle else start_bits,
                mode=self.mode,
            )
            candidates = generation.candidates
            prefix_depth = generation.prefix_depth
        else:
            if self.use_shuffle:
                candidates = np.arange(d, dtype=np.int64)
                prefix_depth = None
            else:
                candidates = np.arange(1 << start_bits, dtype=np.int64)
                prefix_depth = start_bits

        # --- label routing (GRR, ε₁) ----------------------------------
        native, foreign = self._route_pts(class_counts, rng)
        inflows = native.sum(axis=1) + foreign.sum(axis=1)
        n_phase2 = int(class_counts.sum())
        expected = self._expected_class_sizes(generation, inflows, n_phase2)

        # --- Algorithm 2 per class -------------------------------------
        result: dict[int, list[int]] = {}
        for label in range(c):
            use_cp = self.use_cp and noise_rule_use_cp(
                float(inflows[label]), float(expected[label]), self.b
            )
            mined = mine_class_topk(
                data=ClassMiningData(
                    native_counts=native[label], foreign_counts=foreign[label]
                ),
                candidates=candidates,
                k=k,
                n_iterations=it_r,
                epsilon2=self.epsilon2,
                use_cp_final=use_cp,
                invalid_mode=self.invalid_mode,
                rng=rng,
                use_buckets=self.use_shuffle,
                total_bits=None if self.use_shuffle else total_bits,
                prefix_depth=prefix_depth,
                mode=self.mode,
            )
            result[label] = mined.top_items
        return result

    def _route_pts(
        self, pair_counts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """GRR-route phase-2 users by perturbed label.

        Returns ``(native, foreign)``: ``native[C]`` are users whose true
        label is ``C`` and whose perturbed label stayed ``C`` (by item);
        ``foreign[C]`` are users routed into ``C`` by a label flip.
        """
        c = self.n_classes
        p1, _q1 = grr_probabilities(self.epsilon1, c)
        if c == 1:
            return pair_counts.astype(np.int64), np.zeros_like(pair_counts)
        stay = rng.binomial(pair_counts, p1)
        leavers = pair_counts - stay
        foreign = np.zeros_like(pair_counts)
        uniform_others = np.full(c - 1, 1.0 / (c - 1))
        for origin in range(c):
            row = leavers[origin]
            if not row.sum():
                continue
            destinations = rng.multinomial(row, uniform_others)
            others = np.delete(np.arange(c), origin)
            foreign[others] += destinations.T
        return stay.astype(np.int64), foreign

    def _expected_class_sizes(
        self,
        generation: Optional[CandidateGenerationResult],
        inflows: np.ndarray,
        n_phase2: int,
    ) -> np.ndarray:
        """|D'_C| for the ``b`` rule: global-phase estimates scaled to the
        phase-2 population, or (without a global phase) the unbiased
        inversion of the phase-2 inflows themselves."""
        if generation is not None:
            return generation.class_fractions() * n_phase2
        p1, q1 = grr_probabilities(self.epsilon1 or self.epsilon, self.n_classes)
        if self.n_classes == 1:
            return np.asarray(inflows, dtype=np.float64)
        return (np.asarray(inflows, dtype=np.float64) - n_phase2 * q1) / (p1 - q1)


def _split_scalar(total: int, n_parts: int, rng: np.random.Generator) -> list[int]:
    """Split a user count into near-equal random cohorts."""
    if total < 0:
        raise DomainError(f"cannot split a negative count: {total}")
    if total == 0:
        return [0] * n_parts
    parts = split_counts_over_iterations(np.asarray([total]), n_parts, rng)
    return [int(part[0]) for part in parts]
