"""Algorithm 1 — global candidate generation.

A sampled ``a`` fraction of the users runs the first ``IT_f = int(IT/2)``
pruning iterations over the *entire* dataset: class-wise top items are
typically globally frequent (popular goods are popular with every age
group), so a global pass cheaply narrows the candidate set for every class
at once.  Each participating user also perturbs her label (GRR, ε₁), from
which the server estimates per-class sizes — the noise-level signal the
``b`` rule of Algorithm 2 consumes.

Bucket widths are ``4·k·|C|`` with the top ``2·k·|C|`` kept, halving the
candidate set per iteration exactly like the per-class phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...exceptions import DomainError
from ...mechanisms.engine import batch_support
from ...mechanisms.grr import GeneralizedRandomResponse
from .pruning import IterationOutcome, bucket_prune_once, prefix_prune_once
from .reporting import split_counts_over_iterations
from .shuffling import BucketState


@dataclass
class CandidateGenerationResult:
    """Output of the global phase.

    Attributes
    ----------
    candidates:
        Surviving item ids (bucket mode) or prefixes with their depth
        (prefix mode; ``prefix_depth`` is then set).
    class_size_estimates:
        Unbiased per-class user counts among the phase's participants.
    n_phase_users:
        Number of users consumed by the phase.
    seeds, bucket_states:
        The per-iteration broadcast artifacts (Fig. 4's communication).
    prefix_depth:
        Depth of the returned prefixes (prefix mode only).
    """

    candidates: np.ndarray
    class_size_estimates: np.ndarray
    n_phase_users: int
    seeds: list[int] = field(default_factory=list)
    bucket_states: list[BucketState] = field(default_factory=list)
    prefix_depth: Optional[int] = None

    def class_fractions(self) -> np.ndarray:
        """Estimated class proportions (clipped to a tiny positive floor
        so downstream scaling never divides by zero)."""
        est = np.maximum(self.class_size_estimates, 0.0)
        total = est.sum()
        if total <= 0:
            return np.full(est.size, 1.0 / est.size)
        return est / total


def generate_candidates(
    item_counts: np.ndarray,
    label_counts: np.ndarray,
    k: int,
    n_iterations: int,
    epsilon1: float,
    epsilon2: float,
    invalid_mode: str,
    use_buckets: bool,
    rng: np.random.Generator,
    total_bits: Optional[int] = None,
    start_prefixes: Optional[np.ndarray] = None,
    start_depth: Optional[int] = None,
    mode: str = "simulate",
) -> CandidateGenerationResult:
    """Run Algorithm 1 on the global phase's user population.

    Parameters
    ----------
    item_counts, label_counts:
        Sufficient statistics of the ``a·N`` sampled users (full-domain
        item counts and true label counts).
    n_iterations:
        ``IT_f``; zero returns the full domain untouched (used when the
        "global" optimization is toggled off but class-size estimates are
        still wanted).
    use_buckets:
        ``True`` = shuffled buckets (the optimized scheme); ``False`` =
        prefix extension (ablation of the shuffling optimization), which
        requires ``total_bits``/``start_prefixes``/``start_depth``.
    """
    counts = np.asarray(item_counts, dtype=np.int64)
    labels = np.asarray(label_counts, dtype=np.int64)
    n_classes = labels.size
    n_users = int(counts.sum())
    if n_users != int(labels.sum()):
        raise DomainError(
            f"item counts ({n_users}) and label counts ({int(labels.sum())}) "
            "describe different populations"
        )

    # Label perturbation: every phase user reports a GRR label; the server
    # inverts to unbiased class sizes (Algorithm 1 line 9).
    if n_classes > 1:
        label_oracle = GeneralizedRandomResponse(epsilon1, n_classes, rng=rng)
        if mode == "protocol":
            label_values = np.repeat(np.arange(n_classes, dtype=np.int64), labels)
            label_support = batch_support(label_oracle, label_values)
        else:
            label_support = label_oracle.simulate_support(labels, rng=rng)
        class_estimates = label_oracle.estimate(label_support, n_users)
    else:
        class_estimates = labels.astype(np.float64)

    seeds: list[int] = []
    states: list[BucketState] = []
    if use_buckets:
        candidates = np.arange(counts.size, dtype=np.int64)
        if n_iterations > 0 and n_users > 0:
            cohorts = split_counts_over_iterations(counts, n_iterations, rng)
            for cohort in cohorts:
                outcome = bucket_prune_once(
                    candidates=candidates,
                    cohort_item_counts=cohort,
                    n_extra_invalid=0,
                    n_buckets=4 * k * n_classes,
                    keep=2 * k * n_classes,
                    epsilon=epsilon2,
                    invalid_mode=invalid_mode,
                    rng=rng,
                    mode=mode,
                )
                candidates = outcome.candidates
                seeds.append(outcome.seed)
                states.append(outcome.bucket_state)
        return CandidateGenerationResult(
            candidates=candidates,
            class_size_estimates=np.asarray(class_estimates, dtype=np.float64),
            n_phase_users=n_users,
            seeds=seeds,
            bucket_states=states,
        )

    # Prefix (PEM-structured) global phase for the shuffling ablation.
    if total_bits is None or start_prefixes is None or start_depth is None:
        raise DomainError(
            "prefix-mode candidate generation needs total_bits, "
            "start_prefixes and start_depth"
        )
    prefixes = np.asarray(start_prefixes, dtype=np.int64)
    depth = int(start_depth)
    if n_iterations > 0 and n_users > 0:
        cohorts = split_counts_over_iterations(counts, n_iterations, rng)
        for cohort in cohorts:
            outcome: IterationOutcome = prefix_prune_once(
                prefixes=prefixes,
                depth=depth,
                total_bits=total_bits,
                cohort_item_counts=cohort,
                n_extra_invalid=0,
                keep=k * n_classes,  # PEM retention scaled to the c classes
                epsilon=epsilon2,
                invalid_mode=invalid_mode,
                rng=rng,
                mode=mode,
            )
            prefixes = outcome.candidates
            depth += 1
    return CandidateGenerationResult(
        candidates=prefixes,
        class_size_estimates=np.asarray(class_estimates, dtype=np.float64),
        n_phase_users=n_users,
        prefix_depth=depth,
    )
