"""Seeded candidate shuffling (paper Section VI-B, Fig. 4).

Prefix-trie mining can permanently lose a genuinely frequent item whose
siblings are rare (the Fig. 3 example): prefix frequency is the *sum* of
the items beneath it, so structured groupings create false-positive
prefixes.  The paper's fix is to group candidates into buckets *uniformly
at random*: the server broadcasts only a random seed and the surviving
bucket state per iteration, every user reconstructs the same shuffled
bucket assignment locally, reports her item's bucket, and the server
prunes the lowest-support half of the buckets.

This module provides the deterministic shuffler (seed -> assignment), the
compact :class:`BucketState` the server ships instead of the candidate
list, and the closed-form success probability of the paper's Fig. 3
worked example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...exceptions import DomainError


@dataclass(frozen=True)
class BucketAssignment:
    """One iteration's shuffled grouping of candidates into buckets.

    Attributes
    ----------
    candidates:
        The candidate value ids, in their canonical (unshuffled) order.
    bucket_of:
        ``bucket_of[i]`` is the bucket index of ``candidates[i]``.
    n_buckets:
        Number of buckets actually used (``<= requested`` when there are
        fewer candidates than buckets).
    seed:
        The shared random seed that reproduces this assignment.
    """

    candidates: np.ndarray
    bucket_of: np.ndarray
    n_buckets: int
    seed: int

    def bucket_counts(self, value_counts: np.ndarray) -> np.ndarray:
        """Fold per-candidate user counts into per-bucket counts.

        ``value_counts`` must be aligned with :attr:`candidates`.
        """
        counts = np.asarray(value_counts)
        if counts.shape != self.candidates.shape:
            raise DomainError(
                f"value_counts shape {counts.shape} != candidates "
                f"{self.candidates.shape}"
            )
        return np.bincount(
            self.bucket_of, weights=counts.astype(np.float64), minlength=self.n_buckets
        ).astype(np.int64)

    def members(self, bucket: int) -> np.ndarray:
        """Candidate ids assigned to ``bucket``."""
        if not 0 <= bucket < self.n_buckets:
            raise DomainError(f"bucket {bucket} outside [0, {self.n_buckets})")
        return self.candidates[self.bucket_of == bucket]

    def surviving_candidates(self, kept_buckets: np.ndarray) -> np.ndarray:
        """Union of the members of the kept buckets (sorted)."""
        keep = np.zeros(self.n_buckets, dtype=bool)
        keep[np.asarray(kept_buckets, dtype=np.int64)] = True
        return np.sort(self.candidates[keep[self.bucket_of]])

    def bucket_sizes(self) -> np.ndarray:
        """Number of candidates per bucket."""
        return np.bincount(self.bucket_of, minlength=self.n_buckets)


def assign_buckets(candidates: np.ndarray, n_buckets: int, seed: int) -> BucketAssignment:
    """Deterministically shuffle ``candidates`` into near-equal buckets.

    Both server and clients call this with the broadcast ``seed`` and
    obtain the identical assignment — the shuffle itself costs one seed of
    communication, not the candidate list (Fig. 4).
    """
    candidates = np.asarray(candidates, dtype=np.int64).ravel()
    if candidates.size == 0:
        raise DomainError("cannot bucket an empty candidate set")
    if n_buckets < 1:
        raise DomainError(f"need at least one bucket, got {n_buckets}")
    n_buckets = min(n_buckets, candidates.size)
    order = np.random.default_rng(seed).permutation(candidates.size)
    bucket_of = np.empty(candidates.size, dtype=np.int64)
    # Round-robin over the shuffled order gives bucket sizes differing by
    # at most one.
    bucket_of[order] = np.arange(candidates.size) % n_buckets
    return BucketAssignment(
        candidates=candidates, bucket_of=bucket_of, n_buckets=n_buckets, seed=seed
    )


@dataclass(frozen=True)
class BucketState:
    """The pruning outcome the server broadcasts after an iteration.

    A bit per bucket: 1 = survived.  Together with the iteration seeds
    this lets any client reconstruct the current candidate set, which is
    the communication trick of Fig. 4.
    """

    bits: np.ndarray

    @classmethod
    def from_kept(cls, kept_buckets: np.ndarray, n_buckets: int) -> "BucketState":
        bits = np.zeros(n_buckets, dtype=np.uint8)
        bits[np.asarray(kept_buckets, dtype=np.int64)] = 1
        return cls(bits=bits)

    @property
    def n_buckets(self) -> int:
        return int(self.bits.size)

    def kept_buckets(self) -> np.ndarray:
        """Indices of surviving buckets."""
        return np.flatnonzero(self.bits)

    def communication_bits(self) -> int:
        """Size of the broadcast state: one bit per bucket."""
        return self.n_buckets


# ----------------------------------------------------------------------
# Fig. 3 combinatorics
# ----------------------------------------------------------------------


def pair_partition_count(n_items: int) -> int:
    """Number of ways to split ``n_items`` (even) into unordered pairs.

    ``C(n,2) C(n-2,2) ... / (n/2)! = n! / (2^{n/2} (n/2)!)``.
    """
    if n_items < 2 or n_items % 2:
        raise DomainError(f"need a positive even item count, got {n_items}")
    half = n_items // 2
    return math.factorial(n_items) // (2**half * math.factorial(half))


def fig3_success_probability(n_items: int = 8, n_blockers: int = 1) -> float:
    """Success probability of the paper's Fig. 3 shuffling example.

    Eight items are shuffled into four buckets of two; the true top-1 item
    survives the bucket-level pruning unless it is paired with one of the
    ``n_blockers`` items heavy enough to sink its bucket.  For the paper's
    counts exactly one pairing is fatal, giving
    ``(105 - 15)/105 = 0.857``.
    """
    total = pair_partition_count(n_items)
    if not 0 <= n_blockers < n_items:
        raise DomainError(f"n_blockers must be in [0, {n_items}), got {n_blockers}")
    # Partitions that pair the top item with one specific blocker: fix that
    # pair, partition the remaining n-2 items freely.
    bad_per_blocker = pair_partition_count(n_items - 2)
    bad = n_blockers * bad_per_blocker
    return (total - bad) / total
