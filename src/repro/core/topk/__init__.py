"""Multi-class top-k item mining (paper Section VI-B).

* :mod:`~repro.core.topk.trie` / :mod:`~repro.core.topk.pem` — the PEM
  prefix-extension baseline and its trie substrate.
* :mod:`~repro.core.topk.shuffling` — seeded candidate shuffling and the
  Fig. 3 combinatorics.
* :mod:`~repro.core.topk.pruning` — single bucket/prefix iterations and
  the final estimation step.
* :mod:`~repro.core.topk.candidate` — Algorithm 1 (global candidates).
* :mod:`~repro.core.topk.classwise` — Algorithm 2 (per-class mining).
* :mod:`~repro.core.topk.scheme` — the assembled HEC / PTJ / PTS
  pipelines with the four optimization toggles.
"""

from .candidate import CandidateGenerationResult, generate_candidates
from .classwise import (
    ClassMiningData,
    ClassMiningResult,
    mine_class_topk,
    noise_rule_use_cp,
)
from .pem import PEMMiner, PEMResult, pem_iteration_count
from .pruning import (
    bucket_iteration_count,
    bucket_prune_once,
    estimate_final,
    prefix_prune_once,
)
from .reporting import (
    EXECUTION_MODES,
    INVALID_MODES,
    iteration_support,
    protocol_iteration_support,
    simulate_iteration_support,
    split_counts_over_iterations,
    top_indices,
    topk_per_class,
)
from .scheme import OPTIMIZATIONS, TOPK_FRAMEWORKS, MultiClassTopK
from .shuffling import (
    BucketAssignment,
    BucketState,
    assign_buckets,
    fig3_success_probability,
    pair_partition_count,
)
from .trie import PrefixTrie, bits_needed, extend_prefixes, prefix_counts, prefix_of

__all__ = [
    "BucketAssignment",
    "BucketState",
    "CandidateGenerationResult",
    "ClassMiningData",
    "ClassMiningResult",
    "EXECUTION_MODES",
    "INVALID_MODES",
    "MultiClassTopK",
    "OPTIMIZATIONS",
    "PEMMiner",
    "PEMResult",
    "PrefixTrie",
    "TOPK_FRAMEWORKS",
    "assign_buckets",
    "bits_needed",
    "bucket_iteration_count",
    "bucket_prune_once",
    "estimate_final",
    "extend_prefixes",
    "fig3_success_probability",
    "generate_candidates",
    "iteration_support",
    "mine_class_topk",
    "noise_rule_use_cp",
    "pair_partition_count",
    "pem_iteration_count",
    "prefix_counts",
    "prefix_of",
    "prefix_prune_once",
    "protocol_iteration_support",
    "simulate_iteration_support",
    "split_counts_over_iterations",
    "top_indices",
    "topk_per_class",
]
