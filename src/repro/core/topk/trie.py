"""Prefix-trie substrate for PEM-style heavy-hitter mining.

PEM (Wang et al., TDSC 2021) converts top-k item mining into frequent
*sequence* mining: items are encoded as fixed-length bit strings, the trie
grows one level per iteration, and low-support prefixes are pruned.  This
module provides the bit-string helpers and an explicit trie structure used
by :mod:`repro.core.topk.pem` and by the tests that reconstruct the
paper's Fig. 3 counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from ...exceptions import DomainError


def bits_needed(domain_size: int) -> int:
    """Number of bits encoding the domain ``[0, domain_size)`` (>= 1)."""
    if domain_size < 1:
        raise DomainError(f"domain size must be >= 1, got {domain_size}")
    return max(1, (domain_size - 1).bit_length())


def prefix_of(values: np.ndarray, total_bits: int, prefix_bits: int) -> np.ndarray:
    """Top ``prefix_bits`` bits of each value's ``total_bits`` encoding."""
    if not 0 <= prefix_bits <= total_bits:
        raise DomainError(
            f"prefix_bits must be in [0, {total_bits}], got {prefix_bits}"
        )
    return np.asarray(values, dtype=np.int64) >> (total_bits - prefix_bits)


def extend_prefixes(prefixes: np.ndarray, extension_bits: int = 1) -> np.ndarray:
    """All one-level extensions of each prefix (sorted).

    Each prefix ``p`` yields ``p << e | t`` for ``t in [0, 2^e)``.
    """
    if extension_bits < 1:
        raise DomainError(f"extension_bits must be >= 1, got {extension_bits}")
    prefixes = np.asarray(prefixes, dtype=np.int64).ravel()
    tails = np.arange(1 << extension_bits, dtype=np.int64)
    return np.sort(
        ((prefixes[:, None] << extension_bits) | tails[None, :]).ravel()
    )


def prefix_counts(
    item_counts: np.ndarray, total_bits: int, prefix_bits: int
) -> np.ndarray:
    """Aggregate per-item counts into per-prefix counts.

    Returns an array of length ``2^prefix_bits``; entry ``p`` is the total
    count of items whose encoding starts with ``p``.
    """
    counts = np.asarray(item_counts, dtype=np.int64).ravel()
    if counts.size > (1 << total_bits):
        raise DomainError(
            f"{counts.size} items do not fit in {total_bits} bits"
        )
    prefixes = prefix_of(np.arange(counts.size), total_bits, prefix_bits)
    return np.bincount(prefixes, weights=counts.astype(np.float64), minlength=1 << prefix_bits).astype(
        np.int64
    )


@dataclass
class TrieNode:
    """One trie node: a prefix with its observed support."""

    prefix: int
    depth: int
    support: float = 0.0
    children: dict[int, "TrieNode"] = field(default_factory=dict)

    def child(self, bit: int) -> Optional["TrieNode"]:
        return self.children.get(bit)

    def add_child(self, bit: int, support: float = 0.0) -> "TrieNode":
        node = TrieNode(
            prefix=(self.prefix << 1) | bit, depth=self.depth + 1, support=support
        )
        self.children[bit] = node
        return node


class PrefixTrie:
    """Explicit trie over fixed-length bit strings.

    Mainly a bookkeeping/visualisation structure: the vectorised PEM miner
    works on flat prefix arrays, but the trie records the expansion path
    (which the Fig. 3 tests inspect) and supports enumeration of the
    frontier at any depth.
    """

    def __init__(self, total_bits: int) -> None:
        if total_bits < 1:
            raise DomainError(f"total_bits must be >= 1, got {total_bits}")
        self.total_bits = total_bits
        self.root = TrieNode(prefix=0, depth=0)

    def insert_frontier(self, prefixes: np.ndarray, depth: int, supports: np.ndarray) -> None:
        """Record one iteration's surviving prefixes with their supports."""
        prefixes = np.asarray(prefixes, dtype=np.int64)
        supports = np.asarray(supports, dtype=np.float64)
        if prefixes.shape != supports.shape:
            raise DomainError("prefixes and supports must align")
        if not 1 <= depth <= self.total_bits:
            raise DomainError(f"depth must be in [1, {self.total_bits}], got {depth}")
        for prefix, support in zip(prefixes, supports):
            node = self.root
            for level in range(depth, 0, -1):
                bit = int((prefix >> (level - 1)) & 1)
                nxt = node.child(bit)
                if nxt is None:
                    nxt = node.add_child(bit)
                node = nxt
            node.support = float(support)

    def frontier(self, depth: int) -> list[TrieNode]:
        """All recorded nodes at ``depth`` (expansion order)."""
        out: list[TrieNode] = []

        def walk(node: TrieNode) -> None:
            if node.depth == depth:
                out.append(node)
                return
            for bit in (0, 1):
                child = node.child(bit)
                if child is not None:
                    walk(child)

        walk(self.root)
        return out

    def __iter__(self) -> Iterator[TrieNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __len__(self) -> int:
        return sum(1 for _ in self) - 1  # exclude the root
