"""Single mining iterations: bucket pruning, prefix pruning, final ranking.

These are the building blocks Algorithms 1 and 2 (and the PTJ scheme)
compose.  Each function runs exactly one iteration for one user cohort:

* :func:`bucket_prune_once` — the paper's shuffling iteration: candidates
  are shuffled into buckets by a shared seed, users report their item's
  bucket (VP or OUE+random-replacement), the lowest-support half of the
  buckets is dropped.
* :func:`prefix_prune_once` — a PEM iteration: users report their item's
  current-length prefix, surviving prefixes are extended by one bit.
* :func:`estimate_final` — the last iteration: users report their item
  directly over the remaining candidates and the top-k is read off the
  supports.  (All calibrations are affine per class, so ranking raw
  supports is exactly equivalent to ranking calibrated estimates.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...exceptions import DomainError
from ...rng import derive_seed
from .reporting import iteration_support, top_indices
from .shuffling import BucketState, assign_buckets
from .trie import extend_prefixes, prefix_counts


@dataclass
class IterationOutcome:
    """What one pruning iteration produced."""

    candidates: np.ndarray
    support: np.ndarray
    bucket_state: Optional[BucketState] = None
    seed: Optional[int] = None


def bucket_prune_once(
    candidates: np.ndarray,
    cohort_item_counts: np.ndarray,
    n_extra_invalid: int,
    n_buckets: int,
    keep: int,
    epsilon: float,
    invalid_mode: str,
    rng: np.random.Generator,
    mode: str = "simulate",
) -> IterationOutcome:
    """One shuffled-bucket pruning iteration (Algorithm 1/2 inner loop).

    ``cohort_item_counts`` is the full-domain ``(d,)`` count vector of this
    iteration's users; users holding items outside ``candidates`` are
    invalid, plus ``n_extra_invalid`` who are invalid a priori (foreign
    labels under HEC, pre-invalidated items, ...).  ``mode`` picks the
    execution path: exact simulation or per-user reports through the
    batch engine.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    counts = np.asarray(cohort_item_counts, dtype=np.int64)
    seed = derive_seed(rng)
    assignment = assign_buckets(candidates, n_buckets, seed)
    candidate_counts = counts[candidates]
    bucket_counts = assignment.bucket_counts(candidate_counts)
    n_invalid = int(counts.sum() - candidate_counts.sum()) + int(n_extra_invalid)
    support = iteration_support(
        valid_counts=bucket_counts,
        n_invalid=n_invalid,
        epsilon=epsilon,
        invalid_mode=invalid_mode,
        rng=rng,
        replacement_weights=assignment.bucket_sizes().astype(np.float64),
        mode=mode,
    )
    kept = top_indices(support, min(keep, assignment.n_buckets))
    state = BucketState.from_kept(kept, assignment.n_buckets)
    return IterationOutcome(
        candidates=assignment.surviving_candidates(kept),
        support=support,
        bucket_state=state,
        seed=seed,
    )


def prefix_prune_once(
    prefixes: np.ndarray,
    depth: int,
    total_bits: int,
    cohort_item_counts: np.ndarray,
    n_extra_invalid: int,
    keep: int,
    epsilon: float,
    invalid_mode: str,
    rng: np.random.Generator,
    extension_bits: int = 1,
    mode: str = "simulate",
) -> IterationOutcome:
    """One PEM prefix iteration: report at ``depth`` bits, keep ``keep``
    prefixes, extend the survivors by ``extension_bits`` (the paper's
    ``m``; extension is clipped at ``total_bits``).

    Returned ``candidates`` are the extended prefixes at
    ``depth + extension_bits`` (or the kept full codes when
    ``depth == total_bits``).
    """
    if not 1 <= depth <= total_bits:
        raise DomainError(f"depth must be in [1, {total_bits}], got {depth}")
    prefixes = np.asarray(prefixes, dtype=np.int64)
    counts = np.asarray(cohort_item_counts, dtype=np.int64)
    all_prefix_counts = prefix_counts(counts, total_bits, depth)
    valid = all_prefix_counts[prefixes]
    n_invalid = int(counts.sum() - valid.sum()) + int(n_extra_invalid)
    support = iteration_support(
        valid_counts=valid,
        n_invalid=n_invalid,
        epsilon=epsilon,
        invalid_mode=invalid_mode,
        rng=rng,
        mode=mode,
    )
    kept = top_indices(support, min(keep, prefixes.size))
    survivors = prefixes[kept]
    if depth < total_bits:
        survivors = extend_prefixes(survivors, min(extension_bits, total_bits - depth))
    else:
        survivors = np.sort(survivors)
    return IterationOutcome(candidates=survivors, support=support)


def estimate_final(
    candidates: np.ndarray,
    valid_item_counts: np.ndarray,
    n_invalid: int,
    epsilon: float,
    invalid_mode: str,
    k: int,
    rng: np.random.Generator,
    mode: str = "simulate",
) -> tuple[list[int], np.ndarray]:
    """Final iteration: direct supports over the remaining candidates.

    ``valid_item_counts`` is the full-domain ``(d,)`` vector of users whose
    report is *valid* under the chosen mechanism's semantics — the caller
    decides whether foreign-label users count (VP, exploiting globally
    frequent items) or not (CP, last paragraph of Section VI-B);
    ``n_invalid`` is everyone else in the cohort.

    Returns the mined top-k (most supported first) and the support vector
    aligned with ``candidates``.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        return [], np.zeros(0, dtype=np.int64)
    counts = np.asarray(valid_item_counts, dtype=np.int64)
    candidate_counts = counts[candidates]
    n_invalid_total = int(counts.sum() - candidate_counts.sum()) + int(n_invalid)
    support = iteration_support(
        valid_counts=candidate_counts,
        n_invalid=n_invalid_total,
        epsilon=epsilon,
        invalid_mode=invalid_mode,
        rng=rng,
        mode=mode,
    )
    kept = top_indices(support, min(k, candidates.size))
    return [int(v) for v in candidates[kept]], support


def bucket_iteration_count(domain_size: int, k: int) -> int:
    """Paper's iteration budget ``IT = ceil(log2(d / 4k)) + 1`` (>= 1).

    After ``IT - 1`` halvings the candidate set is at most ``4k``, the
    size the final estimation iteration works on.
    """
    if domain_size < 1:
        raise DomainError(f"domain size must be >= 1, got {domain_size}")
    if k < 1:
        raise DomainError(f"k must be >= 1, got {k}")
    if domain_size <= 4 * k:
        return 1
    return int(np.ceil(np.log2(domain_size / (4.0 * k)))) + 1
