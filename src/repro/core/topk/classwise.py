"""Algorithm 2 — per-class top-k mining.

After label routing (and optionally the Algorithm-1 global phase), each
class group runs ``IT_r`` iterations:

* iterations ``1 .. IT_r - 1`` prune with shuffled buckets (``4k`` wide,
  keep ``2k``) under validity perturbation — validity is simply "item in
  the candidate set", so foreign-label users whose (globally frequent)
  item survived still contribute signal;
* the **final** iteration estimates item supports directly over the
  remaining candidates.  If the class's inflow is trustworthy
  (``|D_C| <= b · |D'_C|``) the correlated mechanism is used — foreign
  users become invalid, removing their noise; otherwise (noise level too
  high) validity perturbation keeps them as signal.

Because every calibration is affine within a class, rankings of raw
flag-filtered supports equal rankings of calibrated estimates; the
implementation therefore ranks supports directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...exceptions import DomainError
from .pruning import bucket_prune_once, estimate_final, prefix_prune_once
from .reporting import split_counts_over_iterations


@dataclass
class ClassMiningData:
    """One class group's per-user sufficient statistics.

    ``native_counts[i]`` — users routed here whose *true* label matches
    the group's class, by true item.  ``foreign_counts[i]`` — users routed
    in by a label flip, by true item.  The distinction only matters in the
    final iteration (CP invalidates foreigners; VP does not).
    """

    native_counts: np.ndarray
    foreign_counts: np.ndarray

    def __post_init__(self) -> None:
        self.native_counts = np.asarray(self.native_counts, dtype=np.int64)
        self.foreign_counts = np.asarray(self.foreign_counts, dtype=np.int64)
        if self.native_counts.shape != self.foreign_counts.shape:
            raise DomainError("native/foreign count vectors must align")

    @property
    def n_users(self) -> int:
        return int(self.native_counts.sum() + self.foreign_counts.sum())

    def split(self, n_parts: int, rng: np.random.Generator) -> list["ClassMiningData"]:
        """Random equal split into iteration cohorts (users appear once)."""
        stacked = np.concatenate([self.native_counts, self.foreign_counts])
        parts = split_counts_over_iterations(stacked, n_parts, rng)
        d = self.native_counts.size
        return [
            ClassMiningData(native_counts=part[:d], foreign_counts=part[d:])
            for part in parts
        ]


@dataclass
class ClassMiningResult:
    """Mined items plus the mechanism decision for one class."""

    top_items: list[int]
    used_cp: bool
    support: np.ndarray
    candidates: np.ndarray


def mine_class_topk(
    data: ClassMiningData,
    candidates: np.ndarray,
    k: int,
    n_iterations: int,
    epsilon2: float,
    use_cp_final: bool,
    invalid_mode: str,
    rng: np.random.Generator,
    use_buckets: bool = True,
    total_bits: Optional[int] = None,
    prefix_depth: Optional[int] = None,
    mode: str = "simulate",
) -> ClassMiningResult:
    """Run Algorithm 2 for one class.

    Parameters
    ----------
    candidates:
        Item ids (bucket mode) or prefixes at ``prefix_depth`` (prefix
        mode) surviving so far.
    n_iterations:
        ``IT_r`` (>= 1); the last one is the estimation iteration.
    use_cp_final:
        The outcome of the ``b`` noise rule — ``True`` applies the
        correlated mechanism in the final iteration.
    invalid_mode:
        Invalid handling in the *pruning* iterations and in a VP final
        (``"vp"`` for the optimized scheme, ``"random"`` for ablations).
    """
    if n_iterations < 1:
        raise DomainError(f"need >= 1 iteration, got {n_iterations}")
    candidates = np.asarray(candidates, dtype=np.int64)
    cohorts = data.split(n_iterations, rng)
    depth = prefix_depth

    # Pruning iterations: validity = "item in candidates", any origin.
    for cohort in cohorts[:-1]:
        combined = cohort.native_counts + cohort.foreign_counts
        if use_buckets:
            outcome = bucket_prune_once(
                candidates=candidates,
                cohort_item_counts=combined,
                n_extra_invalid=0,
                n_buckets=4 * k,
                keep=2 * k,
                epsilon=epsilon2,
                invalid_mode=invalid_mode,
                rng=rng,
                mode=mode,
            )
            candidates = outcome.candidates
        else:
            if total_bits is None or depth is None:
                raise DomainError("prefix mode needs total_bits and prefix_depth")
            outcome = prefix_prune_once(
                prefixes=candidates,
                depth=depth,
                total_bits=total_bits,
                cohort_item_counts=combined,
                n_extra_invalid=0,
                keep=k,  # PEM retention: only k prefixes survive a level
                epsilon=epsilon2,
                invalid_mode=invalid_mode,
                rng=rng,
                mode=mode,
            )
            candidates = outcome.candidates
            depth += 1

    # Final estimation iteration.
    final = cohorts[-1]
    if not use_buckets:
        if total_bits is None or depth is None:
            raise DomainError("prefix mode needs total_bits and prefix_depth")
        if depth != total_bits:
            # The schedule should land exactly on full-length codes; guard
            # against mis-sized phase splits.
            raise DomainError(
                f"prefix schedule ended at depth {depth}, expected {total_bits}"
            )
        candidates = candidates[candidates < final.native_counts.size]
    if use_cp_final:
        valid_counts = final.native_counts
        n_invalid = int(final.foreign_counts.sum())
        final_mode = "vp"  # CP's item stage *is* the validity perturbation.
    else:
        valid_counts = final.native_counts + final.foreign_counts
        n_invalid = 0
        final_mode = invalid_mode
    top_items, support = estimate_final(
        candidates=candidates,
        valid_item_counts=valid_counts,
        n_invalid=n_invalid,
        epsilon=epsilon2,
        invalid_mode=final_mode,
        k=k,
        rng=rng,
        mode=mode,
    )
    return ClassMiningResult(
        top_items=top_items,
        used_cp=use_cp_final,
        support=support,
        candidates=candidates,
    )


def noise_rule_use_cp(
    inflow: float, expected_inflow: float, b: float
) -> bool:
    """Algorithm 2 line 8: apply CP only when the class's collected inflow
    does not exceed ``b`` times its estimated size (otherwise the valid
    fraction is too small for the correlated mechanism to be reliable)."""
    if b <= 0:
        raise DomainError(f"b must be positive, got {b}")
    if expected_inflow <= 0:
        return False
    return inflow <= b * expected_inflow
