"""Command-line entry points: regenerate the paper's tables and figures,
run the streaming / protocol / serve throughput benchmarks, and host the
standalone report collector.

Examples::

    repro-bench --list
    repro-bench fig7
    repro-bench table3 --scale full --seed 7
    repro-bench all
    repro-bench stream --scale quick --shards 4 --executor process
    repro-bench protocol --quick
    repro-bench serve --users 120000 --connections 8
    repro-bench drift --scale quick --seed 3
    repro-bench obs dump --format=prom   # telemetry snapshot
    repro-bench obs trace --output trace.json   # Chrome trace export
    python -m repro fig6           # equivalent module form
    python -m repro top 9009       # live ops console for a collector
    repro-serve --port 9009        # standalone collector
    repro-serve --metrics-port 9100 --log-json serve.jsonl
    python -m repro.serve          # equivalent module form
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench.experiments import EXPERIMENTS, run_experiment
from .bench.reporting import bench_scale, emit

#: Benchmark pseudo-experiments with their own option groups.
BENCHES = ("stream", "protocol", "serve", "drift")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the evaluation of 'Multi-class Item Mining under "
            "Local Differential Privacy' (ICDE 2025)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=(
            f"experiment id ({', '.join(sorted(EXPERIMENTS))}), 'all', "
            "'stream' (streaming ingestion benchmark), 'protocol' "
            "(protocol-mode throughput benchmark), 'serve' "
            "(report-collection service benchmark), or 'drift' "
            "(time-varying stream staleness/recall benchmark)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default=None,
        help="workload scale (default: REPRO_BENCH_SCALE or 'quick')",
    )
    parser.add_argument(
        "--quick",
        action="store_const",
        const="quick",
        dest="scale",
        help="shorthand for --scale quick",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    bench = parser.add_argument_group("stream/protocol benchmark options")
    bench.add_argument(
        "--users",
        type=int,
        default=None,
        help="population override (reports/users; drift: reports per step)",
    )
    stream = parser.add_argument_group("stream/serve benchmark options")
    stream.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker shards (stream default: one per CPU, capped at 8)",
    )
    stream.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="reports per ingested batch (serve: reports per wire frame)",
    )
    stream.add_argument(
        "--executor",
        choices=("thread", "process"),
        default=None,
        help=(
            "shard executor: per-shard threads (default) or persistent "
            "per-shard worker processes"
        ),
    )
    stream.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default=None,
        help=(
            "process-executor batch transport: zero-copy shared-memory "
            "views (default where supported) or pickled pipes"
        ),
    )
    kernels = parser.add_argument_group("kernel backend options")
    kernels.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba"),
        default=None,
        help=(
            "kernel backend for the run (default: REPRO_BACKEND or "
            "'auto' — numba where importable, else numpy)"
        ),
    )
    kernels.add_argument(
        "--threads",
        default=None,
        help=(
            "engine block-thread count for protocol mode: an integer or "
            "'auto' (default: REPRO_THREADS or serial execution)"
        ),
    )
    serve = parser.add_argument_group("serve benchmark options")
    serve.add_argument(
        "--connections",
        type=int,
        default=None,
        help="client connection count (default: the scale's grid)",
    )
    serve.add_argument(
        "--flush-reports",
        type=int,
        default=None,
        help="collector micro-batch size drained per flush (default 65536)",
    )
    serve.add_argument(
        "--high-water",
        type=int,
        default=None,
        help="collector backpressure ceiling in reports (default 262144)",
    )
    serve.add_argument(
        "--coalesce",
        type=int,
        default=None,
        help=(
            "most REPORTS frames decoded per event-loop wakeup "
            "(default 64; 1 disables coalescing)"
        ),
    )
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=None,
        help="collector background sweep period in seconds (default 0.05)",
    )
    return parser


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench obs",
        description=(
            "Inspect the telemetry plane (metrics snapshots, trace rings)."
        ),
    )
    parser.add_argument(
        "action",
        choices=("dump", "trace"),
        help=(
            "obs action: 'dump' prints a metrics snapshot, 'trace' "
            "exports this process's span ring as Chrome trace-event JSON "
            "(load it in Perfetto / chrome://tracing)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="dump output format: JSON snapshot or Prometheus text",
    )
    parser.add_argument(
        "--input",
        default=None,
        help=(
            "read the snapshot from a file — either a raw registry "
            "snapshot or a BENCH_*.json artifact (its meta.metrics block) "
            "— instead of this process's live registry"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="trace: write the Chrome trace JSON here instead of stdout",
    )
    return parser


def obs_main(argv: Sequence[str]) -> int:
    """``repro-bench obs``: print a metrics snapshot (``dump``) as JSON
    or Prometheus text, or export the process span ring (``trace``) as
    Chrome trace-event JSON."""
    import json

    from .obs import get_registry, get_tracer, render_snapshot

    args = build_obs_parser().parse_args(argv)
    if args.action == "trace":
        document = get_tracer().export_chrome()
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
            print(
                f"wrote {len(document['traceEvents'])} trace events "
                f"to {args.output}"
            )
        else:
            print(json.dumps(document, indent=2))
        return 0
    if args.input is not None:
        with open(args.input, encoding="utf-8") as handle:
            payload = json.load(handle)
        if "counters" in payload or "histograms" in payload:
            snapshot = payload
        elif "metrics" in payload.get("meta", {}):
            snapshot = payload["meta"]["metrics"]
        else:
            print(
                f"{args.input} holds neither a registry snapshot nor a "
                "bench artifact with a meta.metrics block",
                file=sys.stderr,
            )
            return 2
    else:
        snapshot = get_registry().snapshot()
    if args.format == "prom":
        sys.stdout.write(render_snapshot(snapshot))
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs":
        return obs_main(argv[1:])
    if argv and argv[0] == "top":
        from .obs.console import main as top_main

        return top_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list or args.experiment is None:
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {doc}")
        print("  stream   Streaming ingestion throughput benchmark (reports/sec).")
        print("  protocol Protocol-mode throughput benchmark (users/sec).")
        print("  serve    Report-collection service benchmark (reports/sec).")
        print("  drift    Time-varying stream staleness/recall benchmark.")
        return 0
    flag_scopes = (
        ("--shards", args.shards, ("stream", "serve")),
        ("--batch-size", args.batch_size, ("stream", "serve")),
        ("--executor", args.executor, ("stream",)),
        ("--transport", args.transport, ("stream",)),
        ("--backend", args.backend, ("stream", "protocol")),
        ("--threads", args.threads, ("protocol",)),
        ("--connections", args.connections, ("serve",)),
        ("--flush-reports", args.flush_reports, ("serve",)),
        ("--high-water", args.high_water, ("serve",)),
        ("--coalesce", args.coalesce, ("serve",)),
        ("--flush-interval", args.flush_interval, ("serve",)),
        ("--users", args.users, BENCHES),
    )
    bad_flags = [
        flag
        for flag, value, scopes in flag_scopes
        if value is not None and args.experiment not in scopes
    ]
    if bad_flags:
        print(
            f"{', '.join(bad_flags)} do not apply to {args.experiment!r} "
            "(benchmark-only options)",
            file=sys.stderr,
        )
        return 2
    if args.experiment == "stream":
        from .bench.stream import run_stream_benchmark

        if args.transport is not None and (args.executor or "thread") != "process":
            print(
                "--transport applies to --executor process only",
                file=sys.stderr,
            )
            return 2

        report, _payload = run_stream_benchmark(
            scale=args.scale or bench_scale(),
            seed=args.seed,
            n_users=args.users,
            n_shards=args.shards,
            batch_size=args.batch_size,
            executor=args.executor or "thread",
            transport=args.transport,
            backend=args.backend,
        )
        emit("stream", report)
        return 0
    if args.experiment == "protocol":
        from .bench.protocol import run_protocol_benchmark

        threads = args.threads
        if threads is not None and threads != "auto":
            try:
                threads = int(threads)
            except ValueError:
                print(
                    f"--threads must be an integer or 'auto', got {threads!r}",
                    file=sys.stderr,
                )
                return 2
        report, _payload = run_protocol_benchmark(
            scale=args.scale or bench_scale(),
            seed=args.seed,
            n_users=args.users,
            backend=args.backend,
            threads=threads,
        )
        emit("protocol", report)
        return 0
    if args.experiment == "drift":
        from .bench.drift import run_drift_benchmark

        report, _payload = run_drift_benchmark(
            scale=args.scale or bench_scale(),
            seed=args.seed,
            reports_per_step=args.users,
        )
        emit("drift", report)
        return 0
    if args.experiment == "serve":
        from .bench.serve import run_serve_benchmark

        report, _payload = run_serve_benchmark(
            scale=args.scale or bench_scale(),
            seed=args.seed,
            n_users=args.users,
            n_connections=args.connections,
            chunk_size=args.batch_size,
            n_shards=args.shards,
            flush_reports=args.flush_reports,
            high_water=args.high_water,
            coalesce=args.coalesce,
            flush_interval=args.flush_interval,
        )
        emit("serve", report)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        emit(name, run_experiment(name, scale=args.scale, seed=args.seed))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Host the asyncio LDP report collector: clients handshake a "
            "session config and stream one report per user; estimates are "
            "queryable mid-stream over the same connection."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9009, help="bind port (0: OS-assigned)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="default aggregation shards per hosted session",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "shard executor for hosted framework sessions: per-shard "
            "threads (default) or persistent worker processes"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default=None,
        help=(
            "process-executor batch transport (default: shared-memory "
            "views where supported)"
        ),
    )
    parser.add_argument(
        "--flush-reports",
        type=int,
        default=65_536,
        help="micro-batch size drained into the aggregation plane",
    )
    parser.add_argument(
        "--high-water",
        type=int,
        default=262_144,
        help="unprocessed-report ceiling before connections pause reading",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=0.05,
        help="background buffer sweep period in seconds",
    )
    parser.add_argument(
        "--coalesce",
        type=int,
        default=64,
        help=(
            "most REPORTS frames decoded per event-loop wakeup "
            "(1 disables coalescing)"
        ),
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also serve a Prometheus /metrics endpoint on this port "
            "(enables process-wide telemetry)"
        ),
    )
    parser.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="append structured JSON log records to PATH",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the standalone collector until interrupted (``repro-serve``)."""
    import asyncio

    from .serve import ReportCollector

    args = build_serve_parser().parse_args(argv)
    if args.log_json is not None:
        from .obs import configure_logging

        configure_logging(args.log_json)

    async def _serve() -> None:
        collector = ReportCollector(
            host=args.host,
            port=args.port,
            flush_interval=args.flush_interval,
            default_shards=args.shards,
            flush_reports=args.flush_reports,
            high_water=args.high_water,
            coalesce_frames=args.coalesce,
            executor=args.executor,
            transport=args.transport,
        )
        await collector.start()
        print(f"repro-serve: collecting reports on {collector.host}:{collector.port}")
        metrics_server = None
        if args.metrics_port is not None:
            import json as _json

            from .obs import (
                enable,
                enable_tracing,
                get_registry,
                get_tracer,
                merge_snapshots,
                render_snapshot,
                start_metrics_server,
            )
            from .obs.http import JSON_CONTENT_TYPE

            # The engine/stream layers record into the process registry;
            # flip it (and the span ring) on so the ops surface exposes
            # them next to the collector's always-exact wire counters.
            enable()
            enable_tracing()

            def render_all() -> str:
                # Fold shard-worker snapshots (shipped back on drains,
                # relabelled per worker/session) in with the live
                # registries, so one scrape covers every process.
                snapshots = [
                    collector.metrics.snapshot(),
                    get_registry().snapshot(),
                ]
                snapshots.extend(collector.registry.worker_metrics())
                return render_snapshot(merge_snapshots(snapshots))

            def healthz_route():
                verdict = collector.health()
                status = (
                    "503 Service Unavailable"
                    if verdict.get("status") == "fail"
                    else "200 OK"
                )
                return status, JSON_CONTENT_TYPE, _json.dumps(verdict) + "\n"

            def traces_route():
                document = get_tracer().export_chrome()
                return "200 OK", JSON_CONTENT_TYPE, _json.dumps(document) + "\n"

            metrics_server = await start_metrics_server(
                args.host,
                args.metrics_port,
                (collector.metrics, get_registry()),
                render=render_all,
                routes={"/healthz": healthz_route, "/traces": traces_route},
            )
            print(
                "repro-serve: metrics on "
                f"http://{args.host}:{args.metrics_port}/metrics "
                "(+ /healthz, /traces)"
            )
        try:
            await collector.serve_forever()
        finally:
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            await collector.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro-serve: stopped")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
