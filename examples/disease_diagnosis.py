"""Classwise clinical statistics for diagnosis models (paper's intro).

A hospital consortium trains an early-diagnosis model and needs the
distribution of each test value *per outcome class* (healthy vs diabetic)
— classwise frequencies, not global ones — without collecting raw
records.  We run the per-feature protocol of the paper's Section VII on
the Diabetes-like study and show (a) the RMSE per framework and (b) that
the privately estimated class-conditional histogram preserves the shifted
mode that makes the feature diagnostic.

Run:  python examples/disease_diagnosis.py
"""

import numpy as np

from repro import estimate_frequencies
from repro.datasets import diabetes_like
from repro.metrics import rmse


def main() -> None:
    rng = np.random.default_rng(3)
    study = diabetes_like(scale=1.0, rng=rng)  # 100k patients, 8 features
    print(f"study: {study.name} with {study.n_features} features")

    epsilon = 2.0
    print(f"\nper-framework RMSE at eps = {epsilon} (averaged over features):")
    for framework in ("hec", "ptj", "pts", "pts-cp"):
        errors = []
        for data in study:
            estimate = estimate_frequencies(
                data, framework=framework, epsilon=epsilon,
                rng=np.random.default_rng(11),
            )
            errors.append(rmse(estimate, data.pair_counts()))
        print(f"  {framework:7s} mean RMSE = {np.mean(errors):9.1f}")

    # Inspect a moderately wide feature (d = 97, glucose-like): does the
    # private estimate preserve the diagnostic shift between the classes?
    feature = [d for d in study if d.n_items == 97][0]
    truth = feature.pair_counts().astype(np.float64)
    estimate = np.mean(
        [
            estimate_frequencies(
                feature, framework="pts-cp", epsilon=3.0,
                rng=np.random.default_rng(5 + t),
            )
            for t in range(10)
        ],
        axis=0,
    )
    # Aggregate to a robust statistic: the share of each class's mass in
    # the upper half of the value range.  Summing ~50 unbiased cell
    # estimates averages the LDP noise away.
    half = feature.n_items // 2

    def upper_share(counts: np.ndarray, label: int) -> float:
        total = counts[label].sum()
        return float(counts[label, half:].sum() / max(total, 1.0))

    print(f"\nfeature {feature.name}: share of mass in the upper value range")
    print(
        "  true:               "
        f"healthy = {upper_share(truth, 0):5.2f}   diabetic = {upper_share(truth, 1):5.2f}"
    )
    print(
        "  private (pts-cp):   "
        f"healthy = {upper_share(estimate, 0):5.2f}   diabetic = {upper_share(estimate, 1):5.2f}"
    )
    print("\nthe diagnostic upward shift of the diabetic class survives ε-LDP.")


if __name__ == "__main__":
    main()
