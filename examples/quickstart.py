"""Quickstart: multi-class frequency estimation in a dozen lines.

Each of 50,000 users holds a (class label, item) pair.  We estimate the
per-class item counts under ε-LDP with all four frameworks and compare
their RMSE — reproducing the paper's Fig. 6 ordering in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LabelItemDataset, estimate_frequencies
from repro.metrics import rmse


def main() -> None:
    rng = np.random.default_rng(7)

    # Synthesise 50k users over 3 classes x 64 items; class c prefers a
    # different slice of the catalogue.
    n_users, n_classes, n_items = 50_000, 3, 64
    labels = rng.integers(0, n_classes, n_users)
    base = rng.dirichlet(np.ones(n_items) * 0.3, size=n_classes)
    items = np.array([rng.choice(n_items, p=base[label]) for label in labels])
    data = LabelItemDataset(labels, items, n_classes, n_items, name="quickstart")

    truth = data.pair_counts()
    print(f"dataset: {data}")
    print(f"true count of pair (class 0, item 0): {truth[0, 0]}")
    print()

    epsilon = 2.0
    print(f"frequency estimation at eps = {epsilon}:")
    for framework in ("hec", "ptj", "pts", "pts-cp"):
        estimate = estimate_frequencies(
            data, framework=framework, epsilon=epsilon, rng=rng
        )
        print(
            f"  {framework:7s} RMSE = {rmse(estimate, truth):8.1f}   "
            f"estimated (0,0) = {estimate[0, 0]:8.1f}"
        )
    print()
    print("expected ordering (paper Fig. 6): hec worst; ptj best; pts-cp <= pts")


if __name__ == "__main__":
    main()
