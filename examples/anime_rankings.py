"""Gendered anime rankings (the paper's MyAnimeList workload).

A streaming platform wants each gender's top-20 shows for personalised
recommendations.  The catalogue head is shared — hit shows are hits with
everyone — which is exactly the structure the paper's PTS pipeline
exploits through global candidate generation.  We demonstrate the effect
by toggling the "global" optimization on and off, and show the validity
flag's value by also toggling "vp" (paper Table III rows).

Run:  python examples/anime_rankings.py          (~30 seconds)
"""

import numpy as np

from repro.core.topk import MultiClassTopK
from repro.datasets import anime_like
from repro.metrics import average_over_classes


def main() -> None:
    data = anime_like(scale=0.1, rng=np.random.default_rng(9))
    truth = data.true_topk(20)
    shared = len(set(truth[0]) & set(truth[1]))
    print(f"workload: {data}")
    print(f"top-20 shows shared between genders: {shared} / 20")
    print()

    k, epsilon, trials = 20, 5.0, 3
    configurations = [
        ((), "PEM baseline"),
        (("vp",), "+ validity perturbation"),
        (("shuffle", "vp"), "+ shuffling"),
        (("shuffle", "vp", "cp"), "+ correlated perturbation"),
        (("shuffle", "vp", "cp", "global"), "+ global candidates (full stack)"),
    ]
    print(f"PTS ablation at eps = {epsilon}, k = {k} (paper Table III):")
    for toggles, label in configurations:
        scores = []
        for trial in range(trials):
            scheme = MultiClassTopK(
                "pts", k=k, epsilon=epsilon,
                n_classes=data.n_classes, n_items=data.n_items,
                optimizations=toggles, rng=np.random.default_rng(100 + trial),
            )
            scores.append(average_over_classes(scheme.mine(data), truth, "f1"))
        print(f"  {label:35s} F1 = {np.mean(scores):.3f}")
    print()
    print("each optimization stacks an improvement, as in the paper's ablation.")


if __name__ == "__main__":
    main()
