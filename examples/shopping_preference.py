"""Shopping preference across age groups (the paper's JD motivation).

A retailer wants each age group's top-20 products without learning any
individual's purchases.  We run the paper's full optimized pipeline
(global candidate generation + per-class shuffled-bucket mining with
validity/correlated perturbation) on the JD-like workload and compare it
with the PEM-based baseline — including the per-class view showing how
the optimized PTS scheme still serves the small 46-55 and 56+ age groups
that joint (PTJ) mining starves (paper Fig. 8).

Run:  python examples/shopping_preference.py          (~1 minute)
"""

import numpy as np

from repro.core.topk import MultiClassTopK
from repro.datasets import jd_like
from repro.metrics import average_over_classes, f1_score

AGE_GROUPS = ["<=25", "26-35", "36-45", "46-55", ">=56"]


def main() -> None:
    rng = np.random.default_rng(42)
    data = jd_like(scale=0.05, rng=rng)  # ~420k purchases, 28k products
    print(f"workload: {data}")
    print(f"age-group sizes: {dict(zip(AGE_GROUPS, data.class_counts().tolist()))}")
    print()

    k, epsilon = 20, 6.0
    truth = data.true_topk(k)

    results = {}
    for framework, optimized, label in (
        ("pts", False, "PTS + PEM baseline"),
        ("ptj", True, "PTJ-Shuffling+VP"),
        ("pts", True, "PTS-Shuffling+VP+CP (paper)"),
    ):
        scheme = MultiClassTopK.for_framework(
            framework,
            k=k,
            epsilon=epsilon,
            n_classes=data.n_classes,
            n_items=data.n_items,
            optimized=optimized,
            rng=np.random.default_rng(1),
        )
        mined = scheme.mine(data)
        results[label] = mined
        f1 = average_over_classes(mined, truth, "f1")
        ncr = average_over_classes(mined, truth, "ncr")
        print(f"{label:30s} F1 = {f1:.3f}  NCR = {ncr:.3f}")

    print()
    print(f"per-age-group F1 at eps = {epsilon} (paper Fig. 8 effect):")
    header = "".join(f"{g:>8s}" for g in AGE_GROUPS)
    print(f"{'method':30s}{header}")
    for label, mined in results.items():
        scores = [
            f1_score(mined.get(c, []), truth[c]) for c in range(data.n_classes)
        ]
        print(f"{label:30s}" + "".join(f"{score:8.2f}" for score in scores))
    print()
    print("note how the joint (PTJ) scheme returns nothing for the small")
    print("46-55 / >=56 groups, while the optimized PTS pipeline covers them.")


if __name__ == "__main__":
    main()
