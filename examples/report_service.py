"""Report-collection service, end to end in one process.

Starts the asyncio :class:`~repro.serve.collector.ReportCollector` on an
OS-assigned localhost port, then simulates a report population: four
concurrent clients each stream one privatised report per user into the
same hosted PTS session, querying estimates mid-stream over the control
channel.  A second cohort mines per-class top-k round by round through
the same collector, driving round advancement from the client side.

The whole run is traced: the clients announce a trace context on their
HELLOs, the collector links its flush/drain spans under the same trace
ids, and the script ends by polling the HEALTH verdict and exporting the
span ring as Chrome trace-event JSON (load ``report_service_trace.json``
in https://ui.perfetto.dev to see the request path across layers).

Run:  python examples/report_service.py
"""

import asyncio

import numpy as np

from repro.obs import enable_tracing, get_tracer
from repro.metrics import rmse
from repro.serve import (
    ReportClient,
    ReportCollector,
    fetch_health,
    fetch_stats,
    generate_load,
)


async def monitor_stats(collector: ReportCollector, period: float = 0.1) -> None:
    """Poll the collector's STATS frame while load is running.

    A monitor needs no session handshake — ``fetch_stats`` opens a bare
    connection and the collector answers STATS pre-HELLO, reading its
    own always-exact registry without draining any session's queue.
    """
    while True:
        live = await fetch_stats(collector.host, collector.port)
        c = live["collector"]
        lag = sum(s["pending"] for s in live["sessions"])
        print(f"  [monitor] {c['reports_ingested']:,} reports ingested, "
              f"{c['connections_active']} connections, {lag:,} pending")
        await asyncio.sleep(period)


async def frequency_cohort(collector: ReportCollector) -> None:
    rng = np.random.default_rng(7)
    n_users, n_classes, n_items = 120_000, 3, 64
    labels = rng.integers(0, n_classes, n_users)
    base = rng.dirichlet(np.ones(n_items) * 0.3, size=n_classes)
    items = np.empty(n_users, dtype=np.int64)
    for label in range(n_classes):
        mask = labels == label
        items[mask] = rng.choice(n_items, size=int(mask.sum()), p=base[label])
    truth = np.bincount(labels * n_items + items,
                        minlength=n_classes * n_items).reshape(n_classes, n_items)

    config = dict(
        session="frequencies", framework="pts", epsilon=2.0,
        n_classes=n_classes, n_items=n_items, seed=11, shards=2,
    )

    # Half the population first, then a mid-stream query, then the rest —
    # with a STATS monitor polling live ingest progress alongside.
    half = n_users // 2
    monitor = asyncio.ensure_future(monitor_stats(collector))
    try:
        load = await generate_load(
            collector.host, collector.port, config,
            labels[:half], items[:half], n_connections=4,
        )
    finally:
        monitor.cancel()
        try:
            await monitor
        except asyncio.CancelledError:
            pass
    print(f"first wave:  {load['reports']:,} reports at "
          f"{load['reports_per_sec']:,.0f}/sec over {load['n_connections']} connections")
    live = await fetch_stats(collector.host, collector.port)
    frames = live["collector"]["frames"]
    print(f"wire frames: {frames.get('hello', 0)} hello, "
          f"{frames.get('reports', 0)} reports, {frames.get('bye', 0)} bye; "
          f"{live['collector']['reports_ingested']:,} reports collected")

    client = await ReportClient.connect(collector.host, collector.port, **config)
    async with client:
        mid = await client.estimate()
        print(f"mid-stream:  RMSE vs half-time truth = "
              f"{rmse(mid, truth * 0.5):,.1f}")

        await client.send(labels[half:], items[half:])
        final = await client.estimate()
        stats = await client.stats()
    print(f"final:       RMSE = {rmse(final, truth):,.1f} after "
          f"{stats['n_ingested']:,} reports")
    print(f"top-3 items, class 0: served "
          f"{sorted(int(i) for i in np.argsort(final[0])[-3:])} "
          f"vs true {sorted(int(i) for i in np.argsort(truth[0])[-3:])}")


async def topk_cohort(collector: ReportCollector) -> None:
    rng = np.random.default_rng(13)
    n_classes, n_items, per_round = 2, 256, 30_000
    heavy = {0: 41, 1: 200}
    config = dict(
        session="miner", kind="topk", k=3, epsilon=4.0,
        n_classes=n_classes, n_items=n_items, seed=3,
    )

    client = await ReportClient.connect(collector.host, collector.port, **config)
    async with client:
        rounds = (await client.stats())["n_rounds"]
        print(f"\ntop-k miner: {rounds} rounds over d = {n_items}")
        for _ in range(rounds):
            labels = rng.integers(0, n_classes, per_round)
            items = rng.integers(0, n_items, per_round)
            hot = rng.random(per_round) < 0.4
            items[hot] = np.vectorize(heavy.get)(labels[hot])
            await client.send(labels, items)
            state = await client.advance_round()
        mined = await client.topk()
    print(f"mined top-3: {mined} (planted heavy hitters: {heavy})")
    assert state["finished"]


async def main() -> None:
    enable_tracing()  # same switch as REPRO_OBS=1
    async with ReportCollector() as collector:
        print(f"collector listening on {collector.host}:{collector.port}")
        await frequency_cohort(collector)
        await topk_cohort(collector)

        # The operator's view: a machine-readable verdict with reasons
        # (the same payload /healthz serves), then the trace export.
        verdict = await fetch_health(collector.host, collector.port)
        print(f"\nhealth: {verdict['status']}")
        for check in verdict["checks"]:
            scope = f" [{check['session']}]" if "session" in check else ""
            print(f"  {check['status']:4s} {check['check']}{scope}: "
                  f"{check['reason']}")
    tracer = get_tracer()
    path = tracer.write_chrome("report_service_trace.json")
    print(f"\ntrace: {len(tracer.drain_spans())} spans "
          f"({tracer.ring.dropped} dropped) -> {path}")


if __name__ == "__main__":
    asyncio.run(main())
