"""Localhost end-to-end: async clients stream reports into the collector
and the served sessions match their offline counterparts exactly."""

import asyncio
from functools import reduce

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn
from repro.serve import (
    ReportClient,
    ReportCollector,
    ServeError,
    generate_load,
)
from repro.stream import make_session, replay_drain_log


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _population(n=6000, c=3, d=32, seed=4):
    rng = np.random.default_rng(seed)
    return rng.integers(0, c, size=n), rng.integers(0, d, size=n)


def _config(**overrides):
    config = dict(
        session="cohort",
        framework="ptj",
        epsilon=1.0,
        n_classes=3,
        n_items=32,
        mode="simulate",
        seed=17,
        shards=2,
    )
    config.update(overrides)
    return config


class TestExactOfflineEquivalence:
    """The acceptance criterion: N async clients each send one privatised
    report per simulated user; the served estimate equals the offline
    OnlineFrameworkSession result on the same seeded report stream."""

    @pytest.mark.parametrize(
        "framework,mode",
        [("ptj", "simulate"), ("ptj", "protocol"), ("pts", "protocol"),
         ("pts-cp", "simulate"), ("hec", "protocol")],
    )
    def test_served_estimate_matches_offline_replay(self, framework, mode):
        labels, items = _population()
        config = _config(framework=framework, mode=mode)

        async def serve() -> tuple[np.ndarray, list]:
            async with ReportCollector(record=True) as collector:
                load = await generate_load(
                    collector.host, collector.port, config,
                    labels, items, n_connections=4, chunk_size=512,
                )
                assert load["reports"] == labels.size
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    served = await client.estimate()
                log = list(collector.registry.get("cohort").drain_log)
            return served, log

        served, log = run(serve())
        assert sum(entry[1].size for entry in log) == labels.size

        # Offline: identically seeded per-shard sessions replaying the
        # recorded drain order reproduce the served state bit-for-bit.
        shards = [
            make_session(
                framework,
                epsilon=config["epsilon"],
                n_classes=config["n_classes"],
                n_items=config["n_items"],
                mode=mode,
                rng=child,
            )
            for child in spawn(ensure_rng(config["seed"]), config["shards"])
        ]
        replayed = replay_drain_log(log, shards)
        offline = reduce(lambda a, b: a.merge(b), replayed)
        assert offline.n_ingested == labels.size
        np.testing.assert_array_equal(served, offline.estimate())

    def test_equivalence_holds_with_query_cache_engaged(self):
        """Bit-identical equivalence survives the epoch cache: repeated
        mid-stream and post-stream queries (hits and misses alike) all
        answer exactly what an offline replay of the drain log computes."""
        labels, items = _population()
        config = _config(framework="ptj", mode="simulate")

        async def serve():
            async with ReportCollector(record=True) as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    half = labels.size // 2
                    await client.send(labels[:half], items[:half])
                    mid_first = await client.estimate()  # miss: drains half
                    mid_second = await client.estimate()  # epoch hit
                    await client.send(labels[half:], items[half:])
                    final_first = await client.estimate()  # invalidated: miss
                    final_second = await client.estimate()  # hit again
                    log = list(collector.registry.get("cohort").drain_log)
                counters = collector.metrics.snapshot()["counters"]
            return mid_first, mid_second, final_first, final_second, log, counters

        mid_first, mid_second, final_first, final_second, log, counters = run(
            serve()
        )
        session = 'session="cohort"'
        assert counters[f"serve_query_cache_hits_total{{{session}}}"] == 2
        assert counters[f"serve_query_cache_misses_total{{{session}}}"] == 2
        np.testing.assert_array_equal(mid_first, mid_second)
        np.testing.assert_array_equal(final_first, final_second)

        shards = [
            make_session(
                "ptj",
                epsilon=config["epsilon"],
                n_classes=config["n_classes"],
                n_items=config["n_items"],
                mode="simulate",
                rng=child,
            )
            for child in spawn(ensure_rng(config["seed"]), config["shards"])
        ]
        replayed = replay_drain_log(log, shards)
        offline = reduce(lambda a, b: a.merge(b), replayed)
        assert offline.n_ingested == labels.size
        np.testing.assert_array_equal(final_first, offline.estimate())


class TestDecayedServing:
    def test_decayed_session_replay_bit_identical_with_cache_engaged(self):
        """A sliding-window session's drain log replays to the exact live
        state — decay events included — while the query cache serves
        repeated queries; every answer matches the offline replay."""
        labels, items = _population()
        config = _config(framework="ptj", mode="simulate", window=2500)

        async def serve():
            async with ReportCollector(record=True) as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    half = labels.size // 2
                    await client.send(labels[:half], items[:half])
                    mid_first = await client.estimate()  # miss: drains+decays
                    mid_second = await client.estimate()  # epoch hit
                    await client.send(labels[half:], items[half:])
                    final_first = await client.estimate()
                    final_second = await client.estimate()
                    log = list(collector.registry.get("cohort").drain_log)
                counters = collector.metrics.snapshot()["counters"]
            return mid_first, mid_second, final_first, final_second, log, counters

        mid_first, mid_second, final_first, final_second, log, counters = run(
            serve()
        )
        session = 'session="cohort"'
        assert counters[f"serve_query_cache_hits_total{{{session}}}"] == 2
        assert counters[f"serve_query_cache_misses_total{{{session}}}"] == 2
        np.testing.assert_array_equal(mid_first, mid_second)
        np.testing.assert_array_equal(final_first, final_second)

        decay_events = [entry for entry in log if entry[0] == "decay"]
        assert decay_events, "a 6000-report stream must tick a 2500 window"
        # The window bounds the effective cohort despite 6000 sent.
        assert float(final_first.sum()) < labels.size

        shards = [
            make_session(
                "ptj",
                epsilon=config["epsilon"],
                n_classes=config["n_classes"],
                n_items=config["n_items"],
                mode="simulate",
                rng=child,
            )
            for child in spawn(ensure_rng(config["seed"]), config["shards"])
        ]
        replayed = replay_drain_log(log, shards)
        offline = reduce(lambda a, b: a.merge(b), replayed)
        np.testing.assert_array_equal(final_first, offline.estimate())

    def test_cache_invalidates_across_out_of_band_decay(self):
        """Ageing that no submit accompanied (drain.age) must still bust
        the epoch cache: the next query recomputes instead of serving the
        pre-decay answer."""
        labels, items = _population(n=2000)
        config = _config(session="aged", shards=1)

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    before = await client.estimate()  # miss
                    cached = await client.estimate()  # hit
                    hosted = collector.registry.get("aged")
                    hosted._drain.age(0.5)  # no submit, state changed
                    after = await client.estimate()  # must miss
                    again = await client.estimate()  # hit on the new epoch
                counters = collector.metrics.snapshot()["counters"]
            return before, cached, after, again, counters

        before, cached, after, again, counters = run(scenario())
        session = 'session="aged"'
        assert counters[f"serve_query_cache_hits_total{{{session}}}"] == 2
        assert counters[f"serve_query_cache_misses_total{{{session}}}"] == 2
        np.testing.assert_array_equal(before, cached)
        np.testing.assert_array_equal(after, again)
        # The decay halved the state; a stale cache would have hidden it.
        assert not np.array_equal(before, after)
        assert float(after.sum()) == pytest.approx(
            float(before.sum()) * 0.5, rel=0.05
        )

    def test_drift_query_flags_distribution_shift(self):
        """The drift control query scores residuals against the variance
        bound: quiet under a stable stream, flagged (with cell
        coordinates and telemetry) after a hard shift."""
        rng = np.random.default_rng(11)
        c, d, n = 3, 32, 4000
        config = _config(session="drifty", epsilon=4.0, window=4000, shards=1)

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(
                        rng.integers(0, c, n), rng.integers(0, d, n)
                    )
                    first = await client.drift()
                    await client.send(
                        rng.integers(0, c, n), rng.integers(0, d, n)
                    )
                    stable = await client.drift()
                    await client.send(
                        np.zeros(n, dtype=np.int64),
                        np.full(n, 7, dtype=np.int64),
                    )
                    shifted = await client.drift(threshold=4.0)
                gauges = collector.metrics.snapshot()["gauges"]
                counters = collector.metrics.snapshot()["counters"]
            return first, stable, shifted, gauges, counters

        first, stable, shifted, gauges, counters = run(scenario())
        assert first["score"] == 0.0 and not first["drifted"]
        assert not stable["drifted"], stable
        assert shifted["drifted"] and [0, 7] in shifted["flagged"]
        assert shifted["n_ingested"] == 3 * n
        session = 'session="drifty"'
        assert gauges[f"serve_drift_score{{{session}}}"] == pytest.approx(
            shifted["score"]
        )
        assert counters[f"serve_drift_events_total{{{session}}}"] == 1

    def test_window_config_validation(self):
        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="window"):
                    await ReportClient.connect(
                        collector.host,
                        collector.port,
                        **_config(window=1000, decay=0.5, decay_every=100),
                    )
                with pytest.raises(ServeError, match="window"):
                    await ReportClient.connect(
                        collector.host, collector.port, **_config(window=1)
                    )

        run(scenario())


class TestServiceBehaviour:
    def test_mid_stream_queries_see_buffered_reports(self):
        labels, items = _population(n=1000)
        config = _config(session="midstream", epsilon=4.0)

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    stats = await client.stats()
                    estimate = await client.estimate()
                    sizes = await client.class_sizes()
                return stats, estimate, sizes

        stats, estimate, sizes = run(scenario())
        assert stats["n_ingested"] == 1000
        assert stats["pending"] == 0
        assert estimate.shape == (3, 32)
        assert abs(estimate.sum() - 1000) < 1000
        assert sizes.shape == (3,)

    def test_concurrent_sessions_are_isolated(self):
        labels, items = _population(n=800)

        async def scenario():
            async with ReportCollector() as collector:
                first = await ReportClient.connect(
                    collector.host, collector.port, **_config(session="a")
                )
                second = await ReportClient.connect(
                    collector.host, collector.port,
                    **_config(session="b", framework="pts", epsilon=2.0),
                )
                async with first, second:
                    await first.send(labels, items)
                    stats_a = await first.stats()
                    stats_b = await second.stats()
                assert len(collector.registry) == 2
                return stats_a, stats_b

        stats_a, stats_b = run(scenario())
        assert stats_a["n_accepted"] == 800
        assert stats_b["n_accepted"] == 0

    def test_join_with_mismatched_config_refused(self):
        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **_config(session="strict")
                )
                async with client:
                    with pytest.raises(ServeError, match="different config"):
                        await ReportClient.connect(
                            collector.host,
                            collector.port,
                            **_config(session="strict", epsilon=9.0),
                        )

        run(scenario())

    def test_join_with_matching_config_shares_state(self):
        labels, items = _population(n=600)
        config = _config(session="shared")

        async def scenario():
            async with ReportCollector() as collector:
                writer = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with writer:
                    await writer.send(labels, items)
                    await writer.stats()  # forces a flush+drain
                reader = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with reader:
                    assert reader.hello["created"] is False
                    return await reader.stats()

        stats = run(scenario())
        assert stats["n_ingested"] == 600

    def test_query_before_any_data_is_recoverable(self):
        labels, items = _population(n=200)
        config = _config(session="early")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    with pytest.raises(ServeError, match="no data ingested"):
                        await client.estimate()
                    await client.send(labels, items)
                    return await client.estimate()

        estimate = run(scenario())
        assert estimate.shape == (3, 32)

    def test_framework_topk_needs_explicit_k(self):
        labels, items = _population(n=500)
        config = _config(session="fwtopk", epsilon=4.0)

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    with pytest.raises(ServeError, match="explicit k"):
                        await client.topk()
                    with pytest.raises(ServeError, match="must be an integer"):
                        await client.query("topk", k="three")
                    top = await client.topk(5)  # connection survived
                    return top

        top = run(scenario())
        assert set(top) == {0, 1, 2}
        assert all(len(ids) == 5 for ids in top.values())

    def test_topk_session_rejects_decay_config(self):
        config = dict(
            session="nodk", kind="topk", k=2, epsilon=2.0,
            n_classes=2, n_items=16, decay=0.9, decay_every=100,
        )

        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="do not apply"):
                    await ReportClient.connect(
                        collector.host, collector.port, **config
                    )

        run(scenario())

    def test_malformed_reports_body_gets_error_frame(self):
        """An unaligned REPORTS body must come back as a wire ERROR, not a
        silent disconnect."""
        import struct

        from repro.serve import protocol

        config = _config(session="garbled")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                bad_body = struct.pack("!I", 1) + b"\x00" * 7
                client._writer.write(
                    protocol.encode_frame(protocol.REPORTS, bad_body)
                )
                await client._writer.drain()
                # The next request surfaces the collector's pending ERROR.
                with pytest.raises(ServeError, match="int32-aligned"):
                    await client.stats()
                client.abort()

        run(scenario())

    def test_unknown_query_rejected(self):
        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **_config(session="q")
                )
                async with client:
                    with pytest.raises(ServeError, match="unknown query"):
                        await client.query("median")

        run(scenario())

    def test_out_of_domain_reports_close_the_connection(self):
        config = _config(session="bounds")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                await client.send(np.array([0]), np.array([999]))
                with pytest.raises(
                    (ServeError, ConnectionError, asyncio.IncompleteReadError)
                ):
                    await client.stats()
                client.abort()

        run(scenario())

    def test_omitted_and_explicit_default_label_fraction_join(self):
        """An omitted label_fraction and the explicit default 0.5 describe
        the same pts cohort and must canonicalise identically."""
        base = _config(session="lf", framework="pts")

        async def scenario():
            async with ReportCollector() as collector:
                creator = await ReportClient.connect(
                    collector.host, collector.port, **base
                )
                async with creator:
                    joiner = await ReportClient.connect(
                        collector.host, collector.port,
                        **base, label_fraction=0.5,
                    )
                    async with joiner:
                        assert joiner.hello["created"] is False

        run(scenario())

    def test_label_fraction_rejected_for_single_oracle_frameworks(self):
        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="does not apply"):
                    await ReportClient.connect(
                        collector.host, collector.port,
                        **_config(session="lf2", framework="ptj"),
                        label_fraction=0.5,
                    )

        run(scenario())

    def test_oversized_domain_refused(self):
        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="ceiling"):
                    await ReportClient.connect(
                        collector.host, collector.port,
                        **_config(session="huge", n_items=10**7),
                    )

        run(scenario())

    def test_session_cap_bounds_registry_growth(self):
        async def scenario():
            async with ReportCollector(max_sessions=2) as collector:
                for name in ("one", "two"):
                    client = await ReportClient.connect(
                        collector.host, collector.port, **_config(session=name)
                    )
                    await client.close()
                with pytest.raises(ServeError, match="session cap"):
                    await ReportClient.connect(
                        collector.host, collector.port, **_config(session="three")
                    )
                # Joining an existing session still works at the cap.
                rejoin = await ReportClient.connect(
                    collector.host, collector.port, **_config(session="one")
                )
                assert rejoin.hello["created"] is False
                await rejoin.close()

        run(scenario())

    def test_zero_shards_refused(self):
        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="shards must be in"):
                    await ReportClient.connect(
                        collector.host, collector.port,
                        **_config(session="z", shards=0),
                    )

        run(scenario())

    def test_unknown_config_keys_refused(self):
        async def scenario():
            async with ReportCollector() as collector:
                with pytest.raises(ServeError, match="unknown session config"):
                    await ReportClient.connect(
                        collector.host, collector.port,
                        **_config(session="x"), frobnicate=1,
                    )

        run(scenario())

    def test_backpressure_marks_preserve_every_report(self):
        """Tiny water marks force the pause/resume path; no report is
        lost or duplicated on the way to the session state."""
        labels, items = _population(n=20_000)
        config = _config(session="pressure", shards=1)

        async def scenario():
            async with ReportCollector(
                flush_reports=256, high_water=512
            ) as collector:
                load = await generate_load(
                    collector.host, collector.port, config,
                    labels, items, n_connections=3, chunk_size=128,
                )
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    stats = await client.stats()
                return load, stats

        load, stats = run(scenario())
        assert load["reports"] == 20_000
        assert stats["n_ingested"] == 20_000

    def test_single_report_per_user_protocol_message(self):
        config = _config(session="single")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    for user in range(10):
                        await client.send_one(user % 3, user % 32)
                    stats = await client.stats()
                ingested = await client.close()
                return stats, ingested

        stats, _ = run(scenario())
        assert stats["n_ingested"] == 10


class TestTopKOverTheWire:
    def test_round_by_round_mining_via_control_channel(self):
        c, d, per_round = 2, 16, 4000
        rng = np.random.default_rng(9)
        heavy = {0: 5, 1: 12}
        config = dict(
            session="miner", kind="topk", k=2, epsilon=6.0,
            n_classes=c, n_items=d, mode="simulate", seed=3,
        )

        def round_batch():
            labels = rng.integers(0, c, size=per_round)
            items = rng.integers(0, d, size=per_round)
            hot = rng.random(per_round) < 0.6
            items[hot] = np.vectorize(heavy.get)(labels[hot])
            return labels, items

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    stats = await client.stats()
                    rounds = stats["n_rounds"]
                    for _ in range(rounds):
                        labels, items = round_batch()
                        await client.send(labels, items)
                        state = await client.advance_round()
                    assert state["finished"]
                    return await client.topk()

        mined = run(scenario())
        assert mined[0][0] == heavy[0]
        assert mined[1][0] == heavy[1]

    def test_framework_queries_rejected_for_topk_session(self):
        config = dict(
            session="miner2", kind="topk", k=2, epsilon=2.0,
            n_classes=2, n_items=16, seed=1,
        )

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    with pytest.raises(ServeError, match="unknown query"):
                        await client.estimate()

        run(scenario())
