"""The wire codec: frame round-trips, limits, and malformed input."""

import asyncio
import struct

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import ServeError, WireError


def _roundtrip(frame: bytes):
    """Feed an encoded frame through the async reader."""

    async def read():
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        return await protocol.read_frame(reader)

    return asyncio.run(read())


class TestFrames:
    def test_json_frame_roundtrip(self):
        frame = protocol.encode_json(protocol.QUERY, {"query": "estimate"})
        frame_type, body = _roundtrip(frame)
        assert frame_type == protocol.QUERY
        assert protocol.decode_json(body) == {"query": "estimate"}

    def test_bye_frame_has_empty_body(self):
        frame_type, body = _roundtrip(protocol.bye_frame())
        assert frame_type == protocol.BYE
        assert body == b""

    def test_unknown_frame_type_rejected_on_encode_and_decode(self):
        with pytest.raises(WireError):
            protocol.encode_frame(0x7F)
        bogus = struct.pack("!I", 1) + bytes((0x7F,))
        with pytest.raises(WireError):
            _roundtrip(bogus)

    def test_oversized_frame_rejected(self):
        header = struct.pack("!I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError):
            _roundtrip(header + b"x")

    def test_truncated_frame_raises_incomplete_read(self):
        frame = protocol.encode_json(protocol.REPLY, {"ok": True})
        with pytest.raises(asyncio.IncompleteReadError):
            _roundtrip(frame[:-2])

    def test_non_object_json_rejected(self):
        with pytest.raises(WireError):
            protocol.decode_json(b"[1, 2]")
        with pytest.raises(WireError):
            protocol.decode_json(b"\xff\xfe")


class TestReports:
    def test_reports_roundtrip_exact(self):
        labels = np.array([0, 2, 1, 2], dtype=np.int64)
        items = np.array([5, 0, 31, 7], dtype=np.int64)
        frame = protocol.encode_reports(labels, items)
        frame_type, body = _roundtrip(frame)
        assert frame_type == protocol.REPORTS
        out_labels, out_items = protocol.decode_reports(body)
        assert out_labels.dtype == np.int64
        np.testing.assert_array_equal(out_labels, labels)
        np.testing.assert_array_equal(out_items, items)

    def test_empty_reports_frame(self):
        frame = protocol.encode_reports([], [])
        _frame_type, body = _roundtrip(frame)
        out_labels, out_items = protocol.decode_reports(body)
        assert out_labels.size == 0 and out_items.size == 0

    def test_misaligned_columns_rejected(self):
        with pytest.raises(WireError):
            protocol.encode_reports([0, 1], [3])

    def test_count_mismatch_rejected(self):
        body = struct.pack("!I", 5) + np.zeros(4, dtype="<i4").tobytes()
        with pytest.raises(WireError):
            protocol.decode_reports(body)

    def test_misaligned_body_rejected(self):
        body = struct.pack("!I", 1) + b"\x00" * 7  # not a multiple of 4
        with pytest.raises(WireError, match="int32-aligned"):
            protocol.decode_reports(body)

    def test_int32_overflow_rejected_not_wrapped(self):
        with pytest.raises(WireError, match="int32 wire format"):
            protocol.encode_reports([2**32], [0])
        with pytest.raises(WireError, match="int32 wire format"):
            protocol.encode_reports([0], [-(2**31) - 1])

    def test_non_integer_columns_rejected(self):
        with pytest.raises(WireError, match="must be integers"):
            protocol.encode_reports([0.5], [1])

    def test_truncated_count_rejected(self):
        with pytest.raises(WireError):
            protocol.decode_reports(b"\x00")

    def test_chunk_spans_cover_population(self):
        spans = list(protocol.chunk_spans(10_000, 4096))
        sizes = [len(range(*span.indices(10_000))) for span in spans]
        assert sum(sizes) == 10_000
        assert max(sizes) == 4096


class TestHelpers:
    def test_hello_frame_elides_none(self):
        frame = protocol.hello_frame({"session": "s", "seed": None})
        _t, body = _roundtrip(frame)
        assert protocol.decode_json(body) == {"session": "s"}

    def test_error_frame_carries_kind(self):
        _t, body = _roundtrip(protocol.error_frame(ValueError("boom")))
        obj = protocol.decode_json(body)
        assert obj == {"ok": False, "error": "boom", "kind": "ValueError"}

    def test_serve_error_is_repro_error(self):
        from repro.exceptions import ReproError

        assert issubclass(ServeError, ReproError)
        assert issubclass(WireError, ServeError)
