"""The zero-allocation ingest fast lane: ring buffers, counting-sort
flushes, coalesced frame decode, and the epoch-cached query plane."""

import asyncio

import numpy as np
import pytest

from repro.serve import ReportClient, ReportCollector, protocol
from repro.serve.protocol import WireError
from repro.serve.ringbuf import (
    FlushArena,
    MIN_RING_CAPACITY,
    ReportRing,
    _pow2_at_least,
)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _reader(*frames, coalesce=64):
    stream = asyncio.StreamReader()
    stream.feed_data(b"".join(frames))
    stream.feed_eof()
    return protocol.FrameReader(stream, coalesce=coalesce)


def _reports(n, seed=0, c=5, d=64):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, c, n).astype(np.int32),
        rng.integers(0, d, n).astype(np.int32),
    )


class TestReportRing:
    def test_append_consume_roundtrip_in_arrival_order(self):
        ring = ReportRing()
        labels, items = _reports(300)
        ring.append(labels[:200], items[:200])
        ring.append(labels[200:], items[200:])
        assert len(ring) == 300
        out_l = np.empty(300, dtype=np.int64)
        out_i = np.empty(300, dtype=np.int64)
        assert ring.consume(out_l, out_i) == 300
        assert len(ring) == 0
        np.testing.assert_array_equal(out_l, labels)
        np.testing.assert_array_equal(out_i, items)

    def test_wraparound_preserves_order(self):
        ring = ReportRing(capacity=MIN_RING_CAPACITY)
        cap = ring.capacity
        first_l, first_i = _reports(cap - 100, seed=1)
        ring.append(first_l, first_i)
        sink_l = np.empty(cap, dtype=np.int64)
        sink_i = np.empty(cap, dtype=np.int64)
        ring.consume(sink_l, sink_i)  # head now near the buffer's end
        # This append is forced across the wrap point (two slice writes).
        wrap_l, wrap_i = _reports(300, seed=2)
        ring.append(wrap_l, wrap_i)
        assert ring.capacity == cap  # wrapped, not regrown
        out_l = np.empty(300, dtype=np.int64)
        out_i = np.empty(300, dtype=np.int64)
        ring.consume(out_l, out_i)
        np.testing.assert_array_equal(out_l, wrap_l)
        np.testing.assert_array_equal(out_i, wrap_i)

    def test_regrow_at_capacity_boundary_linearises(self):
        ring = ReportRing(capacity=MIN_RING_CAPACITY)
        cap = ring.capacity
        pre_l, pre_i = _reports(cap - 10, seed=3)
        ring.append(pre_l, pre_i)
        sink = np.empty(cap, dtype=np.int64)
        ring.consume(sink, sink.copy())
        # Fill beyond physical capacity while the head sits mid-buffer:
        # the ring must double and keep every report in arrival order.
        big_l, big_i = _reports(cap + 50, seed=4)
        ring.append(big_l[:20], big_i[:20])
        ring.append(big_l[20:], big_i[20:])
        assert ring.capacity == 2 * cap
        assert len(ring) == cap + 50
        out_l = np.empty(cap + 50, dtype=np.int64)
        out_i = np.empty(cap + 50, dtype=np.int64)
        ring.consume(out_l, out_i)
        np.testing.assert_array_equal(out_l, big_l)
        np.testing.assert_array_equal(out_i, big_i)

    def test_regrow_races_a_wrap_boundary(self):
        """Regrow while the live window straddles the wrap point: the
        buffered reports sit as two physical segments (tail of the array
        + its start), and the linearising copy must stitch them back in
        arrival order before the new batch lands."""
        ring = ReportRing(capacity=MIN_RING_CAPACITY)
        cap = ring.capacity
        pre_l, pre_i = _reports(cap - 100, seed=5)
        ring.append(pre_l, pre_i)
        sink = np.empty(cap, dtype=np.int64)
        ring.consume(sink, sink.copy())  # head parked 100 short of the end
        # Buffer a batch across the wrap: 100 reports at the physical end,
        # 200 at the physical start.
        wrapped_l, wrapped_i = _reports(300, seed=6)
        ring.append(wrapped_l, wrapped_i)
        assert ring.capacity == cap  # wrapped in place, no regrow yet
        # Now outrun the capacity while still wrapped: the regrow must
        # linearise both segments in order, then take the new batch.
        burst_l, burst_i = _reports(cap, seed=7)
        ring.append(burst_l, burst_i)
        assert ring.capacity == 2 * cap
        assert len(ring) == 300 + cap
        out_l = np.empty(300 + cap, dtype=np.int64)
        out_i = np.empty(300 + cap, dtype=np.int64)
        ring.consume(out_l, out_i)
        np.testing.assert_array_equal(out_l, np.concatenate([wrapped_l, burst_l]))
        np.testing.assert_array_equal(out_i, np.concatenate([wrapped_i, burst_i]))

    def test_regrow_with_wrap_at_exact_segment_boundary(self):
        """The degenerate wrap: the live window ends exactly at the
        physical end of the array when the regrow hits, so the 'second
        segment' is empty — the copy must not read a stale word from the
        buffer start."""
        ring = ReportRing(capacity=MIN_RING_CAPACITY)
        cap = ring.capacity
        pre_l, pre_i = _reports(cap - 64, seed=8)
        ring.append(pre_l, pre_i)
        sink = np.empty(cap, dtype=np.int64)
        ring.consume(sink, sink.copy())  # head at cap - 64
        edge_l, edge_i = _reports(64, seed=9)
        ring.append(edge_l, edge_i)  # fills precisely to the array end
        big_l, big_i = _reports(cap, seed=10)
        ring.append(big_l, big_i)  # regrows with head+size == cap exactly
        out_l = np.empty(64 + cap, dtype=np.int64)
        out_i = np.empty(64 + cap, dtype=np.int64)
        ring.consume(out_l, out_i)
        np.testing.assert_array_equal(out_l, np.concatenate([edge_l, big_l]))
        np.testing.assert_array_equal(out_i, np.concatenate([edge_i, big_i]))

    def test_capacity_is_a_power_of_two(self):
        for requested in (1, 7, 1024, 1025, 100_000):
            ring = ReportRing(capacity=requested)
            cap = ring.capacity
            assert cap >= max(requested, MIN_RING_CAPACITY)
            assert cap & (cap - 1) == 0
        assert _pow2_at_least(3000) == 4096

    def test_strided_views_append_in_place(self):
        # The collector feeds strided int32 views decoded straight off
        # the wire; the ring must accept them without materialising.
        ring = ReportRing()
        flat = np.arange(20, dtype=np.int32)
        ring.append(flat[0::2], flat[1::2])
        out_l = np.empty(10, dtype=np.int64)
        out_i = np.empty(10, dtype=np.int64)
        ring.consume(out_l, out_i)
        np.testing.assert_array_equal(out_l, flat[0::2])
        np.testing.assert_array_equal(out_i, flat[1::2])


class TestFlushArena:
    def _sorted_reference(self, labels, items):
        order = np.argsort(labels, kind="stable")
        return labels[order].astype(np.int64), items[order].astype(np.int64)

    @pytest.mark.parametrize("n_classes", [1, 3, 5, 300, 70_000])
    def test_class_sort_matches_stable_reference(self, n_classes):
        rng = np.random.default_rng(9)
        labels = rng.integers(0, n_classes, 2000).astype(np.int32)
        items = rng.integers(0, 50, 2000).astype(np.int32)
        ring = ReportRing()
        ring.append(labels, items)
        got_l, got_i = FlushArena().class_sort(ring, n_classes)
        ref_l, ref_i = self._sorted_reference(labels, items)
        assert got_l.dtype == np.int64 and got_i.dtype == np.int64
        np.testing.assert_array_equal(got_l, ref_l)
        np.testing.assert_array_equal(got_i, ref_i)
        assert len(ring) == 0  # the sort drains the ring

    def test_within_class_arrival_order_is_stable(self):
        # Tag items with their arrival index so stability is observable:
        # the exact order the old per-class list buffering produced.
        labels = np.array([2, 0, 2, 1, 0, 2, 1, 0], dtype=np.int32)
        items = np.arange(8, dtype=np.int32)
        ring = ReportRing()
        ring.append(labels[:5], items[:5])
        ring.append(labels[5:], items[5:])
        got_l, got_i = FlushArena().class_sort(ring, 3)
        np.testing.assert_array_equal(got_l, [0, 0, 0, 1, 1, 2, 2, 2])
        np.testing.assert_array_equal(got_i, [1, 4, 7, 3, 6, 0, 2, 5])

    def test_output_batches_are_fresh_not_arena_scratch(self):
        # Drain adapters consume flush batches asynchronously and the
        # drain log retains them forever: a later flush reusing the same
        # memory would corrupt already-submitted reports.
        arena = FlushArena()
        ring = ReportRing()
        first_l, first_i = _reports(500, seed=5)
        ring.append(first_l, first_i)
        out1_l, out1_i = arena.class_sort(ring, 5)
        keep_l, keep_i = out1_l.copy(), out1_i.copy()
        second_l, second_i = _reports(500, seed=6)
        ring.append(second_l, second_i)
        out2_l, out2_i = arena.class_sort(ring, 5)
        assert not np.shares_memory(out1_l, out2_l)
        assert not np.shares_memory(out1_i, out2_i)
        np.testing.assert_array_equal(out1_l, keep_l)
        np.testing.assert_array_equal(out1_i, keep_i)


class TestFrameReader:
    def test_coalesces_consecutive_reports_frames(self):
        columns = [_reports(40, seed=s) for s in range(3)]
        frames = [protocol.encode_reports(l, i) for l, i in columns]
        query = protocol.query_frame("estimate")

        async def scenario():
            reader = _reader(*frames, query)
            frame_type, bodies = await reader.read_batch()
            assert frame_type == protocol.REPORTS
            assert len(bodies) == 3
            for (ref_l, ref_i), body in zip(columns, bodies):
                got_l, got_i = protocol.decode_reports_view(body)
                np.testing.assert_array_equal(got_l, ref_l)
                np.testing.assert_array_equal(got_i, ref_i)
            del bodies  # release buffer views before the next read
            frame_type, body = await reader.read_batch()
            assert frame_type == protocol.QUERY
            assert protocol.decode_json(body) == {"query": "estimate"}

        run(scenario())

    def test_coalesce_cap_bounds_one_batch(self):
        frames = [
            protocol.encode_reports(*_reports(10, seed=s)) for s in range(5)
        ]

        async def scenario():
            reader = _reader(*frames, coalesce=2)
            sizes = []
            for _ in range(3):
                frame_type, bodies = await reader.read_batch()
                assert frame_type == protocol.REPORTS
                sizes.append(len(bodies))
                del bodies
            return sizes

        assert run(scenario()) == [2, 2, 1]

    def test_control_frame_stops_the_batch(self):
        reports = protocol.encode_reports(*_reports(10))
        bye = protocol.bye_frame()

        async def scenario():
            reader = _reader(reports, bye, reports)
            frame_type, bodies = await reader.read_batch()
            assert (frame_type, len(bodies)) == (protocol.REPORTS, 1)
            del bodies
            frame_type, body = await reader.read_batch()
            assert (frame_type, body) == (protocol.BYE, b"")
            frame_type, bodies = await reader.read_batch()
            assert (frame_type, len(bodies)) == (protocol.REPORTS, 1)

        run(scenario())

    def test_malformed_frame_surfaces_on_its_own_read(self):
        good = protocol.encode_reports(*_reports(10))
        import struct

        bogus = struct.pack("!I", 1) + bytes((0x7F,))

        async def scenario():
            reader = _reader(good, bogus)
            frame_type, bodies = await reader.read_batch()
            assert (frame_type, len(bodies)) == (protocol.REPORTS, 1)
            del bodies
            with pytest.raises(WireError):
                await reader.read_batch()

        run(scenario())

    def test_eof_mid_frame_raises_incomplete_read(self):
        frame = protocol.encode_reports(*_reports(10))

        async def scenario():
            reader = _reader(frame[:-3])
            with pytest.raises(asyncio.IncompleteReadError):
                await reader.read_batch()

        run(scenario())

    def test_single_frame_compat_read(self):
        labels, items = _reports(25)

        async def scenario():
            reader = _reader(protocol.encode_reports(labels, items))
            frame_type, body = await reader.read_frame()
            assert frame_type == protocol.REPORTS
            got_l, got_i = protocol.decode_reports(body)
            np.testing.assert_array_equal(got_l, labels)
            np.testing.assert_array_equal(got_i, items)

        run(scenario())


class TestDecodeSemantics:
    def _body(self, labels, items):
        return protocol.encode_reports(labels, items)[5:]  # strip len+type

    def test_decode_reports_owns_writable_columns(self):
        # The contract downstream consumers rely on: exactly one copy
        # per column (strided wire view -> contiguous int64), so the
        # results own their memory and are freely writable.
        labels, items = _reports(50)
        body = self._body(labels, items)
        got_l, got_i = protocol.decode_reports(body)
        for column in (got_l, got_i):
            assert column.flags.writeable
            assert column.flags.c_contiguous
            assert column.base is None  # owns its data: the single copy
            assert not np.shares_memory(
                column, np.frombuffer(body, dtype=np.uint8)
            )
        got_l[:] = -1  # mutation must not corrupt the wire body
        re_l, re_i = protocol.decode_reports(body)
        np.testing.assert_array_equal(re_l, labels)
        np.testing.assert_array_equal(re_i, items)

    def test_decode_reports_view_is_zero_copy(self):
        labels, items = _reports(50, seed=1)
        body = self._body(labels, items)
        view_l, view_i = protocol.decode_reports_view(body)
        np.testing.assert_array_equal(view_l, labels)
        np.testing.assert_array_equal(view_i, items)
        backing = np.frombuffer(body, dtype=np.uint8)
        assert np.shares_memory(view_l, backing)
        assert np.shares_memory(view_i, backing)
        # bytes bodies are immutable; the views must refuse writes too.
        assert not view_l.flags.writeable
        assert not view_i.flags.writeable


class TestReportsEncoder:
    def test_pack_matches_encode_reports_framing(self):
        labels, items = _reports(100, seed=7)
        packed = b"".join(
            protocol.ReportsEncoder().pack(labels, items, chunk_size=17)
        )
        reference = b"".join(
            protocol.encode_reports(labels[span], items[span])
            for span in protocol.chunk_spans(labels.size, 17)
        )
        assert packed == reference

    def test_tiny_arena_regrows_to_fit_a_chunk(self):
        labels, items = _reports(64, seed=8)
        encoder = protocol.ReportsEncoder(arena_bytes=16)
        packed = b"".join(encoder.pack(labels, items, chunk_size=16))
        reference = b"".join(
            protocol.encode_reports(labels[span], items[span])
            for span in protocol.chunk_spans(labels.size, 16)
        )
        assert packed == reference

    def test_empty_population_yields_one_empty_payload(self):
        payloads = list(protocol.ReportsEncoder().pack([], []))
        assert payloads == [b""]


def _topk_config(**overrides):
    config = dict(
        session="fastlane-topk",
        kind="topk",
        epsilon=2.0,
        n_classes=3,
        n_items=64,
        k=4,
        seed=11,
    )
    config.update(overrides)
    return config


class TestEpochCachedQueries:
    def _config(self, **overrides):
        config = dict(
            session="fastlane",
            framework="pts",
            epsilon=4.0,
            n_classes=3,
            n_items=32,
            mode="simulate",
            seed=13,
            shards=2,
        )
        config.update(overrides)
        return config

    def _cache_counters(self, collector, session_id):
        snapshot = collector.metrics.snapshot()["counters"]
        hits = snapshot.get(
            f'serve_query_cache_hits_total{{session="{session_id}"}}', 0
        )
        misses = snapshot.get(
            f'serve_query_cache_misses_total{{session="{session_id}"}}', 0
        )
        return hits, misses

    def test_repeated_query_hits_cache_and_matches(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 3, 2000)
        items = rng.integers(0, 32, 2000)
        config = self._config()

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    first = await client.estimate()
                    second = await client.estimate()
                    hits, misses = self._cache_counters(collector, "fastlane")
                return first, second, hits, misses

        first, second, hits, misses = run(scenario())
        np.testing.assert_array_equal(first, second)
        assert misses == 1
        assert hits == 1

    def test_new_reports_invalidate_the_cache(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 3, 3000)
        items = rng.integers(0, 32, 3000)
        config = self._config(session="fastlane-inval")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels[:1500], items[:1500])
                    before = await client.estimate()
                    await client.estimate()  # the cache hit
                    await client.send(labels[1500:], items[1500:])
                    after = await client.estimate()  # must recompute
                    hits, misses = self._cache_counters(
                        collector, "fastlane-inval"
                    )
                return before, after, hits, misses

        before, after, hits, misses = run(scenario())
        assert misses == 2  # initial + post-ingest recompute
        assert hits == 1
        # 1500 more reports folded in: the recomputed estimate moved.
        assert not np.array_equal(before, after)

    def test_advance_round_invalidates_topk_cache(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 3, 2000)
        items = rng.integers(0, 64, 2000)
        config = _topk_config()

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    await client.topk()
                    await client.topk()  # hit
                    await client.advance_round()
                    await client.topk()  # epoch moved: recompute
                    hits, misses = self._cache_counters(
                        collector, "fastlane-topk"
                    )
                return hits, misses

        hits, misses = run(scenario())
        assert misses == 2
        assert hits == 1

    def test_distinct_specs_cache_separately(self):
        rng = np.random.default_rng(6)
        labels = rng.integers(0, 3, 2000)
        items = rng.integers(0, 64, 2000)
        config = _topk_config(session="fastlane-specs")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    a1 = await client.topk(2)
                    b1 = await client.topk(4)
                    a2 = await client.topk(2)
                    b2 = await client.topk(4)
                    hits, misses = self._cache_counters(
                        collector, "fastlane-specs"
                    )
                return a1, b1, a2, b2, hits, misses

        a1, b1, a2, b2, hits, misses = run(scenario())
        assert a1 == a2 and b1 == b2
        assert misses == 2
        assert hits == 2


class TestTrickleFlusherSweep:
    def test_trickle_drains_within_flush_interval(self):
        """Buffers far below ``flush_reports`` must still drain on the
        periodic sweep, and the sweep's drain must invalidate the epoch
        cache exactly like a threshold flush."""
        rng = np.random.default_rng(7)
        config = dict(
            session="trickle",
            framework="pts",
            epsilon=4.0,
            n_classes=3,
            n_items=32,
            mode="simulate",
            seed=19,
            shards=1,
        )

        async def scenario():
            async with ReportCollector(flush_interval=0.02) as collector:
                hosted_getter = collector.registry.get
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(
                        rng.integers(0, 3, 50), rng.integers(0, 32, 50)
                    )
                    baseline = await client.estimate()
                    await client.estimate()  # warm the cache
                    # A trickle far below flush_reports (65536 default):
                    # only the periodic sweep can drain it.
                    await client.send(
                        rng.integers(0, 3, 40), rng.integers(0, 32, 40)
                    )
                    hosted = hosted_getter("trickle")
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + 50 * collector.flush_interval
                    # First wait until the trickle has actually arrived
                    # (send returns once written to the socket), then
                    # require the sweep to flush and drain it — without
                    # any query forcing a flush on its behalf.
                    def settled():
                        stats = hosted.ingest_stats()
                        return stats["n_accepted"] == 90 and stats["pending"] == 0
                    while not settled():
                        assert (
                            loop.time() < deadline
                        ), f"sweep did not drain in time: {hosted.ingest_stats()}"
                        await asyncio.sleep(collector.flush_interval / 4)
                    # The sweep submitted new reports: the stored epoch is
                    # stale and the next estimate must recompute.
                    swept = await client.estimate()
                    hits, misses = (
                        collector.metrics.snapshot()["counters"].get(
                            'serve_query_cache_hits_total{session="trickle"}',
                            0,
                        ),
                        collector.metrics.snapshot()["counters"].get(
                            'serve_query_cache_misses_total{session="trickle"}',
                            0,
                        ),
                    )
                return baseline, swept, hits, misses

        baseline, swept, hits, misses = run(scenario())
        # The sweep landed all 90 reports and invalidated the cache: the
        # post-sweep estimate was recomputed against the drained state.
        assert misses == 2
        assert hits == 1
        assert not np.array_equal(baseline, swept)
