"""The live telemetry surface of the collector: the STATS wire frame
reconciles exactly with what clients submitted, and the Prometheus
``/metrics`` endpoint serves the same registry over HTTP."""

import asyncio

import numpy as np
import pytest

from repro.obs import MetricsRegistry, start_metrics_server
from repro.serve import (
    ReportClient,
    ReportCollector,
    fetch_stats,
    generate_load,
)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _population(n=1200, c=3, d=32, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, c, size=n), rng.integers(0, d, size=n)


def _config(**overrides):
    config = dict(
        session="statscohort",
        framework="ptj",
        epsilon=2.0,
        n_classes=3,
        n_items=32,
        mode="simulate",
        seed=23,
        shards=2,
    )
    config.update(overrides)
    return config


class TestStatsFrame:
    def test_stats_reconcile_with_submitted_reports(self):
        """Acceptance: a live STATS poll during/after load matches the
        client-side submitted totals exactly — reports and frame counts."""
        n_connections, chunk = 4, 128
        labels, items = _population()
        config = _config()

        async def scenario():
            async with ReportCollector() as collector:
                load = await generate_load(
                    collector.host, collector.port, config,
                    labels, items,
                    n_connections=n_connections, chunk_size=chunk,
                )
                live = await fetch_stats(collector.host, collector.port)
            return load, live

        load, live = run(scenario())
        assert load["reports"] == labels.size
        stats = live["collector"]
        assert stats["reports_ingested"] == labels.size
        assert stats["frames"]["hello"] == n_connections
        # generate_load splits the population across connections and each
        # connection sends ceil(share / chunk) REPORTS frames.
        shares = [
            part.size for part in np.array_split(np.arange(labels.size), n_connections)
        ]
        expected_frames = sum(-(-share // chunk) for share in shares)
        assert stats["frames"]["reports"] == expected_frames
        assert stats["frames"]["bye"] == n_connections
        assert stats["frames_rejected"] == 0
        assert stats["connections_total"] >= n_connections
        # session-level lag accounting covers everything accepted
        sessions = {s["session"]: s for s in live["sessions"]}
        assert sessions[config["session"]]["n_accepted"] == labels.size
        assert (
            sessions[config["session"]]["pending"]
            == labels.size - sessions[config["session"]]["n_drained"]
        )

    def test_fast_lane_instruments_reconcile_in_stats_frame(self):
        """The ingest fast lane's telemetry rides the same STATS snapshot:
        decode/sort span histograms record every hot-path pass, the ring
        gauges track occupancy/capacity, and the query-cache counters
        match the observed hit/miss pattern exactly."""
        labels, items = _population(n=2000)
        config = _config(session="fastlanestats")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items, chunk_size=256)
                    await client.estimate()  # miss
                    await client.estimate()  # hit
                    live = await client.server_stats()
            return live

        live = run(scenario())
        session = 'session="fastlanestats"'
        counters = live["metrics"]["counters"]
        gauges = live["metrics"]["gauges"]
        histograms = live["metrics"]["histograms"]
        assert counters[f"serve_query_cache_misses_total{{{session}}}"] == 1
        assert counters[f"serve_query_cache_hits_total{{{session}}}"] == 1
        # Every coalesced decode pass and counting-sort flush is timed.
        decode = histograms[f"serve_decode_seconds{{{session}}}"]
        assert decode["count"] >= 1 and decode["sum"] >= 0
        sort = histograms[f"serve_flush_sort_seconds{{{session}}}"]
        assert sort["count"] >= 1 and sort["sum"] >= 0
        query = histograms[f"serve_query_seconds{{{session}}}"]
        assert query["count"] == 1  # the cache hit never reached a worker
        # The ring drained before the first query answered; capacity is
        # the pre-sized power of two covering two full flush thresholds.
        assert gauges[f"serve_ring_occupancy{{{session}}}"] == 0
        capacity = int(gauges[f"serve_ring_capacity{{{session}}}"])
        assert capacity >= 8192 and capacity & (capacity - 1) == 0

    def test_stats_answered_before_hello(self):
        """Monitors poll without a session handshake: fetch_stats opens a
        bare connection and sends STATS as its first frame."""

        async def scenario():
            async with ReportCollector() as collector:
                live = await fetch_stats(collector.host, collector.port)
            return live

        live = run(scenario())
        assert live["collector"]["reports_ingested"] == 0
        assert live["sessions"] == []
        assert live["metrics"]["schema"] == 1

    def test_client_server_stats_mid_session(self):
        labels, items = _population(n=500)
        config = _config(session="midpoll")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    live = await client.server_stats()
            return live

        live = run(scenario())
        assert live["collector"]["reports_ingested"] == 500
        names = {s["session"] for s in live["sessions"]}
        assert "midpoll" in names

    def test_collector_metrics_registry_always_enabled(self):
        collector = ReportCollector()
        assert collector.metrics.enabled
        private = MetricsRegistry(enabled=True)
        assert ReportCollector(metrics=private).metrics is private


class TestMetricsEndpoint:
    def _get(self, request: bytes, registry: MetricsRegistry) -> bytes:
        async def scenario():
            server = await start_metrics_server("127.0.0.1", 0, (registry,))
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request)
                await writer.drain()
                response = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return response

        return run(scenario())

    def test_metrics_path_serves_prometheus_text(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve_reports_ingested_total").inc(77)
        response = self._get(b"GET /metrics HTTP/1.0\r\n\r\n", registry)
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert b"text/plain; version=0.0.4" in head
        assert b"serve_reports_ingested_total 77" in body

    def test_unknown_path_is_404(self):
        response = self._get(
            b"GET /nope HTTP/1.0\r\n\r\n", MetricsRegistry(enabled=True)
        )
        assert b"404" in response.splitlines()[0]

    def test_non_get_is_405(self):
        response = self._get(
            b"POST /metrics HTTP/1.0\r\n\r\n", MetricsRegistry(enabled=True)
        )
        assert b"405" in response.splitlines()[0]
