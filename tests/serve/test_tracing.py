"""End-to-end request tracing and health verdicts over the serve plane.

The acceptance path: a traced client session against a collector with
process-executor shards exports ONE Chrome trace-event document in which
a single trace id links the client's submit spans to the collector's
ingest/flush spans and the shard workers' ingest spans."""

import asyncio
import time

import numpy as np
import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import get_tracer, tracing_enabled
from repro.serve import (
    ReportClient,
    ReportCollector,
    fetch_health,
    fetch_stats,
)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _population(n=1500, c=3, d=32, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, c, size=n), rng.integers(0, d, size=n)


def _config(**overrides):
    config = dict(
        session="tracecohort",
        framework="ptj",
        epsilon=2.0,
        n_classes=3,
        n_items=32,
        mode="simulate",
        seed=31,
        shards=2,
    )
    config.update(overrides)
    return config


def _names_by_trace(spans, trace_id):
    return {s["name"] for s in spans if s["trace_id"] == trace_id}


class TestTracedEndToEnd:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_one_trace_id_links_client_collector_and_shards(self, executor):
        """Acceptance: client submit, collector ingest/flush, shard-worker
        ingest, and the query all share the client's root trace id in a
        single exported Chrome trace document."""
        labels, items = _population()
        config = _config(session=f"trace-{executor}")

        async def scenario():
            async with ReportCollector(executor=executor) as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    trace_id = client.trace.trace_id
                    await client.send(labels, items, chunk_size=256)
                    estimate = await client.estimate()
            return trace_id, estimate

        tracer = get_tracer()
        tracer.clear()
        with tracing_enabled():
            trace_id, estimate = run(scenario())
            document = tracer.export_chrome()
            spans = tracer.drain_spans()
        tracer.clear()

        assert estimate.shape == (3, 32)
        names = _names_by_trace(spans, trace_id)
        # one trace id stitches every layer of the request path together
        assert {
            "client.send",
            "collector.ingest",
            "collector.flush",
            "shard.ingest",
            "client.query",
            "collector.query",
        } <= names

        # the same linkage is visible in the exported Chrome document
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        traced = [e for e in slices if e["args"].get("trace_id") == trace_id]
        assert {e["name"] for e in traced} >= {
            "client.send",
            "collector.flush",
            "shard.ingest",
        }
        # shard spans run in a different service row than the client's
        services = {e["pid"] for e in traced if e["name"] == "shard.ingest"}
        client_rows = {e["pid"] for e in traced if e["name"] == "client.send"}
        if executor == "process":
            assert services and client_rows and services != client_rows
        assert document["otherData"]["dropped_spans"] == 0

        # parenting: collector.flush descends from the announced root
        flush = next(s for s in spans if s["name"] == "collector.flush")
        assert flush["trace_id"] == trace_id
        assert flush["parent_id"] is not None

    def test_untraced_run_records_nothing(self):
        """The zero-cost guarantee: with the tracer off (the default in
        this suite), a full session leaves the span ring empty and the
        client never mints a context."""
        labels, items = _population(n=400)
        config = _config(session="untraced")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    await client.estimate()
                return client.trace

        tracer = get_tracer()
        assert not tracer.enabled
        before = tracer.ring.total
        ctx = run(scenario())
        assert ctx is None
        assert tracer.ring.total == before

    def test_malformed_trace_field_degrades_to_untraced(self):
        """A garbage ``trace`` value on the HELLO must not kill the
        handshake — the connection simply runs untraced."""
        labels, items = _population(n=300)

        async def scenario():
            from repro.serve import protocol

            async with ReportCollector() as collector:
                reader, writer = await asyncio.open_connection(
                    collector.host, collector.port
                )
                hello = dict(_config(session="badtrace"))
                hello["trace"] = ["not", "a", "context"]
                reply = await protocol.request(
                    reader, writer, protocol.hello_frame(hello)
                )
                writer.close()
                await writer.wait_closed()
                return reply

        tracer = get_tracer()
        tracer.clear()
        with tracing_enabled():
            reply = run(scenario())
        tracer.clear()
        assert reply["result"]["session"] == "badtrace"

    def test_traced_query_annotation_never_reaches_the_cache_key(self):
        """Two identical queries on a traced connection must still hit
        the per-epoch cache: the per-request trace annotation is popped
        before the spec becomes a cache key."""
        labels, items = _population(n=600)
        config = _config(session="tracecache", shards=1)

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    await client.estimate()  # miss
                    await client.estimate()  # hit — despite fresh trace ids
                    live = await client.server_stats()
            return live

        tracer = get_tracer()
        tracer.clear()
        with tracing_enabled():
            live = run(scenario())
        tracer.clear()
        counters = live["metrics"]["counters"]
        assert counters['serve_query_cache_hits_total{session="tracecache"}'] == 1


class TestHealthVerdicts:
    def test_health_wire_frame_pre_hello(self):
        async def scenario():
            async with ReportCollector() as collector:
                return await fetch_health(collector.host, collector.port)

        verdict = run(scenario())
        assert verdict["schema"] == 1
        assert verdict["status"] == "pass"
        assert verdict["checks"] == []

    def test_client_health_mid_session(self):
        labels, items = _population(n=500)
        config = _config(session="healthmid")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    await client.estimate()
                    return await client.health()

        verdict = run(scenario())
        assert verdict["status"] in ("pass", "warn")
        stalls = [
            c for c in verdict["checks"] if c["check"] == "backpressure_stall"
        ]
        assert stalls and stalls[0]["session"] == "healthmid"

    def test_health_flips_pass_warn_fail_under_injected_stall(self):
        """Acceptance: the verdict flips pass -> warn -> fail as a
        session's backpressure stall grows past the policy thresholds."""
        labels, items = _population(n=500)
        config = _config(session="stallflip")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                    await client.estimate()
                    [hosted] = collector.registry.sessions()

                    healthy = collector.health()

                    # a completed 2s stall: warn territory (>= 1s)
                    hosted._stall_seconds = 2.0
                    warned = collector.health()

                    # an in-progress stall 40s deep: fail (>= 30s)
                    hosted._stall_waiters = 1
                    hosted._stall_clock = time.perf_counter() - 40.0
                    failed = collector.health()

                    wire = await client.health()
            return healthy, warned, failed, wire

        healthy, warned, failed, wire = run(scenario())
        assert healthy["status"] == "pass"
        assert warned["status"] == "warn"
        assert failed["status"] == "fail"
        [stall] = [
            c for c in failed["checks"]
            if c["check"] == "backpressure_stall"
        ]
        assert stall["value"] >= 30.0
        assert "stall in progress" in stall["reason"]
        # the HEALTH wire frame serves the same evaluation
        assert wire["status"] == "fail"

    def test_stats_expose_stall_accounting(self):
        labels, items = _population(n=400)
        config = _config(session="stallstats")

        async def scenario():
            async with ReportCollector() as collector:
                client = await ReportClient.connect(
                    collector.host, collector.port, **config
                )
                async with client:
                    await client.send(labels, items)
                live = await fetch_stats(collector.host, collector.port)
            return live

        live = run(scenario())
        [session] = [
            s for s in live["sessions"] if s["session"] == "stallstats"
        ]
        assert session["stalled"] is False
        assert session["stall_seconds"] >= 0.0
        assert session["high_water"] > 0
