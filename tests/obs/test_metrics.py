"""The telemetry plane: registry semantics, instruments, spans, the
Prometheus renderer, and the structured JSON logger."""

import io
import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    SNAPSHOT_SCHEMA,
    JsonLogger,
    MetricsRegistry,
    enabled,
    merge_snapshots,
    render,
    render_snapshot,
    series_key,
    span,
    write_snapshot,
)
from repro.obs import metrics as obs_metrics


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("reports_total", {}) == "reports_total"

    def test_labels_sorted_and_quoted(self):
        key = series_key("m", {"b": 1, "a": "x"})
        assert key == 'm{a="x",b="1"}'

    def test_label_values_escaped(self):
        key = series_key("m", {"v": 'a"b\\c\nd'})
        assert key == 'm{v="a\\"b\\\\c\\nd"}'


class TestCounter:
    def test_increments_accumulate(self):
        counter = MetricsRegistry(enabled=True).counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_disabled_registry_is_a_noop(self):
        counter = MetricsRegistry(enabled=False).counter("c")
        counter.inc(1000)
        assert counter.value == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry(enabled=True).counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry(enabled=True).gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_disabled_registry_is_a_noop(self):
        gauge = MetricsRegistry(enabled=False).gauge("g")
        gauge.set(99)
        assert gauge.value == 0.0


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        hist = MetricsRegistry(enabled=True).histogram("h", buckets=(1.0, 2.0, 4.0))
        # exactly on an edge lands in that edge's bucket (Prometheus le).
        hist.observe(1.0)
        hist.observe(1.5)
        hist.observe(4.0)
        hist.observe(100.0)  # above the last edge: +Inf overflow
        state = hist.state()
        assert state["edges"] == [1.0, 2.0, 4.0]
        assert state["counts"] == [1, 1, 1, 1]
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(106.5)

    def test_edges_must_strictly_increase(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=())

    def test_disabled_registry_is_a_noop(self):
        hist = MetricsRegistry(enabled=False).histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.count == 0

    def test_default_bucket_tables_are_valid(self):
        for table in (DEFAULT_TIME_BUCKETS, DEFAULT_COUNT_BUCKETS):
            assert all(b > a for a, b in zip(table, table[1:]))


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        assert registry.counter("c", x=1) is registry.counter("c", x=1)
        assert registry.counter("c", x=1) is not registry.counter("c", x=2)
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_snapshot_shape_and_schema(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        # snapshots are plain data: JSON round-trips unchanged
        assert json.loads(json.dumps(snap)) == snap

    def test_concurrent_increments_sum_exactly(self):
        """Shard workers hammer one counter while snapshots are taken:
        no increment is lost and no snapshot shows a torn value."""
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(0.5,))
        per_thread, n_threads = 2000, 8
        seen = []
        stop = threading.Event()

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.1)

        def watch():
            while not stop.is_set():
                seen.append(registry.snapshot()["counters"]["c"])

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        watcher = threading.Thread(target=watch)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        assert counter.value == per_thread * n_threads
        assert hist.count == per_thread * n_threads
        assert all(isinstance(v, int) and 0 <= v <= counter.value for v in seen)

    def test_clear(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc()
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot()["counters"] == {}


class TestSpan:
    def test_measures_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        with registry.span("s") as timer:
            pass
        assert timer.elapsed >= 0.0
        assert registry.histogram("s").count == 0

    def test_records_when_enabled(self):
        registry = MetricsRegistry(enabled=True)
        with registry.span("s") as timer:
            pass
        assert timer.elapsed >= 0.0
        assert registry.histogram("s").count == 1

    def test_module_span_targets_process_registry(self):
        registry = obs_metrics.get_registry()
        was = registry.enabled
        registry.clear()
        try:
            with enabled():
                with span("module_span_test", framework="pts"):
                    pass
            snap = registry.snapshot()
            key = 'module_span_test{framework="pts"}'
            assert snap["histograms"][key]["count"] == 1
            assert registry.enabled is was
        finally:
            registry.clear()
            registry._enabled = was


class TestEnabledContext:
    def test_restores_disabled_state(self):
        registry = MetricsRegistry(enabled=False)
        with enabled(registry):
            assert registry.enabled
        assert not registry.enabled

    def test_preserves_already_enabled_state(self):
        registry = MetricsRegistry(enabled=True)
        with enabled(registry):
            assert registry.enabled
        assert registry.enabled


class TestMergeSnapshots:
    def test_merges_sections_sorted(self):
        a = MetricsRegistry(enabled=True)
        a.counter("a_total").inc(1)
        b = MetricsRegistry(enabled=True)
        b.counter("b_total").inc(2)
        b.gauge("g").set(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert list(merged["counters"]) == ["a_total", "b_total"]
        assert merged["counters"]["b_total"] == 2
        assert merged["gauges"]["g"] == 3.0


class TestPromRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("reports_total", framework="pts").inc(7)
        registry.gauge("depth").set(2.5)
        text = render(registry)
        assert "# TYPE reports_total counter" in text
        assert 'reports_total{framework="pts"} 7' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lat", buckets=(1.0, 2.0), unit="s")
        for v in (0.5, 1.5, 99.0):
            hist.observe(v)
        text = render(registry)
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{unit="s",le="1"} 1' in text
        assert 'lat_bucket{unit="s",le="2"} 2' in text
        assert 'lat_bucket{unit="s",le="+Inf"} 3' in text
        assert 'lat_sum{unit="s"} 101' in text
        assert 'lat_count{unit="s"} 3' in text

    def test_unlabelled_histogram_suffixes(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = render(registry)
        assert 'h_bucket{le="1"} 1' in text
        assert "h_sum 0.5" in text
        assert "h_count 1" in text

    def test_infinite_edge_formatting(self):
        assert "+Inf" in render_snapshot(
            {
                "histograms": {
                    "h": {
                        "edges": [math.inf],
                        "counts": [1, 0],
                        "sum": 0.0,
                        "count": 1,
                    }
                }
            }
        )

    def test_empty_snapshot_renders_empty(self):
        assert render_snapshot({"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_write_snapshot(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc()
        path = write_snapshot(tmp_path / "m.prom", registry)
        assert path.read_text() == "# TYPE c counter\nc 1\n"


class TestJsonLogger:
    def test_records_are_line_delimited_json(self):
        sink = io.StringIO()
        logger = JsonLogger(sink)
        logger.event("unit.test", session="s1", n=3)
        logger.event("unit.test", n=4)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "unit.test"
        assert first["session"] == "s1"
        assert "ts" in first

    def test_disabled_without_sink(self):
        logger = JsonLogger()
        assert not logger.enabled
        logger.event("dropped")  # must not raise

    def test_configure_none_turns_off(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = JsonLogger(path)
        logger.event("kept")
        logger.configure(None)
        logger.event("dropped")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["kept"]

    def test_non_json_fields_stringified(self):
        sink = io.StringIO()
        JsonLogger(sink).event("e", path=object())
        assert json.loads(sink.getvalue())["event"] == "e"
