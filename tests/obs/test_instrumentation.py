"""Layer instrumentation: the engine, kernel, and stream hot paths record
into the process registry when it is enabled — and stay silent when not."""

import numpy as np
import pytest

from repro.datasets import LabelItemDataset
from repro.core.frameworks import make_framework
from repro.mechanisms.kernels import perturb_onehot_batch
from repro.obs import metrics as obs_metrics
from repro.rng import ensure_rng
from repro.stream import ShardedAggregator, make_session


@pytest.fixture
def registry():
    """The process registry, cleared and enabled for one test."""
    reg = obs_metrics.get_registry()
    was_enabled = reg.enabled
    reg.clear()
    reg.enable()
    yield reg
    reg.clear()
    reg._enabled = was_enabled


def _population(n=400, c=3, d=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, c, size=n), rng.integers(0, d, size=n)


class TestEngineInstrumentation:
    def test_protocol_run_counts_reports_and_blocks(self, registry):
        labels, items = _population()
        dataset = LabelItemDataset(labels=labels, items=items, n_classes=3, n_items=16)
        framework = make_framework(
            "pts", epsilon=1.0, n_classes=3, n_items=16,
            mode="protocol", rng=ensure_rng(1),
        )
        framework.estimate_frequencies(dataset)
        snap = registry.snapshot()
        assert sum(
            v for k, v in snap["counters"].items()
            if k.startswith("engine_reports_total")
        ) >= labels.size
        assert any(k.startswith("engine_blocks_total") for k in snap["counters"])
        block_histograms = [
            state for k, state in snap["histograms"].items()
            if k.startswith("engine_block_seconds")
        ]
        assert block_histograms and all(h["count"] > 0 for h in block_histograms)

    def test_disabled_registry_records_nothing(self, registry):
        registry.disable()
        labels, items = _population(n=100)
        dataset = LabelItemDataset(labels=labels, items=items, n_classes=3, n_items=16)
        make_framework(
            "pts", epsilon=1.0, n_classes=3, n_items=16,
            mode="protocol", rng=ensure_rng(1),
        ).estimate_frequencies(dataset)
        assert len(registry) == 0


class TestKernelInstrumentation:
    def test_onehot_rows_histogram(self, registry):
        perturb_onehot_batch(
            np.arange(32) % 8, 8, 0.9, 0.1, np.random.default_rng(0)
        )
        state = registry.snapshot()["histograms"]["kernel_onehot_rows"]
        assert state["count"] == 1
        assert state["sum"] == 32.0

    def test_onehot_identical_with_telemetry_on_and_off(self, registry):
        """Instrumentation must not perturb the randomness: the exact same
        bits come out with the registry enabled or disabled."""
        positions = np.arange(64) % 16
        on = perturb_onehot_batch(positions, 16, 0.8, 0.2, np.random.default_rng(7))
        registry.disable()
        off = perturb_onehot_batch(positions, 16, 0.8, 0.2, np.random.default_rng(7))
        np.testing.assert_array_equal(on, off)


class TestStreamInstrumentation:
    def test_session_ingest_and_decay_counters(self, registry):
        labels, items = _population(n=300)
        session = make_session(
            "ptj", epsilon=1.0, n_classes=3, n_items=16,
            mode="simulate", rng=ensure_rng(2),
        )
        session.ingest_batch(labels, items)
        session.decay(0.5)
        snap = registry.snapshot()
        ingested = [
            v for k, v in snap["counters"].items()
            if k.startswith("stream_ingested_total")
        ]
        assert sum(ingested) == 300
        decays = [
            v for k, v in snap["counters"].items()
            if k.startswith("stream_decay_total")
        ]
        assert sum(decays) == 1

    def test_sharded_drain_metrics(self, registry):
        labels, items = _population(n=600)
        sessions = [
            make_session(
                "ptj", epsilon=1.0, n_classes=3, n_items=16,
                mode="simulate", rng=ensure_rng(seed),
            )
            for seed in (3, 4)
        ]
        with ShardedAggregator(sessions) as aggregator:
            for start in range(0, 600, 150):
                aggregator.submit((labels[start:start + 150], items[start:start + 150]))
            aggregator.drain()
            merged = aggregator.merged()
        assert merged.n_ingested == 600
        snap = registry.snapshot()
        assert snap["counters"]["shard_drained_reports_total"] == 600
        drain_histograms = [
            state for k, state in snap["histograms"].items()
            if k.startswith("shard_drain_seconds")
        ]
        assert drain_histograms and drain_histograms[0]["count"] >= 1
        assert "shard_imbalance_batches" in snap["gauges"]
