"""Health verdicts: quantile math, per-check grading, drift windowing."""

import pytest

from repro.obs.health import (
    HEALTH_SCHEMA,
    HealthMonitor,
    HealthPolicy,
    evaluate_health,
    histogram_quantile,
    worst,
)


class TestWorst:
    def test_empty_is_pass(self):
        assert worst([]) == "pass"

    def test_orders_verdicts(self):
        assert worst(["pass", "warn"]) == "warn"
        assert worst(["warn", "fail", "pass"]) == "fail"

    def test_unknown_verdicts_count_as_pass(self):
        assert worst(["bogus"]) == "pass"


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        state = {"edges": [0.1, 1.0, float("inf")], "counts": [0, 0, 0]}
        assert histogram_quantile(state, 0.99) == 0.0

    def test_interpolates_inside_the_winning_bucket(self):
        # 10 observations in [0, 1): the median lands mid-bucket.
        state = {"edges": [1.0, float("inf")], "counts": [10, 0]}
        assert histogram_quantile(state, 0.5) == pytest.approx(0.5)

    def test_spans_buckets(self):
        state = {"edges": [1.0, 2.0, float("inf")], "counts": [5, 5, 0]}
        assert histogram_quantile(state, 0.75) == pytest.approx(1.5)

    def test_overflow_clamps_to_last_finite_edge(self):
        state = {"edges": [1.0, 2.0, float("inf")], "counts": [0, 0, 7]}
        # All mass beyond the finite edges: clamp, don't return inf.
        assert histogram_quantile(state, 0.99) == 2.0

    @pytest.mark.parametrize("q", [-0.1, 1.5])
    def test_quantile_domain_validated(self, q):
        state = {"edges": [1.0], "counts": [1]}
        with pytest.raises(ValueError):
            histogram_quantile(state, q)


def _session_stats(**overrides):
    stats = {
        "session": "cohort",
        "pending": 0,
        "high_water": 1000,
        "stalled": False,
        "stall_seconds": 0.0,
    }
    stats.update(overrides)
    return stats


def _checks(verdict, name):
    return [c for c in verdict["checks"] if c["check"] == name]


class TestEvaluateHealth:
    def test_healthy_session_passes(self):
        verdict = evaluate_health([_session_stats()])
        assert verdict["schema"] == HEALTH_SCHEMA
        assert verdict["status"] == "pass"
        assert {c["status"] for c in verdict["checks"]} == {"pass"}

    def test_ingest_lag_warns_then_fails(self):
        warn = evaluate_health([_session_stats(pending=600)])
        [lag] = _checks(warn, "ingest_lag")
        assert lag["status"] == "warn"
        assert lag["session"] == "cohort"
        assert "600 pending of 1000" in lag["reason"]

        fail = evaluate_health([_session_stats(pending=1500)])
        [lag] = _checks(fail, "ingest_lag")
        assert lag["status"] == "fail"
        assert fail["status"] == "fail"

    def test_lag_check_skipped_without_high_water(self):
        verdict = evaluate_health([_session_stats(high_water=0, pending=99)])
        assert _checks(verdict, "ingest_lag") == []

    def test_stall_grading_and_in_progress_marker(self):
        verdict = evaluate_health(
            [_session_stats(stall_seconds=2.0, stalled=True)]
        )
        [stall] = _checks(verdict, "backpressure_stall")
        assert stall["status"] == "warn"
        assert "stall in progress" in stall["reason"]

        verdict = evaluate_health([_session_stats(stall_seconds=45.0)])
        [stall] = _checks(verdict, "backpressure_stall")
        assert stall["status"] == "fail"
        assert "in progress" not in stall["reason"]

    def test_drift_rate_judged_against_baseline(self):
        snapshot = {
            "counters": {'serve_drift_events_total{session="cohort"}': 12}
        }
        cumulative = evaluate_health([], snapshot)
        [drift] = _checks(cumulative, "drift_rate")
        assert drift["status"] == "fail"  # 12 fresh events >= drift_fail

        windowed = evaluate_health(
            [], snapshot, drift_baseline={"cohort": 12}
        )
        [drift] = _checks(windowed, "drift_rate")
        assert drift["status"] == "pass"
        assert drift["value"] == 0

    def test_shard_imbalance_gauge(self):
        verdict = evaluate_health(
            [], {"gauges": {"shard_imbalance_batches": 2000.0}}
        )
        [imbalance] = _checks(verdict, "shard_imbalance")
        assert imbalance["status"] == "fail"

    def test_flush_latency_from_histogram(self):
        snapshot = {
            "histograms": {
                'serve_flush_sort_seconds{session="cohort"}': {
                    "edges": [5.0, float("inf")],
                    "counts": [100, 0],
                }
            }
        }
        verdict = evaluate_health([], snapshot)
        [flush] = _checks(verdict, "flush_latency")
        # p99 of a [0, 5) bucket interpolates to ~4.95s: warn territory.
        assert flush["status"] == "warn"
        assert flush["session"] == "cohort"

    def test_empty_histograms_skipped(self):
        snapshot = {
            "histograms": {
                "serve_flush_sort_seconds": {
                    "edges": [1.0, float("inf")],
                    "counts": [0, 0],
                }
            }
        }
        assert _checks(evaluate_health([], snapshot), "flush_latency") == []

    def test_policy_thresholds_can_be_disabled(self):
        policy = HealthPolicy(stall_warn=None, stall_fail=None)
        verdict = evaluate_health(
            [_session_stats(stall_seconds=9999.0)], policy=policy
        )
        [stall] = _checks(verdict, "backpressure_stall")
        assert stall["status"] == "pass"


class TestHealthMonitor:
    def test_drift_window_resets_between_evaluations(self):
        monitor = HealthMonitor()
        snapshot = {
            "counters": {'serve_drift_events_total{session="cohort"}': 3}
        }
        first = monitor.evaluate([], snapshot)
        [drift] = _checks(first, "drift_rate")
        assert drift["status"] == "warn"
        assert drift["value"] == 3

        # Same cumulative count again: no new events, back to pass.
        second = monitor.evaluate([], snapshot)
        [drift] = _checks(second, "drift_rate")
        assert drift["status"] == "pass"
        assert monitor.last is second

    def test_custom_policy_threads_through(self):
        monitor = HealthMonitor(policy=HealthPolicy(stall_warn=0.001))
        verdict = monitor.evaluate([_session_stats(stall_seconds=0.01)])
        [stall] = _checks(verdict, "backpressure_stall")
        assert stall["status"] == "warn"
