"""The observability HTTP server: route table, explicit error statuses,
async routes, and concurrent scrapes."""

import asyncio
import json

from repro.obs import MetricsRegistry
from repro.obs.http import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    start_http_server,
    start_metrics_server,
)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _request(port: int, raw: bytes) -> bytes:
    """One raw request against a listening server; the full response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(raw)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # server may answer-and-close before we finish writing
        return await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _port(server) -> int:
    return server.sockets[0].getsockname()[1]


async def _serve(routes):
    return await start_http_server("127.0.0.1", 0, routes)


def _get(path: str) -> bytes:
    return f"GET {path} HTTP/1.0\r\n\r\n".encode()


class TestRouting:
    def test_known_route_answers(self):
        async def scenario():
            server = await _serve(
                {"/ping": lambda: ("200 OK", "text/plain", "pong\n")}
            )
            try:
                return await _request(_port(server), _get("/ping"))
            finally:
                server.close()
                await server.wait_closed()

        response = run(scenario())
        assert response.startswith(b"HTTP/1.0 200 OK\r\n")
        assert response.endswith(b"pong\n")

    def test_query_string_stripped(self):
        async def scenario():
            server = await _serve(
                {"/ping": lambda: ("200 OK", "text/plain", "pong\n")}
            )
            try:
                return await _request(_port(server), _get("/ping?x=1"))
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()).startswith(b"HTTP/1.0 200 OK\r\n")

    def test_unknown_path_is_404_listing_known_routes(self):
        async def scenario():
            server = await _serve(
                {
                    "/metrics": lambda: ("200 OK", "text/plain", ""),
                    "/healthz": lambda: ("200 OK", "text/plain", ""),
                }
            )
            try:
                return await _request(_port(server), _get("/nope"))
            finally:
                server.close()
                await server.wait_closed()

        response = run(scenario())
        assert response.startswith(b"HTTP/1.0 404 Not Found\r\n")
        assert b"/healthz /metrics" in response

    def test_non_get_is_405(self):
        async def scenario():
            server = await _serve({"/": lambda: ("200 OK", "text/plain", "")})
            try:
                return await _request(
                    _port(server), b"POST / HTTP/1.0\r\n\r\n"
                )
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()).startswith(b"HTTP/1.0 405 ")

    def test_malformed_request_line_is_400(self):
        async def scenario():
            server = await _serve({"/": lambda: ("200 OK", "text/plain", "")})
            try:
                return await _request(
                    _port(server), b"this is not http\r\n\r\n"
                )
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()).startswith(b"HTTP/1.0 400 Bad Request\r\n")

    def test_oversized_request_is_413(self):
        async def scenario():
            server = await _serve({"/": lambda: ("200 OK", "text/plain", "")})
            try:
                raw = b"GET /" + b"A" * 10_000 + b" HTTP/1.0\r\n\r\n"
                return await _request(_port(server), raw)
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()).startswith(b"HTTP/1.0 413 ")

    def test_raising_route_is_500_with_exception_name(self):
        def broken():
            raise RuntimeError("boom")

        async def scenario():
            server = await _serve({"/broken": broken})
            try:
                return await _request(_port(server), _get("/broken"))
            finally:
                server.close()
                await server.wait_closed()

        response = run(scenario())
        assert response.startswith(b"HTTP/1.0 500 ")
        assert b"RuntimeError: boom" in response

    def test_async_route_awaited(self):
        async def healthz():
            await asyncio.sleep(0)
            return (
                "200 OK",
                JSON_CONTENT_TYPE,
                json.dumps({"status": "pass", "checks": []}) + "\n",
            )

        async def scenario():
            server = await _serve({"/healthz": healthz})
            try:
                return await _request(_port(server), _get("/healthz"))
            finally:
                server.close()
                await server.wait_closed()

        response = run(scenario())
        assert response.startswith(b"HTTP/1.0 200 OK\r\n")
        body = response.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == {"status": "pass", "checks": []}


class TestMetricsServer:
    def test_metrics_route_renders_registries(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("demo_total").inc(3)

        async def scenario():
            server = await start_metrics_server(
                "127.0.0.1", 0, [registry]
            )
            try:
                return await _request(_port(server), _get("/metrics"))
            finally:
                server.close()
                await server.wait_closed()

        response = run(scenario())
        assert PROMETHEUS_CONTENT_TYPE.encode() in response
        assert b"demo_total 3" in response

    def test_extra_routes_mount_next_to_metrics(self):
        registry = MetricsRegistry(enabled=True)

        async def scenario():
            server = await start_metrics_server(
                "127.0.0.1",
                0,
                [registry],
                routes={
                    "/healthz": lambda: (
                        "200 OK",
                        JSON_CONTENT_TYPE,
                        '{"status": "pass"}\n',
                    )
                },
            )
            try:
                port = _port(server)
                return (
                    await _request(port, _get("/metrics")),
                    await _request(port, _get("/healthz")),
                )
            finally:
                server.close()
                await server.wait_closed()

        metrics, healthz = run(scenario())
        assert metrics.startswith(b"HTTP/1.0 200 OK\r\n")
        assert b'{"status": "pass"}' in healthz

    def test_custom_render_overrides_default(self):
        async def scenario():
            server = await start_metrics_server(
                "127.0.0.1", 0, [], render=lambda: "custom 42\n"
            )
            try:
                return await _request(_port(server), _get("/metrics"))
            finally:
                server.close()
                await server.wait_closed()

        assert b"custom 42" in run(scenario())

    def test_concurrent_scrapes(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("demo_total").inc()

        async def scenario():
            server = await start_metrics_server("127.0.0.1", 0, [registry])
            try:
                port = _port(server)
                return await asyncio.gather(
                    *(_request(port, _get("/metrics")) for _ in range(8))
                )
            finally:
                server.close()
                await server.wait_closed()

        responses = run(scenario())
        assert len(responses) == 8
        for response in responses:
            assert response.startswith(b"HTTP/1.0 200 OK\r\n")
            assert b"demo_total 1" in response
