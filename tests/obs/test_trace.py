"""The tracing plane: contexts, the bounded span ring, the tracer's
recording semantics, and the Chrome trace-event export."""

import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    DEFAULT_RING_CAPACITY,
    TRACE_SCHEMA,
    SpanRing,
    TraceContext,
    Tracer,
    chrome_trace,
    get_tracer,
    trace_span,
    tracing_enabled,
)


class TestTraceContext:
    def test_root_has_no_parent(self):
        ctx = TraceContext.root()
        assert ctx.parent_id is None
        assert len(ctx.trace_id) == 16 and len(ctx.span_id) == 16

    def test_child_shares_trace_and_parents_on_this_span(self):
        root = TraceContext.root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.root()
        rebuilt = TraceContext.from_wire(ctx.to_wire())
        assert rebuilt.trace_id == ctx.trace_id
        assert rebuilt.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "not-a-dict",
            42,
            [],
            {},
            {"trace_id": 123},
            {"trace_id": ""},
            {"trace_id": "x" * 65},
            {"trace_id": "ok", "span_id": 7},
            {"trace_id": "ok", "span_id": ""},
            {"trace_id": "ok", "span_id": "y" * 65},
        ],
    )
    def test_malformed_wire_degrades_to_none(self, bad):
        assert TraceContext.from_wire(bad) is None

    def test_wire_without_span_id_mints_one(self):
        ctx = TraceContext.from_wire({"trace_id": "abc"})
        assert ctx is not None and ctx.trace_id == "abc"
        assert len(ctx.span_id) == 16


class TestSpanRing:
    def _record(self, i):
        return {"name": f"s{i}", "trace_id": "t", "span_id": str(i)}

    def test_retains_in_order_below_capacity(self):
        ring = SpanRing(capacity=8)
        for i in range(5):
            ring.append(self._record(i))
        assert len(ring) == 5
        assert ring.total == 5
        assert ring.dropped == 0
        assert [r["span_id"] for r in ring.spans()] == ["0", "1", "2", "3", "4"]

    def test_overwrites_oldest_and_counts_drops(self):
        ring = SpanRing(capacity=4)
        for i in range(10):
            ring.append(self._record(i))
        assert len(ring) == 4
        assert ring.total == 10
        assert ring.dropped == 6
        assert [r["span_id"] for r in ring.spans()] == ["6", "7", "8", "9"]

    def test_clear_resets_everything(self):
        ring = SpanRing(capacity=4)
        for i in range(6):
            ring.append(self._record(i))
        ring.clear()
        assert len(ring) == 0 and ring.total == 0 and ring.dropped == 0
        assert ring.spans() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanRing(capacity=0)

    def test_default_capacity(self):
        assert SpanRing().capacity == DEFAULT_RING_CAPACITY


class TestTracer:
    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        span_a = tracer.span("a", TraceContext.root())
        span_b = tracer.span("b", TraceContext.root())
        assert span_a is span_b  # the shared singleton: nothing allocated
        assert span_a.ctx is None
        with span_a:
            pass
        assert len(tracer.ring) == 0

    def test_none_context_is_noop_even_when_enabled(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", None):
            pass
        assert len(tracer.ring) == 0

    def test_enabled_span_records_a_child_of_the_context(self):
        tracer = Tracer(enabled=True)
        root = TraceContext.root()
        with tracer.span("work", root, cat="test", detail=7) as span:
            assert span.ctx.trace_id == root.trace_id
            assert span.ctx.parent_id == root.span_id
        [record] = tracer.ring.spans()
        assert record["name"] == "work"
        assert record["cat"] == "test"
        assert record["trace_id"] == root.trace_id
        assert record["parent_id"] == root.span_id
        assert record["args"] == {"detail": 7}
        assert record["duration"] >= 0.0
        assert record["start"] > 0.0

    def test_child_false_records_as_the_context_itself(self):
        tracer = Tracer(enabled=True)
        root = TraceContext.root()
        with tracer.span("work", root, child=False):
            pass
        [record] = tracer.ring.spans()
        assert record["span_id"] == root.span_id
        assert record["parent_id"] is None

    def test_adopt_folds_foreign_records(self):
        tracer = Tracer(enabled=True)
        tracer.adopt(
            [
                {
                    "name": "shard.ingest",
                    "cat": "shard",
                    "trace_id": "t1",
                    "span_id": "s1",
                    "parent_id": "p1",
                    "start": 1.0,
                    "duration": 0.5,
                    "service": "shard0",
                    "thread": "worker",
                    "args": {"shard": 0},
                }
            ]
        )
        [record] = tracer.ring.spans()
        assert record["service"] == "shard0"

    def test_adopt_is_noop_while_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.adopt([{"name": "x"}])
        assert len(tracer.ring) == 0

    def test_tracing_enabled_restores_prior_state(self):
        tracer = get_tracer()
        was = tracer.enabled
        tracer.disable()
        try:
            with tracing_enabled():
                assert get_tracer().enabled
                ctx = TraceContext.root()
                with trace_span("scoped", ctx):
                    pass
            assert not get_tracer().enabled
        finally:
            tracer.ring.clear()
            if was:
                tracer.enable()


class TestChromeExport:
    def _spans(self):
        return [
            {
                "name": "client.send",
                "cat": "client",
                "trace_id": "t",
                "span_id": "a",
                "parent_id": None,
                "start": 100.0,
                "duration": 0.25,
                "service": "client",
                "thread": "main",
                "args": {"reports": 5},
            },
            {
                "name": "shard.ingest",
                "cat": "shard",
                "trace_id": "t",
                "span_id": "b",
                "parent_id": "a",
                "start": 100.1,
                "duration": 0.05,
                "service": "shard0",
                "thread": "worker",
                "args": {},
            },
        ]

    def test_complete_events_with_microsecond_stamps(self):
        document = chrome_trace(self._spans(), dropped=3)
        assert document["otherData"] == {
            "schema": TRACE_SCHEMA,
            "dropped_spans": 3,
        }
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in slices] == ["client.send", "shard.ingest"]
        assert slices[0]["ts"] == pytest.approx(100.0 * 1e6)
        assert slices[0]["dur"] == pytest.approx(0.25 * 1e6)
        assert slices[0]["args"]["trace_id"] == "t"
        assert slices[1]["args"]["parent_id"] == "a"
        # distinct services land on distinct pid rows
        assert slices[0]["pid"] != slices[1]["pid"]

    def test_metadata_names_processes_and_threads(self):
        document = chrome_trace(self._spans())
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        labels = {e["args"]["name"] for e in meta}
        assert {"client", "shard0", "main", "worker"} <= labels

    def test_document_is_json_serialisable(self):
        json.dumps(chrome_trace(self._spans()))

    def test_tracer_write_chrome(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("op", TraceContext.root()):
            pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["dropped_spans"] == 0


class TestProcessTracerSwitch:
    def test_module_tracer_defaults_off_without_env(self):
        # The suite runs without REPRO_OBS; the shared tracer must not
        # record (the zero-cost guarantee the serving paths rely on).
        assert not get_tracer().enabled or obs_trace.os.environ.get(
            "REPRO_OBS", ""
        ) not in ("", "0")
