"""repro-top rendering: the dashboard is a pure function over a STATS
payload and a HEALTH verdict, so these tests drive it with fabricated
samples."""

from repro.obs.console import build_parser, render_dashboard


def _stats(**overrides):
    stats = {
        "collector": {
            "host": "127.0.0.1",
            "port": 9000,
            "connections_active": 2,
            "reports_ingested": 120_000,
            "frames": {"hello": 2, "reports": 40},
            "frames_rejected": 0,
        },
        "sessions": [
            {
                "session": "cohort",
                "kind": "framework",
                "n_accepted": 120_000,
                "pending": 512,
                "stalled": False,
                "stall_seconds": 0.0,
            }
        ],
        "metrics": {
            "counters": {
                'serve_query_cache_hits_total{session="cohort"}': 3,
                'serve_query_cache_misses_total{session="cohort"}': 1,
            },
            "gauges": {
                'serve_ring_occupancy{session="cohort"}': 1024,
                'serve_ring_capacity{session="cohort"}': 8192,
            },
        },
    }
    stats.update(overrides)
    return stats


def _health(status="pass", checks=()):
    return {"schema": 1, "status": status, "checks": list(checks)}


class TestRenderDashboard:
    def test_plain_render_carries_the_session_row(self):
        screen = render_dashboard(
            _stats(),
            _health(),
            rates={"cohort": 2500.0},
            color=False,
            now=0.0,
        )
        assert "health: PASS" in screen
        assert "sessions: 1" in screen
        assert "ingested 120,000" in screen
        assert "hello:2" in screen and "reports:40" in screen
        row = next(line for line in screen.splitlines() if "cohort" in line)
        assert "framework" in row
        assert "120,000" in row
        assert "2,500" in row  # the derived rate
        assert "12%" in row  # ring occupancy 1024/8192
        assert "75%" in row  # cache 3 hits / 4 lookups
        assert "\x1b[" not in screen  # color=False means no ANSI at all

    def test_stalled_session_marked(self):
        stats = _stats()
        stats["sessions"][0].update(stalled=True, stall_seconds=4.2)
        screen = render_dashboard(stats, _health(), color=False)
        assert "4.2s!" in screen

    def test_checks_painted_with_verdicts(self):
        health = _health(
            status="warn",
            checks=[
                {
                    "check": "ingest_lag",
                    "status": "warn",
                    "value": 0.61,
                    "reason": "610 pending of 1000 high water",
                    "session": "cohort",
                },
                {
                    "check": "shard_imbalance",
                    "status": "pass",
                    "value": 0.0,
                    "reason": "max-min shard skew of 0 batches",
                },
            ],
        )
        screen = render_dashboard(_stats(), health, color=False)
        assert "health: WARN" in screen
        assert "[warn] ingest_lag cohort: 610 pending of 1000 high water" in screen
        assert "[pass] shard_imbalance:" in screen

    def test_color_mode_paints_the_verdict(self):
        screen = render_dashboard(_stats(), _health(status="fail"), color=True)
        assert "\x1b[31mFAIL\x1b[0m" in screen

    def test_empty_collector_renders_placeholders(self):
        screen = render_dashboard(
            {"collector": {}, "sessions": [], "metrics": {}},
            _health(),
            color=False,
        )
        assert "(no sessions yet)" in screen
        assert "(none)" in screen

    def test_missing_rate_and_ratios_render_dashes(self):
        stats = _stats()
        stats["metrics"] = {}
        screen = render_dashboard(stats, _health(), color=False)
        row = next(line for line in screen.splitlines() if "cohort" in line)
        assert row.count(" -") >= 3  # rate, ring, and cache all unknown


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["9000"])
        assert args.port == 9000
        assert args.host == "127.0.0.1"
        assert args.interval == 1.0
        assert not args.once and not args.no_color

    def test_flags(self):
        args = build_parser().parse_args(
            ["9000", "--host", "10.0.0.1", "--once", "--no-color"]
        )
        assert args.host == "10.0.0.1"
        assert args.once and args.no_color
