"""Top-k ranking metrics (F1 and NCR)."""

import pytest

from repro.exceptions import DomainError
from repro.metrics import average_over_classes, f1_score, ncr


class TestF1:
    def test_perfect(self):
        assert f1_score([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert f1_score([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_empty_mined_scores_zero(self):
        assert f1_score([], [1, 2]) == 0.0

    def test_short_mined_list_allowed(self):
        assert f1_score([1], [1, 2]) == pytest.approx(0.5)

    def test_rejects_oversized_mined(self):
        with pytest.raises(DomainError):
            f1_score([1, 2, 3], [1, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(DomainError):
            f1_score([1, 1], [1, 2])

    def test_rejects_empty_truth(self):
        with pytest.raises(DomainError):
            f1_score([1], [])


class TestNCR:
    def test_perfect_order(self):
        assert ncr([5, 6, 7], [5, 6, 7]) == 1.0

    def test_order_within_mined_does_not_matter(self):
        """NCR weights by the TRUE rank of each recovered item."""
        assert ncr([7, 6, 5], [5, 6, 7]) == 1.0

    def test_paper_weighting(self):
        # truth ranks worth 3,2,1; mining only the top-1 earns 3 of 6.
        assert ncr([5], [5, 6, 7]) == pytest.approx(0.5)

    def test_mining_only_the_last_item(self):
        assert ncr([7], [5, 6, 7]) == pytest.approx(1 / 6)

    def test_misses_score_zero(self):
        assert ncr([9, 10], [5, 6]) == 0.0

    def test_rejects_duplicates(self):
        with pytest.raises(DomainError):
            ncr([1, 1], [1, 2])


class TestAverageOverClasses:
    def test_averages(self):
        mined = {0: [1, 2], 1: [9, 8]}
        truth = {0: [1, 2], 1: [1, 2]}
        assert average_over_classes(mined, truth, "f1") == pytest.approx(0.5)

    def test_missing_class_scores_zero(self):
        mined = {0: [1, 2]}
        truth = {0: [1, 2], 1: [1, 2]}
        assert average_over_classes(mined, truth, "f1") == pytest.approx(0.5)

    def test_ncr_metric_selection(self):
        mined = {0: [5]}
        truth = {0: [5, 6, 7]}
        assert average_over_classes(mined, truth, "ncr") == pytest.approx(0.5)

    def test_rejects_unknown_metric(self):
        with pytest.raises(DomainError):
            average_over_classes({}, {0: [1]}, "auc")

    def test_rejects_empty_truth(self):
        with pytest.raises(DomainError):
            average_over_classes({}, {}, "f1")
