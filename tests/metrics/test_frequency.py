"""Frequency error metrics."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.metrics import mae, max_error, relative_error, rmse


class TestRMSE:
    def test_zero_for_perfect_estimate(self):
        truth = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        assert rmse(truth, truth) == 0.0

    def test_hand_computed(self):
        estimated = np.asarray([[1.0, 3.0]])
        truth = np.asarray([[0.0, 0.0]])
        assert rmse(estimated, truth) == pytest.approx(np.sqrt((1 + 9) / 2))

    def test_shape_mismatch(self):
        with pytest.raises(DomainError):
            rmse(np.ones((2, 2)), np.ones((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            rmse(np.ones((0,)), np.ones((0,)))

    def test_scale_equivariance(self):
        estimated = np.asarray([1.0, 2.0])
        truth = np.asarray([0.0, 0.0])
        assert rmse(10 * estimated, 10 * truth) == pytest.approx(10 * rmse(estimated, truth))


class TestOtherMetrics:
    def test_mae(self):
        assert mae(np.asarray([1.0, -3.0]), np.zeros(2)) == pytest.approx(2.0)

    def test_max_error(self):
        assert max_error(np.asarray([1.0, -3.0]), np.zeros(2)) == pytest.approx(3.0)

    def test_relative_error_with_floor(self):
        estimated = np.asarray([2.0, 0.0])
        truth = np.asarray([1.0, 0.0])
        # |2-1|/1 = 1 and |0-0|/floor = 0 -> mean 0.5
        assert relative_error(estimated, truth) == pytest.approx(0.5)

    def test_relative_error_rejects_bad_floor(self):
        with pytest.raises(DomainError):
            relative_error(np.ones(2), np.ones(2), floor=0.0)

    def test_mae_below_rmse(self, rng):
        estimated = rng.normal(size=100)
        truth = np.zeros(100)
        assert mae(estimated, truth) <= rmse(estimated, truth)
