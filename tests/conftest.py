"""Shared fixtures for the test suite.

Every statistical test uses a *fixed* seed, so the suite is deterministic:
tolerances are set from the theoretical standard errors at those seeds and
the tests cannot flake.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import LabelItemDataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_dataset(rng: np.random.Generator) -> LabelItemDataset:
    """3 classes x 8 items, 30k users, non-uniform pair counts."""
    probs = rng.dirichlet(np.ones(24))
    counts = rng.multinomial(30_000, probs).reshape(3, 8)
    return LabelItemDataset.from_pair_counts(counts, name="small", rng=rng)


@pytest.fixture
def skewed_dataset(rng: np.random.Generator) -> LabelItemDataset:
    """2 classes x 256 items with a clear popularity head (for top-k)."""
    ranks = np.arange(256, dtype=np.float64)
    probs = (ranks + 1.0) ** -1.1
    probs /= probs.sum()
    counts = np.stack(
        [
            rng.multinomial(60_000, probs),
            rng.multinomial(40_000, probs[rng.permutation(256)]),
        ]
    )
    return LabelItemDataset.from_pair_counts(counts, name="skewed", rng=rng)
