"""The bench-regression gate: artifact rate extraction, threshold
comparison, and the CLI exit codes CI keys off."""

import copy
import json

import pytest

from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    compare,
    compare_artifacts,
    config_summary,
    extract_rates,
    main,
)

STREAM_PAYLOAD = {
    "scale": "quick",
    "frameworks": {
        "hec": {"reports_per_sec": 1_000_000.0, "rmse": 2.0},
        "pts": {"reports_per_sec": 2_000_000.0, "rmse": 1.0},
    },
}

PROTOCOL_PAYLOAD = {
    "frameworks": {
        "ptj": {"users_per_sec": 800_000.0, "baseline_users_per_sec": 9_000.0},
    },
}

SERVE_PAYLOAD = {
    "cells": [
        {"connections": 1, "batch_size": 4096, "reports_per_sec": 5_000_000.0},
        {"connections": 8, "batch_size": 4096, "reports_per_sec": 6_500_000.0},
    ],
    "max_reports_per_sec": 6_500_000.0,
}


class TestExtractRates:
    def test_stream_shape(self):
        rates = extract_rates(STREAM_PAYLOAD)
        assert rates == {
            "hec:reports_per_sec": 1_000_000.0,
            "pts:reports_per_sec": 2_000_000.0,
        }

    def test_protocol_shape(self):
        assert extract_rates(PROTOCOL_PAYLOAD) == {
            "ptj:users_per_sec": 800_000.0
        }

    def test_serve_cells_keyed_by_grid_point(self):
        rates = extract_rates(SERVE_PAYLOAD)
        assert rates == {
            "connections=1,batch=4096:reports_per_sec": 5_000_000.0,
            "connections=8,batch=4096:reports_per_sec": 6_500_000.0,
        }

    def test_max_aggregate_is_not_a_series(self):
        assert not any("max" in key for key in extract_rates(SERVE_PAYLOAD))

    def test_unknown_shape_yields_nothing(self):
        assert extract_rates({"tables": [1, 2, 3]}) == {}


class TestCompare:
    def test_within_threshold_passes(self):
        fresh = copy.deepcopy(STREAM_PAYLOAD)
        fresh["frameworks"]["hec"]["reports_per_sec"] *= 0.75  # -25% < 30%
        regressions, lines = compare(STREAM_PAYLOAD, fresh)
        assert regressions == []
        assert any("-25.0%" in line for line in lines)

    def test_regression_beyond_threshold_flagged(self):
        fresh = copy.deepcopy(STREAM_PAYLOAD)
        fresh["frameworks"]["pts"]["reports_per_sec"] *= 0.5  # -50%
        regressions, _ = compare(STREAM_PAYLOAD, fresh)
        assert regressions == ["pts:reports_per_sec"]

    def test_custom_threshold(self):
        fresh = copy.deepcopy(STREAM_PAYLOAD)
        fresh["frameworks"]["pts"]["reports_per_sec"] *= 0.85  # -15%
        assert compare(STREAM_PAYLOAD, fresh, threshold=0.10)[0] == [
            "pts:reports_per_sec"
        ]
        assert compare(STREAM_PAYLOAD, fresh, threshold=DEFAULT_THRESHOLD)[0] == []

    def test_improvements_never_flagged(self):
        fresh = copy.deepcopy(SERVE_PAYLOAD)
        for cell in fresh["cells"]:
            cell["reports_per_sec"] *= 10
        assert compare(SERVE_PAYLOAD, fresh)[0] == []

    def test_differing_grids_compare_shared_cells_only(self):
        fresh = copy.deepcopy(SERVE_PAYLOAD)
        fresh["cells"][1]["connections"] = 16  # grid changed
        fresh["cells"][0]["reports_per_sec"] *= 0.1  # shared cell regressed
        regressions, lines = compare(SERVE_PAYLOAD, fresh)
        assert regressions == ["connections=1,batch=4096:reports_per_sec"]
        assert any("only in baseline" in line for line in lines)
        assert any("only in fresh" in line for line in lines)

    def test_no_shared_series_is_not_a_failure(self):
        regressions, lines = compare({"cells": []}, {"cells": []})
        assert regressions == []
        assert any("no comparable" in line for line in lines)


class TestTracingMeta:
    def test_bench_meta_always_carries_the_tracing_block(self):
        from repro.bench.reporting import bench_meta

        meta = bench_meta()
        tracing = meta["tracing"]
        assert set(tracing) == {"enabled", "spans", "dropped"}
        assert tracing["enabled"] is False  # suite runs untraced

    def test_untraced_artifacts_carry_no_tracing_flag(self):
        """Baselines written before the tracing block existed must
        compare cleanly against fresh untraced runs."""
        untraced = dict(
            STREAM_PAYLOAD,
            meta={"tracing": {"enabled": False, "spans": 0, "dropped": 0}},
        )
        assert config_summary(untraced) is None
        _, lines = compare(STREAM_PAYLOAD, untraced)
        assert not any("configurations differ" in line for line in lines)

    def test_traced_run_flags_a_config_mismatch(self):
        traced = dict(
            STREAM_PAYLOAD,
            meta={"tracing": {"enabled": True, "spans": 512, "dropped": 0}},
        )
        assert config_summary(traced) == "tracing=on"
        _, lines = compare(STREAM_PAYLOAD, traced)
        assert any("configurations differ" in line for line in lines)

    def test_dropped_spans_surface_in_the_summary(self):
        lossy = dict(
            STREAM_PAYLOAD,
            meta={"tracing": {"enabled": True, "spans": 9000, "dropped": 808}},
        )
        assert config_summary(lossy) == "tracing=on spans_dropped=808"


class TestCLI:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", STREAM_PAYLOAD)
        assert main([base, base]) == 0
        assert "no throughput regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        fresh_payload = copy.deepcopy(STREAM_PAYLOAD)
        fresh_payload["frameworks"]["hec"]["reports_per_sec"] *= 0.3
        base = self._write(tmp_path, "base.json", STREAM_PAYLOAD)
        fresh = self._write(tmp_path, "fresh.json", fresh_payload)
        assert main([base, fresh]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "hec:reports_per_sec" in out

    def test_multiple_pairs(self, tmp_path):
        stream = self._write(tmp_path, "s.json", STREAM_PAYLOAD)
        serve = self._write(tmp_path, "v.json", SERVE_PAYLOAD)
        assert main([stream, stream, serve, serve]) == 0

    def test_odd_arguments_rejected(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", STREAM_PAYLOAD)
        with pytest.raises(SystemExit) as excinfo:
            main([base])
        assert excinfo.value.code == 2

    def test_compare_artifacts_header(self, tmp_path):
        base = self._write(tmp_path, "base.json", STREAM_PAYLOAD)
        regressions, lines = compare_artifacts(base, base)
        assert regressions == []
        assert "threshold -30%" in lines[0]
