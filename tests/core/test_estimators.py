"""Algebraic checks of the unbiased calibrations (paper Section VI-A)."""

import numpy as np
import pytest

from repro.core.estimators import (
    calibrate_cp,
    calibrate_hec,
    calibrate_ptj,
    calibrate_pts,
    estimate_class_sizes,
)
from repro.exceptions import AggregationError
from repro.mechanisms.grr import grr_probabilities
from repro.mechanisms.ue import oue_probabilities


@pytest.fixture
def truth(rng):
    return rng.multinomial(30_000, np.ones(12) / 12).reshape(3, 4).astype(np.float64)


class TestHEC:
    def test_inverts_expected_support(self, truth):
        """Feeding HEC's expected supports (without the deniability term)
        recovers the truth scaled correctly."""
        p, q = 0.6, 0.2
        n_total = truth.sum()
        c = truth.shape[0]
        group_sizes = np.full(c, n_total / c)
        # Expected support of group g at item i: (f(g,i)/c) p + (n_g - f/c) q
        support = (truth / c) * p + (group_sizes[:, None] - truth / c) * q
        estimate = calibrate_hec(support, group_sizes, int(n_total), p, q)
        assert np.allclose(estimate, truth)

    def test_deniability_bias_matches_theorem4(self, truth):
        """Random-item deniability adds exactly (N - n)/d per cell."""
        p, q = 0.6, 0.2
        n_total = truth.sum()
        c, d = truth.shape
        group_sizes = np.full(c, n_total / c)
        class_sizes = truth.sum(axis=1)
        invalid = (n_total - class_sizes) / c
        support = (
            (truth / c) * p
            + (group_sizes[:, None] - truth / c - invalid[:, None]) * q
            + invalid[:, None] * (q + (p - q) / d)
        )
        estimate = calibrate_hec(support, group_sizes, int(n_total), p, q)
        bias = estimate - truth
        expected_bias = ((n_total - class_sizes) / d)[:, None]
        assert np.allclose(bias, np.broadcast_to(expected_bias, bias.shape))

    def test_rejects_empty_group(self, truth):
        with pytest.raises(AggregationError):
            calibrate_hec(truth, np.asarray([0.0, 1.0, 1.0]), 100, 0.6, 0.2)

    def test_rejects_misaligned_sizes(self, truth):
        with pytest.raises(AggregationError):
            calibrate_hec(truth, np.ones(2), 100, 0.6, 0.2)


class TestPTJ:
    def test_inverts_expected_support(self, truth):
        p, q = 0.7, 0.1
        n_total = truth.sum()
        support = truth.ravel() * p + (n_total - truth.ravel()) * q
        estimate = calibrate_ptj(support, int(n_total), p, q, truth.shape[0])
        assert np.allclose(estimate, truth)

    def test_rejects_nondivisible_support(self):
        with pytest.raises(AggregationError):
            calibrate_ptj(np.zeros(10), 100, 0.7, 0.1, 3)


class TestPTS:
    def test_inverts_expected_support(self, truth):
        """Eq. (6) inverts the exact four-population expectation."""
        p1, q1 = grr_probabilities(1.0, truth.shape[0])
        p2, q2 = oue_probabilities(1.0)
        n_total = truth.sum()
        class_sizes = truth.sum(axis=1)
        item_totals = truth.sum(axis=0)
        support = (
            truth * (p1 - q1) * (p2 - q2)
            + class_sizes[:, None] * q2 * (p1 - q1)
            + item_totals[None, :] * q1 * (p2 - q2)
            + n_total * q1 * q2
        )
        label_counts = class_sizes * p1 + (n_total - class_sizes) * q1
        estimate = calibrate_pts(support, label_counts, int(n_total), p1, q1, p2, q2)
        assert np.allclose(estimate, truth)

    def test_rejects_misaligned_labels(self, truth):
        with pytest.raises(AggregationError):
            calibrate_pts(truth, np.ones(2), 100, 0.7, 0.1, 0.5, 0.2)


class TestCP:
    def test_matches_mechanism_estimate(self, truth, rng):
        """The standalone Eq. (4) equals CorrelatedPerturbation.estimate."""
        from repro.mechanisms import CorrelatedPerturbation

        mech = CorrelatedPerturbation(0.7, 0.9, n_classes=3, n_items=4, rng=rng)
        support = mech.simulate_support(truth.astype(np.int64), rng=rng)
        expected = mech.estimate(support)
        standalone = calibrate_cp(
            support.item_support,
            support.label_counts,
            support.n_users,
            mech.p1,
            mech.q1,
            mech.p2,
            mech.q2,
        )
        assert np.allclose(expected, standalone)

    def test_inverts_expected_support(self, truth):
        p1, q1 = grr_probabilities(0.5, truth.shape[0])
        p2, q2 = oue_probabilities(0.5)
        n_total = truth.sum()
        class_sizes = truth.sum(axis=1)
        support = (
            truth * p1 * (1 - q2) * p2
            + (class_sizes[:, None] - truth) * p1 * (1 - q2) * q2
            + (n_total - class_sizes)[:, None] * q1 * (1 - p2) * q2
        )
        label_counts = class_sizes * p1 + (n_total - class_sizes) * q1
        estimate = calibrate_cp(support, label_counts, int(n_total), p1, q1, p2, q2)
        assert np.allclose(estimate, truth)


class TestClassSizes:
    def test_inverts_grr_expectation(self):
        p1, q1 = grr_probabilities(1.0, 4)
        sizes = np.asarray([4000.0, 3000.0, 2000.0, 1000.0])
        n = sizes.sum()
        counts = sizes * p1 + (n - sizes) * q1
        assert np.allclose(estimate_class_sizes(counts, int(n), p1, q1), sizes)
