"""The PEM baseline miner."""

import numpy as np
import pytest

from repro.core.topk import PEMMiner, pem_iteration_count
from repro.exceptions import ConfigurationError, DomainError


class TestConfiguration:
    def test_iteration_count_formula(self):
        # d=1024, k=16, m=1: start at 5 bits (32 values), 10 total bits.
        miner = PEMMiner(k=16, epsilon=4.0, domain_size=1024)
        assert miner.start_bits == 5
        assert miner.n_iterations == 6
        assert pem_iteration_count(1024, 16) == 6

    def test_small_domain_single_iteration(self):
        miner = PEMMiner(k=16, epsilon=4.0, domain_size=20)
        assert miner.n_iterations == 1

    def test_extension_bits_shrink_iterations(self):
        one = PEMMiner(k=16, epsilon=4.0, domain_size=4096, extension_bits=1)
        two = PEMMiner(k=16, epsilon=4.0, domain_size=4096, extension_bits=2)
        assert two.n_iterations < one.n_iterations

    def test_default_keep_is_k(self):
        assert PEMMiner(k=10, epsilon=1.0, domain_size=256).keep == 10

    def test_validation(self):
        with pytest.raises(DomainError):
            PEMMiner(k=0, epsilon=1.0, domain_size=8)
        with pytest.raises(DomainError):
            PEMMiner(k=2, epsilon=1.0, domain_size=0)
        with pytest.raises(DomainError):
            PEMMiner(k=2, epsilon=1.0, domain_size=8, extension_bits=0)
        with pytest.raises(ConfigurationError):
            PEMMiner(k=2, epsilon=1.0, domain_size=8, invalid_mode="nope")


class TestMining:
    def test_finds_clear_heavy_hitters(self, rng):
        """With a huge budget and well-separated counts, PEM is exact."""
        counts = np.zeros(256, dtype=np.int64)
        heavy = [7, 100, 200, 250]
        for rank, item in enumerate(heavy):
            counts[item] = 50_000 - 5000 * rank
        counts += rng.multinomial(20_000, np.ones(256) / 256)
        miner = PEMMiner(k=4, epsilon=8.0, domain_size=256, rng=rng)
        result = miner.mine_counts(counts, rng=rng)
        assert set(result.top_items) == set(heavy)

    def test_returns_at_most_k(self, rng):
        counts = rng.multinomial(30_000, np.ones(128) / 128)
        miner = PEMMiner(k=5, epsilon=4.0, domain_size=128, rng=rng)
        result = miner.mine_counts(counts, rng=rng)
        assert len(result.top_items) <= 5
        assert len(set(result.top_items)) == len(result.top_items)

    def test_items_within_domain(self, rng):
        """Prefix codes beyond d (non-power-of-two domains) never leak."""
        counts = rng.multinomial(30_000, np.ones(100) / 100)
        miner = PEMMiner(k=8, epsilon=4.0, domain_size=100, rng=rng)
        result = miner.mine_counts(counts, rng=rng)
        assert all(0 <= item < 100 for item in result.top_items)

    def test_rejects_wrong_count_length(self, rng):
        miner = PEMMiner(k=4, epsilon=1.0, domain_size=64, rng=rng)
        with pytest.raises(DomainError):
            miner.mine_counts(np.ones(63, dtype=np.int64), rng=rng)

    def test_always_invalid_users_degrade_little_under_vp(self, rng):
        """VP handles a large invalid cohort better than random
        replacement (Table III's +VP row)."""
        counts = np.zeros(256, dtype=np.int64)
        ranks = np.arange(256, dtype=np.float64)
        probs = np.exp(-ranks / 40.0)
        counts += np.random.default_rng(1).multinomial(40_000, probs / probs.sum())
        truth = set(np.argsort(-counts)[:8].tolist())

        def score(invalid_mode: str) -> float:
            hits = 0
            for t in range(12):
                miner = PEMMiner(
                    k=8, epsilon=2.0, domain_size=256, invalid_mode=invalid_mode,
                    rng=np.random.default_rng(100 + t),
                )
                result = miner.mine_counts(counts, n_always_invalid=40_000)
                hits += len(set(result.top_items) & truth)
            return hits / (12 * 8)

        assert score("vp") > score("random")

    def test_trie_recording(self, rng):
        counts = rng.multinomial(5000, np.ones(64) / 64)
        miner = PEMMiner(k=4, epsilon=4.0, domain_size=64, record_trie=True, rng=rng)
        result = miner.mine_counts(counts, rng=rng)
        assert result.trie is not None
        assert len(result.trie) > 0


class TestFig3Failure:
    def test_prefix_expansion_misses_structured_top1(self):
        """The paper's Fig. 3: item '000' holds count 30 (the top-1) but
        its depth-1 prefix '0' (sum 61) loses to '1' (sum 63), so prefix
        expansion with keep=1 misses it even WITHOUT LDP noise.  We verify
        with a huge budget (noise negligible)."""
        counts = np.asarray([30, 0, 19, 12, 18, 13, 15, 17])
        misses = 0
        for t in range(20):
            miner = PEMMiner(
                k=1, epsilon=50.0, domain_size=8, extension_bits=1,
                rng=np.random.default_rng(t),
            )
            # Scale counts so per-iteration cohorts stay faithful.
            result = miner.mine_counts(counts * 1000)
            misses += result.top_items != [0]
        assert misses == 20  # deterministically wrong: the Fig. 3 trap
