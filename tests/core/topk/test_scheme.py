"""End-to-end multi-class top-k schemes."""

import numpy as np
import pytest

from repro.core.topk import OPTIMIZATIONS, MultiClassTopK
from repro.datasets import LabelItemDataset
from repro.exceptions import ConfigurationError, DomainError
from repro.metrics import average_over_classes


class TestConfiguration:
    def test_rejects_unknown_framework(self):
        with pytest.raises(ConfigurationError):
            MultiClassTopK("pem", k=4, epsilon=1.0, n_classes=2, n_items=16)

    def test_rejects_unknown_optimization(self):
        with pytest.raises(ConfigurationError):
            MultiClassTopK(
                "pts", k=4, epsilon=1.0, n_classes=2, n_items=16,
                optimizations=("turbo",),
            )

    def test_cp_and_global_are_pts_only(self):
        for toggle in ("cp", "global"):
            with pytest.raises(ConfigurationError):
                MultiClassTopK(
                    "ptj", k=4, epsilon=1.0, n_classes=2, n_items=16,
                    optimizations=(toggle,),
                )

    def test_parameter_validation(self):
        with pytest.raises(DomainError):
            MultiClassTopK("pts", k=0, epsilon=1.0, n_classes=2, n_items=16)
        with pytest.raises(ConfigurationError):
            MultiClassTopK("pts", k=4, epsilon=1.0, n_classes=2, n_items=16, a=1.5)
        with pytest.raises(ConfigurationError):
            MultiClassTopK("pts", k=4, epsilon=1.0, n_classes=2, n_items=16, b=0.0)

    def test_for_framework_named_configurations(self):
        ptj = MultiClassTopK.for_framework("ptj", k=4, epsilon=1.0, n_classes=2, n_items=16)
        assert ptj.describe() == "PTJ-Shuffling+VP"
        pts = MultiClassTopK.for_framework("pts", k=4, epsilon=1.0, n_classes=2, n_items=16)
        assert pts.describe() == "PTS-Shuffling+VP+CP+Global"
        hec = MultiClassTopK.for_framework("hec", k=4, epsilon=1.0, n_classes=2, n_items=16)
        assert hec.describe() == "HEC"
        baseline = MultiClassTopK.for_framework(
            "pts", k=4, epsilon=1.0, n_classes=2, n_items=16, optimized=False
        )
        assert baseline.describe() == "PTS"

    def test_budget_split_only_for_pts(self):
        pts = MultiClassTopK("pts", k=4, epsilon=4.0, n_classes=2, n_items=16)
        assert pts.epsilon1 == pts.epsilon2 == 2.0
        ptj = MultiClassTopK("ptj", k=4, epsilon=4.0, n_classes=2, n_items=16)
        assert ptj.epsilon1 == 0.0
        assert ptj.epsilon2 == 4.0

    def test_all_toggles_recognised(self):
        assert OPTIMIZATIONS == {"shuffle", "vp", "cp", "global"}

    def test_dataset_domain_mismatch(self, skewed_dataset):
        scheme = MultiClassTopK("pts", k=4, epsilon=1.0, n_classes=3, n_items=256)
        with pytest.raises(ConfigurationError):
            scheme.mine(skewed_dataset)


@pytest.mark.parametrize(
    "framework,optimized",
    [("hec", False), ("ptj", False), ("ptj", True), ("pts", False), ("pts", True)],
)
class TestAllVariantsRun:
    def test_output_contract(self, framework, optimized, skewed_dataset):
        scheme = MultiClassTopK.for_framework(
            framework, k=10, epsilon=4.0, n_classes=2, n_items=256,
            optimized=optimized, rng=np.random.default_rng(7),
        )
        mined = scheme.mine(skewed_dataset)
        assert set(mined) == {0, 1}
        for items in mined.values():
            assert len(items) <= 10
            assert len(set(items)) == len(items)
            assert all(0 <= i < 256 for i in items)


class TestQuality:
    def test_optimized_pts_beats_random_guessing(self, skewed_dataset):
        truth = skewed_dataset.true_topk(10)
        scheme = MultiClassTopK.for_framework(
            "pts", k=10, epsilon=4.0, n_classes=2, n_items=256,
            rng=np.random.default_rng(11),
        )
        f1 = average_over_classes(scheme.mine(skewed_dataset), truth, "f1")
        # Random guessing scores ~10/256.
        assert f1 > 0.3

    def test_high_budget_near_perfect(self, skewed_dataset):
        truth = skewed_dataset.true_topk(5)
        scheme = MultiClassTopK.for_framework(
            "pts", k=5, epsilon=16.0, n_classes=2, n_items=256,
            rng=np.random.default_rng(3),
        )
        f1 = average_over_classes(scheme.mine(skewed_dataset), truth, "f1")
        assert f1 >= 0.8

    def test_optimizations_help_on_flat_head(self, rng):
        """Table III's headline on a genuinely hard (flat-head) workload:
        the fully optimized PTS beats the PEM baseline."""
        from repro.datasets.synthetic import exponential_multiclass

        data = exponential_multiclass(
            n_users=300_000, n_classes=2, n_items=2048,
            exp_scales=[0.02, 0.018], shared_head=8, rng=np.random.default_rng(1),
        )
        truth = data.true_topk(10)

        def score(optimized):
            values = []
            for t in range(5):
                scheme = MultiClassTopK.for_framework(
                    "pts", k=10, epsilon=4.0, n_classes=2, n_items=2048,
                    optimized=optimized, rng=np.random.default_rng(400 + t),
                )
                values.append(average_over_classes(scheme.mine(data), truth, "f1"))
            return np.mean(values)

        assert score(True) > score(False)


class TestPTJStarvation:
    def test_small_classes_starve_under_ptj(self, rng):
        """Fig. 8: global bucket pruning starves tiny classes under PTJ,
        while PTS (per-class mining) still returns items for them."""
        sizes = [200_000, 150_000, 4_000]
        ranks = np.arange(1024, dtype=np.float64)
        probs = np.exp(-ranks / 50.0)
        probs /= probs.sum()
        counts = np.stack(
            [np.random.default_rng(c).multinomial(sizes[c], probs[np.random.default_rng(50 + c).permutation(1024)]) for c in range(3)]
        )
        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        ptj = MultiClassTopK.for_framework(
            "ptj", k=10, epsilon=4.0, n_classes=3, n_items=1024,
            rng=np.random.default_rng(5),
        )
        pts = MultiClassTopK.for_framework(
            "pts", k=10, epsilon=4.0, n_classes=3, n_items=1024,
            rng=np.random.default_rng(5),
        )
        ptj_mined = ptj.mine(data)
        pts_mined = pts.mine(data)
        assert len(ptj_mined[2]) < 10  # the 4k-user class starves
        assert len(pts_mined[2]) == 10  # PTS always reports k items


class TestDeterminism:
    def test_same_seed_same_result(self, skewed_dataset):
        a = MultiClassTopK.for_framework(
            "pts", k=8, epsilon=4.0, n_classes=2, n_items=256,
            rng=np.random.default_rng(99),
        ).mine(skewed_dataset)
        b = MultiClassTopK.for_framework(
            "pts", k=8, epsilon=4.0, n_classes=2, n_items=256,
            rng=np.random.default_rng(99),
        ).mine(skewed_dataset)
        assert a == b
