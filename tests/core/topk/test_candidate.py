"""Algorithm 1 — global candidate generation."""

import numpy as np
import pytest

from repro.core.topk import generate_candidates
from repro.exceptions import DomainError


@pytest.fixture
def workload(rng):
    """Item counts with a clear head, plus label counts for 3 classes."""
    ranks = np.arange(512, dtype=np.float64)
    probs = np.exp(-ranks / 30.0)
    item_counts = rng.multinomial(100_000, probs / probs.sum())
    label_counts = np.asarray([50_000, 30_000, 20_000])
    return item_counts, label_counts


class TestBucketMode:
    def test_candidates_halve_per_iteration(self, workload, rng):
        item_counts, label_counts = workload
        result = generate_candidates(
            item_counts=item_counts,
            label_counts=label_counts,
            k=8,
            n_iterations=2,
            epsilon1=1.0,
            epsilon2=1.0,
            invalid_mode="vp",
            use_buckets=True,
            rng=rng,
        )
        # Keeping half the (4kc = 96) buckets roughly halves the
        # candidate set per iteration; bucket sizes differ by one, so the
        # survivor count is approximate.
        assert 100 <= result.candidates.size <= 160  # ~512 / 4
        assert len(result.seeds) == 2
        assert len(result.bucket_states) == 2
        assert result.n_phase_users == 100_000

    def test_head_items_survive(self, workload, rng):
        item_counts, label_counts = workload
        truth = set(np.argsort(-item_counts)[:8].tolist())
        survived = []
        for t in range(10):
            result = generate_candidates(
                item_counts=item_counts,
                label_counts=label_counts,
                k=8,
                n_iterations=2,
                epsilon1=2.0,
                epsilon2=2.0,
                invalid_mode="vp",
                use_buckets=True,
                rng=np.random.default_rng(t),
            )
            survived.append(len(truth & set(result.candidates.tolist())) / len(truth))
        assert np.mean(survived) > 0.8

    def test_class_size_estimates_unbiased(self, workload, rng):
        item_counts, label_counts = workload
        estimates = np.stack(
            [
                generate_candidates(
                    item_counts=item_counts,
                    label_counts=label_counts,
                    k=8,
                    n_iterations=1,
                    epsilon1=1.0,
                    epsilon2=1.0,
                    invalid_mode="vp",
                    use_buckets=True,
                    rng=np.random.default_rng(t),
                ).class_size_estimates
                for t in range(100)
            ]
        )
        assert np.abs(estimates.mean(axis=0) - label_counts).max() < 2500

    def test_zero_iterations_keeps_full_domain(self, workload, rng):
        item_counts, label_counts = workload
        result = generate_candidates(
            item_counts=item_counts,
            label_counts=label_counts,
            k=8,
            n_iterations=0,
            epsilon1=1.0,
            epsilon2=1.0,
            invalid_mode="vp",
            use_buckets=True,
            rng=rng,
        )
        assert result.candidates.size == 512

    def test_class_fractions_sum_to_one(self, workload, rng):
        item_counts, label_counts = workload
        result = generate_candidates(
            item_counts=item_counts,
            label_counts=label_counts,
            k=8,
            n_iterations=1,
            epsilon1=1.0,
            epsilon2=1.0,
            invalid_mode="vp",
            use_buckets=True,
            rng=rng,
        )
        assert result.class_fractions().sum() == pytest.approx(1.0)

    def test_rejects_inconsistent_populations(self, rng):
        with pytest.raises(DomainError):
            generate_candidates(
                item_counts=np.asarray([10, 10]),
                label_counts=np.asarray([5, 5, 5]),
                k=2,
                n_iterations=1,
                epsilon1=1.0,
                epsilon2=1.0,
                invalid_mode="vp",
                use_buckets=True,
                rng=rng,
            )


class TestPrefixMode:
    def test_requires_prefix_arguments(self, workload, rng):
        item_counts, label_counts = workload
        with pytest.raises(DomainError):
            generate_candidates(
                item_counts=item_counts,
                label_counts=label_counts,
                k=8,
                n_iterations=1,
                epsilon1=1.0,
                epsilon2=1.0,
                invalid_mode="random",
                use_buckets=False,
                rng=rng,
            )

    def test_prefix_depth_advances(self, workload, rng):
        item_counts, label_counts = workload
        result = generate_candidates(
            item_counts=item_counts,
            label_counts=label_counts,
            k=8,
            n_iterations=2,
            epsilon1=1.0,
            epsilon2=1.0,
            invalid_mode="random",
            use_buckets=False,
            rng=rng,
            total_bits=9,
            start_prefixes=np.arange(16),
            start_depth=4,
        )
        assert result.prefix_depth == 6
        assert result.candidates.max() < (1 << 6)
