"""Seeded candidate shuffling and the Fig. 3 combinatorics."""

import numpy as np
import pytest

from repro.core.topk import (
    BucketState,
    assign_buckets,
    fig3_success_probability,
    pair_partition_count,
)
from repro.exceptions import DomainError


class TestAssignBuckets:
    def test_deterministic_given_seed(self):
        candidates = np.arange(100)
        a = assign_buckets(candidates, 10, seed=7)
        b = assign_buckets(candidates, 10, seed=7)
        assert (a.bucket_of == b.bucket_of).all()

    def test_different_seeds_differ(self):
        candidates = np.arange(100)
        a = assign_buckets(candidates, 10, seed=7)
        b = assign_buckets(candidates, 10, seed=8)
        assert (a.bucket_of != b.bucket_of).any()

    def test_near_equal_sizes(self):
        assignment = assign_buckets(np.arange(103), 10, seed=0)
        sizes = assignment.bucket_sizes()
        assert sizes.min() >= 10
        assert sizes.max() <= 11
        assert sizes.sum() == 103

    def test_fewer_candidates_than_buckets(self):
        assignment = assign_buckets(np.arange(5), 10, seed=0)
        assert assignment.n_buckets == 5

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            assign_buckets(np.asarray([]), 4, seed=0)

    def test_rejects_zero_buckets(self):
        with pytest.raises(DomainError):
            assign_buckets(np.arange(4), 0, seed=0)

    def test_bucket_counts_fold(self):
        assignment = assign_buckets(np.asarray([10, 20, 30, 40]), 2, seed=3)
        counts = assignment.bucket_counts(np.asarray([1, 2, 3, 4]))
        assert counts.sum() == 10
        assert counts.size == 2

    def test_bucket_counts_rejects_misaligned(self):
        assignment = assign_buckets(np.arange(4), 2, seed=3)
        with pytest.raises(DomainError):
            assignment.bucket_counts(np.ones(5))

    def test_members_partition_candidates(self):
        assignment = assign_buckets(np.arange(20), 4, seed=1)
        members = np.sort(np.concatenate([assignment.members(b) for b in range(4)]))
        assert (members == np.arange(20)).all()

    def test_surviving_candidates(self):
        assignment = assign_buckets(np.arange(12), 3, seed=5)
        survivors = assignment.surviving_candidates(np.asarray([0, 2]))
        expected = np.sort(
            np.concatenate([assignment.members(0), assignment.members(2)])
        )
        assert (survivors == expected).all()


class TestBucketState:
    def test_roundtrip(self):
        state = BucketState.from_kept(np.asarray([1, 3]), 4)
        assert state.bits.tolist() == [0, 1, 0, 1]
        assert state.kept_buckets().tolist() == [1, 3]
        assert state.n_buckets == 4

    def test_communication_is_one_bit_per_bucket(self):
        state = BucketState.from_kept(np.asarray([0]), 80)
        assert state.communication_bits() == 80


class TestFig3Combinatorics:
    def test_pair_partition_counts(self):
        assert pair_partition_count(2) == 1
        assert pair_partition_count(4) == 3
        assert pair_partition_count(6) == 15
        assert pair_partition_count(8) == 105

    def test_rejects_odd(self):
        with pytest.raises(DomainError):
            pair_partition_count(7)

    def test_paper_worked_example(self):
        """(C(8,2)C(6,2)C(4,2)/4! - C(6,2)C(4,2)/3!) / (C(8,2)C(6,2)C(4,2)/4!)
        = 0.857 — the probability shuffling rescues the Fig. 3 top-1."""
        assert fig3_success_probability() == pytest.approx(0.857, abs=0.001)

    def test_no_blockers_means_certain_success(self):
        assert fig3_success_probability(n_blockers=0) == 1.0

    def test_monte_carlo_agreement(self, rng):
        """Simulate the Fig. 3 example: items '000'..'111' with counts
        30,0,19,12,18,13,15,17, buckets of two, keep top-2 buckets, then
        the top item must survive."""
        counts = np.asarray([30, 0, 19, 12, 18, 13, 15, 17])
        hits = 0
        trials = 4000
        for _ in range(trials):
            perm = rng.permutation(8)
            buckets = perm.reshape(4, 2)
            sums = counts[buckets].sum(axis=1)
            top2 = np.argsort(-sums, kind="stable")[:2]
            survivors = buckets[top2].ravel()
            hits += 0 in survivors
        estimate = hits / trials
        assert estimate == pytest.approx(fig3_success_probability(), abs=0.02)
