"""Single bucket/prefix pruning iterations and the final ranking step."""

import numpy as np
import pytest

from repro.core.topk import (
    bucket_iteration_count,
    bucket_prune_once,
    estimate_final,
    prefix_prune_once,
)
from repro.exceptions import DomainError


class TestBucketPruneOnce:
    def test_halves_candidates(self, rng):
        counts = rng.multinomial(50_000, np.ones(512) / 512)
        outcome = bucket_prune_once(
            candidates=np.arange(512),
            cohort_item_counts=counts,
            n_extra_invalid=0,
            n_buckets=64,
            keep=32,
            epsilon=4.0,
            invalid_mode="vp",
            rng=rng,
        )
        assert outcome.candidates.size == 256
        assert outcome.bucket_state.kept_buckets().size == 32
        assert outcome.seed is not None

    def test_keeps_heavy_candidates(self, rng):
        """A dominant item's bucket must survive with a clear margin."""
        counts = np.zeros(256, dtype=np.int64)
        counts[123] = 50_000
        counts += rng.multinomial(5000, np.ones(256) / 256)
        survived = 0
        for t in range(30):
            outcome = bucket_prune_once(
                candidates=np.arange(256),
                cohort_item_counts=counts,
                n_extra_invalid=0,
                n_buckets=32,
                keep=16,
                epsilon=4.0,
                invalid_mode="vp",
                rng=np.random.default_rng(t),
            )
            survived += 123 in outcome.candidates
        assert survived == 30

    def test_candidate_subset_only(self, rng):
        counts = rng.multinomial(10_000, np.ones(100) / 100)
        candidates = np.arange(0, 100, 2)
        outcome = bucket_prune_once(
            candidates=candidates,
            cohort_item_counts=counts,
            n_extra_invalid=0,
            n_buckets=10,
            keep=5,
            epsilon=2.0,
            invalid_mode="vp",
            rng=rng,
        )
        assert set(outcome.candidates) <= set(candidates.tolist())


class TestPrefixPruneOnce:
    def test_extends_by_one_bit(self, rng):
        counts = rng.multinomial(10_000, np.ones(64) / 64)
        outcome = prefix_prune_once(
            prefixes=np.arange(8),
            depth=3,
            total_bits=6,
            cohort_item_counts=counts,
            n_extra_invalid=0,
            keep=4,
            epsilon=4.0,
            invalid_mode="vp",
            rng=rng,
        )
        assert outcome.candidates.size == 8  # 4 kept x 2 extensions

    def test_multi_bit_extension(self, rng):
        counts = rng.multinomial(10_000, np.ones(64) / 64)
        outcome = prefix_prune_once(
            prefixes=np.arange(8),
            depth=3,
            total_bits=6,
            cohort_item_counts=counts,
            n_extra_invalid=0,
            keep=4,
            epsilon=4.0,
            invalid_mode="vp",
            rng=rng,
            extension_bits=2,
        )
        assert outcome.candidates.size == 16  # 4 kept x 4 extensions

    def test_extension_clipped_at_total_bits(self, rng):
        counts = rng.multinomial(1000, np.ones(64) / 64)
        outcome = prefix_prune_once(
            prefixes=np.arange(32),
            depth=5,
            total_bits=6,
            cohort_item_counts=counts,
            n_extra_invalid=0,
            keep=4,
            epsilon=4.0,
            invalid_mode="vp",
            rng=rng,
            extension_bits=3,
        )
        assert outcome.candidates.max() < 64

    def test_final_depth_no_extension(self, rng):
        counts = rng.multinomial(1000, np.ones(64) / 64)
        outcome = prefix_prune_once(
            prefixes=np.arange(64),
            depth=6,
            total_bits=6,
            cohort_item_counts=counts,
            n_extra_invalid=0,
            keep=8,
            epsilon=4.0,
            invalid_mode="vp",
            rng=rng,
        )
        assert outcome.candidates.size == 8

    def test_rejects_bad_depth(self, rng):
        with pytest.raises(DomainError):
            prefix_prune_once(
                prefixes=np.arange(4), depth=7, total_bits=6,
                cohort_item_counts=np.ones(64, dtype=np.int64),
                n_extra_invalid=0, keep=2, epsilon=1.0, invalid_mode="vp", rng=rng,
            )


class TestEstimateFinal:
    def test_ranks_by_support(self, rng):
        counts = np.zeros(64, dtype=np.int64)
        counts[[3, 17, 40]] = [40_000, 30_000, 20_000]
        top, support = estimate_final(
            candidates=np.arange(64),
            valid_item_counts=counts,
            n_invalid=0,
            epsilon=8.0,
            invalid_mode="vp",
            k=3,
            rng=rng,
        )
        assert top == [3, 17, 40]
        assert support.shape == (64,)

    def test_empty_candidates(self, rng):
        top, support = estimate_final(
            candidates=np.asarray([], dtype=np.int64),
            valid_item_counts=np.ones(4, dtype=np.int64),
            n_invalid=0,
            epsilon=1.0,
            invalid_mode="vp",
            k=2,
            rng=rng,
        )
        assert top == []
        assert support.size == 0

    def test_k_capped_at_candidates(self, rng):
        counts = np.asarray([100, 50, 10, 5])
        top, _ = estimate_final(
            candidates=np.asarray([0, 1]),
            valid_item_counts=counts,
            n_invalid=0,
            epsilon=8.0,
            invalid_mode="vp",
            k=10,
            rng=rng,
        )
        assert len(top) == 2


class TestIterationCount:
    def test_paper_formula(self):
        # IT = ceil(log2(d / 4k)) + 1
        assert bucket_iteration_count(14_000, 20) == 9
        assert bucket_iteration_count(1024, 16) == 5
        assert bucket_iteration_count(80, 20) == 1
        assert bucket_iteration_count(81, 20) == 2

    def test_validation(self):
        with pytest.raises(DomainError):
            bucket_iteration_count(0, 4)
        with pytest.raises(DomainError):
            bucket_iteration_count(10, 0)
