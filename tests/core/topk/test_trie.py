"""Prefix-trie substrate."""

import numpy as np
import pytest

from repro.core.topk import PrefixTrie, bits_needed, extend_prefixes, prefix_counts, prefix_of
from repro.exceptions import DomainError


class TestBitHelpers:
    def test_bits_needed(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 1
        assert bits_needed(3) == 2
        assert bits_needed(1024) == 10
        assert bits_needed(1025) == 11

    def test_bits_needed_rejects_zero(self):
        with pytest.raises(DomainError):
            bits_needed(0)

    def test_prefix_of(self):
        values = np.asarray([0b1011, 0b0100])
        assert prefix_of(values, 4, 2).tolist() == [0b10, 0b01]
        assert prefix_of(values, 4, 4).tolist() == [0b1011, 0b0100]
        assert prefix_of(values, 4, 0).tolist() == [0, 0]

    def test_prefix_of_rejects_bad_length(self):
        with pytest.raises(DomainError):
            prefix_of(np.asarray([1]), 4, 5)

    def test_extend_prefixes_one_bit(self):
        assert extend_prefixes(np.asarray([0b10]), 1).tolist() == [0b100, 0b101]

    def test_extend_prefixes_two_bits(self):
        out = extend_prefixes(np.asarray([1]), 2)
        assert out.tolist() == [0b100, 0b101, 0b110, 0b111]

    def test_extend_rejects_zero_bits(self):
        with pytest.raises(DomainError):
            extend_prefixes(np.asarray([1]), 0)

    def test_prefix_counts_aggregates_subtrees(self):
        counts = np.asarray([5, 3, 2, 1])  # items 00,01,10,11
        assert prefix_counts(counts, 2, 1).tolist() == [8, 3]
        assert prefix_counts(counts, 2, 2).tolist() == [5, 3, 2, 1]

    def test_prefix_counts_rejects_overflow(self):
        with pytest.raises(DomainError):
            prefix_counts(np.ones(5), 2, 1)


class TestPrefixTrie:
    def test_insert_and_frontier(self):
        trie = PrefixTrie(3)
        trie.insert_frontier(np.asarray([0b10, 0b01]), 2, np.asarray([7.0, 3.0]))
        nodes = trie.frontier(2)
        assert {node.prefix for node in nodes} == {0b10, 0b01}
        assert {node.support for node in nodes} == {7.0, 3.0}

    def test_deeper_insert_creates_path(self):
        trie = PrefixTrie(3)
        trie.insert_frontier(np.asarray([0b101]), 3, np.asarray([9.0]))
        assert len(trie) == 3  # three nodes along the path

    def test_rejects_bad_depth(self):
        trie = PrefixTrie(3)
        with pytest.raises(DomainError):
            trie.insert_frontier(np.asarray([1]), 4, np.asarray([1.0]))

    def test_rejects_misaligned_supports(self):
        trie = PrefixTrie(3)
        with pytest.raises(DomainError):
            trie.insert_frontier(np.asarray([1, 2]), 2, np.asarray([1.0]))

    def test_iteration_covers_all_nodes(self):
        trie = PrefixTrie(2)
        trie.insert_frontier(np.asarray([0b00, 0b11]), 2, np.asarray([1.0, 2.0]))
        prefixes = {node.prefix for node in trie if node.depth == 2}
        assert prefixes == {0b00, 0b11}
