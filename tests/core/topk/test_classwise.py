"""Algorithm 2 — per-class mining and the b noise rule."""

import numpy as np
import pytest

from repro.core.topk import ClassMiningData, mine_class_topk, noise_rule_use_cp
from repro.exceptions import DomainError


@pytest.fixture
def class_data(rng):
    """One class group: skewed native items plus uniform foreign noise."""
    ranks = np.arange(256, dtype=np.float64)
    probs = np.exp(-ranks / 20.0)
    native = rng.multinomial(40_000, probs / probs.sum())
    foreign = rng.multinomial(10_000, np.ones(256) / 256)
    return ClassMiningData(native_counts=native, foreign_counts=foreign)


class TestClassMiningData:
    def test_n_users(self, class_data):
        assert class_data.n_users == 50_000

    def test_split_preserves_population(self, class_data, rng):
        parts = class_data.split(4, rng)
        assert len(parts) == 4
        native_total = sum(p.native_counts.sum() for p in parts)
        foreign_total = sum(p.foreign_counts.sum() for p in parts)
        assert native_total == 40_000
        assert foreign_total == 10_000

    def test_rejects_misaligned_vectors(self):
        with pytest.raises(DomainError):
            ClassMiningData(np.ones(3, dtype=np.int64), np.ones(4, dtype=np.int64))


class TestNoiseRule:
    def test_cp_when_inflow_moderate(self):
        assert noise_rule_use_cp(inflow=1000, expected_inflow=900, b=2.0)

    def test_vp_when_inflow_excessive(self):
        assert not noise_rule_use_cp(inflow=5000, expected_inflow=900, b=2.0)

    def test_boundary_is_inclusive(self):
        assert noise_rule_use_cp(inflow=1800, expected_inflow=900, b=2.0)

    def test_degenerate_expectation_forces_vp(self):
        assert not noise_rule_use_cp(inflow=10, expected_inflow=0.0, b=2.0)

    def test_rejects_bad_b(self):
        with pytest.raises(DomainError):
            noise_rule_use_cp(1, 1, b=0.0)


class TestMineClassTopk:
    def test_finds_head_items(self, class_data, rng):
        truth = set(np.argsort(-class_data.native_counts)[:8].tolist())
        result = mine_class_topk(
            data=class_data,
            candidates=np.arange(256),
            k=8,
            n_iterations=4,
            epsilon2=4.0,
            use_cp_final=True,
            invalid_mode="vp",
            rng=rng,
        )
        assert len(result.top_items) == 8
        assert len(truth & set(result.top_items)) >= 5
        assert result.used_cp

    def test_single_iteration_is_estimation_only(self, class_data, rng):
        result = mine_class_topk(
            data=class_data,
            candidates=np.arange(256),
            k=8,
            n_iterations=1,
            epsilon2=4.0,
            use_cp_final=False,
            invalid_mode="vp",
            rng=rng,
        )
        assert len(result.top_items) == 8
        assert not result.used_cp

    def test_cp_final_excludes_foreign_items(self, rng):
        """With CP the foreign users' items cannot win; with VP a foreign-
        only item can.  Build a class whose foreign noise concentrates on
        one item."""
        native = np.zeros(64, dtype=np.int64)
        native[:8] = 4000
        foreign = np.zeros(64, dtype=np.int64)
        foreign[63] = 30_000  # a foreign-class hit, not native
        data = ClassMiningData(native, foreign)
        cp_hits, vp_hits = 0, 0
        for t in range(10):
            cp = mine_class_topk(
                data=data, candidates=np.arange(64), k=8, n_iterations=1,
                epsilon2=4.0, use_cp_final=True, invalid_mode="vp",
                rng=np.random.default_rng(t),
            )
            vp = mine_class_topk(
                data=data, candidates=np.arange(64), k=8, n_iterations=1,
                epsilon2=4.0, use_cp_final=False, invalid_mode="vp",
                rng=np.random.default_rng(t),
            )
            cp_hits += 63 in cp.top_items
            vp_hits += 63 in vp.top_items
        assert cp_hits == 0
        assert vp_hits == 10

    def test_prefix_mode_depth_guard(self, class_data, rng):
        with pytest.raises(DomainError):
            mine_class_topk(
                data=class_data,
                candidates=np.arange(16),
                k=4,
                n_iterations=2,
                epsilon2=2.0,
                use_cp_final=False,
                invalid_mode="random",
                rng=rng,
                use_buckets=False,
                total_bits=8,
                prefix_depth=4,  # 4 + 1 iteration != 8 -> schedule error
            )

    def test_prefix_mode_full_run(self, class_data, rng):
        result = mine_class_topk(
            data=class_data,
            candidates=np.arange(16),
            k=8,
            n_iterations=5,
            epsilon2=4.0,
            use_cp_final=False,
            invalid_mode="random",
            rng=rng,
            use_buckets=False,
            total_bits=8,
            prefix_depth=4,
        )
        assert len(result.top_items) <= 8

    def test_rejects_zero_iterations(self, class_data, rng):
        with pytest.raises(DomainError):
            mine_class_topk(
                data=class_data, candidates=np.arange(256), k=4, n_iterations=0,
                epsilon2=1.0, use_cp_final=False, invalid_mode="vp", rng=rng,
            )
