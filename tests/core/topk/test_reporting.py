"""Shared iteration-report simulation and cohort splitting."""

import numpy as np
import pytest

from repro.core.topk import simulate_iteration_support, split_counts_over_iterations, top_indices
from repro.exceptions import ConfigurationError, DomainError


class TestSimulateIterationSupport:
    def test_vp_mode_returns_domain_sized_support(self, rng):
        support = simulate_iteration_support(
            np.asarray([100, 50, 25]), 30, 1.0, "vp", rng
        )
        assert support.shape == (3,)
        assert (support >= 0).all()

    def test_random_mode_uniform_replacement(self, rng):
        support = simulate_iteration_support(
            np.asarray([100, 50, 25]), 30, 1.0, "random", rng
        )
        assert support.shape == (3,)

    def test_random_mode_weighted_replacement(self, rng):
        """Replacement weights steer where invalid users land."""
        from repro.mechanisms.ue import oue_probabilities

        n_trials = 300
        first = 0.0
        for _ in range(n_trials):
            support = simulate_iteration_support(
                np.zeros(2, dtype=np.int64),
                1000,
                8.0,
                "random",
                rng,
                replacement_weights=np.asarray([3.0, 1.0]),
            )
            first += support[0]
        # 3:1 weighting: value 0 expects 750 holders, OUE-attenuated.
        p, q = oue_probabilities(8.0)
        expected = 1000 * (0.75 * p + 0.25 * q)
        assert first / n_trials == pytest.approx(expected, rel=0.1)

    def test_rejects_unknown_mode(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_iteration_support(np.asarray([1]), 0, 1.0, "nope", rng)

    def test_rejects_negative_invalid(self, rng):
        with pytest.raises(DomainError):
            simulate_iteration_support(np.asarray([1]), -1, 1.0, "vp", rng)

    def test_rejects_bad_weights(self, rng):
        with pytest.raises(DomainError):
            simulate_iteration_support(
                np.asarray([1, 2]), 5, 1.0, "random", rng,
                replacement_weights=np.asarray([1.0]),
            )
        with pytest.raises(DomainError):
            simulate_iteration_support(
                np.asarray([1, 2]), 5, 1.0, "random", rng,
                replacement_weights=np.asarray([0.0, 0.0]),
            )

    def test_vp_mode_filters_invalid_noise(self, rng):
        """Invalid users contribute ~q(1-p) under VP vs ~q + (p-q)/d under
        random replacement (Theorems 4-5) — check the ordering."""
        trials = 200
        vp_noise, random_noise = 0.0, 0.0
        zero = np.zeros(4, dtype=np.int64)
        for _ in range(trials):
            vp_noise += simulate_iteration_support(zero, 1000, 1.0, "vp", rng).mean()
            random_noise += simulate_iteration_support(zero, 1000, 1.0, "random", rng).mean()
        assert vp_noise < random_noise


class TestSplitCounts:
    def test_preserves_totals_and_shape(self, rng):
        counts = rng.multinomial(10_000, np.ones(20) / 20)
        parts = split_counts_over_iterations(counts, 4, rng)
        assert len(parts) == 4
        assert sum(int(p.sum()) for p in parts) == 10_000
        assert (np.stack(parts).sum(axis=0) == counts).all()

    def test_near_equal_cohort_sizes(self, rng):
        counts = rng.multinomial(10_001, np.ones(5) / 5)
        parts = split_counts_over_iterations(counts, 3, rng)
        sizes = sorted(int(p.sum()) for p in parts)
        assert sizes[-1] - sizes[0] <= 1

    def test_preserves_matrix_shape(self, rng):
        counts = rng.multinomial(600, np.ones(6) / 6).reshape(2, 3)
        parts = split_counts_over_iterations(counts, 2, rng)
        assert parts[0].shape == (2, 3)

    def test_single_iteration_identity(self, rng):
        counts = np.asarray([5, 6, 7])
        parts = split_counts_over_iterations(counts, 1, rng)
        assert (parts[0] == counts).all()

    def test_rejects_bad_args(self, rng):
        with pytest.raises(DomainError):
            split_counts_over_iterations(np.asarray([1]), 0, rng)
        with pytest.raises(DomainError):
            split_counts_over_iterations(np.asarray([-1]), 2, rng)


class TestTopIndices:
    def test_orders_by_support(self):
        assert top_indices(np.asarray([5, 9, 1, 7]), 2).tolist() == [1, 3]

    def test_ties_break_to_lower_index(self):
        assert top_indices(np.asarray([5, 9, 9, 5]), 3).tolist() == [1, 2, 0]

    def test_k_larger_than_domain(self):
        assert top_indices(np.asarray([3, 1]), 5).tolist() == [0, 1]

    def test_rejects_bad_k(self):
        with pytest.raises(DomainError):
            top_indices(np.asarray([1.0]), 0)
