"""The four multi-class frequency-estimation frameworks."""

import numpy as np
import pytest

from repro.core.frameworks import (
    FRAMEWORKS,
    HECFramework,
    PTJFramework,
    PTSCPFramework,
    PTSFramework,
    make_framework,
    split_counts_into_groups,
)
from repro.datasets import LabelItemDataset
from repro.exceptions import ConfigurationError
from repro.metrics import rmse


def _trials(framework, dataset, n_trials, seed0=1000):
    return np.stack(
        [
            framework.estimate_frequencies(dataset, rng=np.random.default_rng(seed0 + t))
            for t in range(n_trials)
        ]
    )


class TestRegistry:
    def test_four_frameworks(self):
        assert set(FRAMEWORKS) == {"hec", "ptj", "pts", "pts-cp"}

    def test_make_framework_by_name(self):
        fw = make_framework("ptj", epsilon=1.0, n_classes=2, n_items=4)
        assert isinstance(fw, PTJFramework)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_framework("nope", epsilon=1.0, n_classes=2, n_items=4)

    def test_label_fraction_only_for_split_frameworks(self):
        with pytest.raises(ConfigurationError):
            make_framework("hec", epsilon=1.0, n_classes=2, n_items=4, label_fraction=0.3)
        fw = make_framework("pts", epsilon=1.0, n_classes=2, n_items=4, label_fraction=0.3)
        assert fw.epsilon1 == pytest.approx(0.3)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PTJFramework(1.0, 2, 4, mode="telepathy")

    def test_pts_needs_two_classes(self):
        with pytest.raises(ConfigurationError):
            PTSFramework(1.0, 1, 4)
        with pytest.raises(ConfigurationError):
            PTSCPFramework(1.0, 1, 4)


class TestDatasetValidation:
    def test_domain_mismatch(self, small_dataset):
        fw = PTJFramework(1.0, 5, 5)
        with pytest.raises(ConfigurationError):
            fw.estimate_frequencies(small_dataset)


class TestGroupSplitting:
    def test_split_preserves_totals(self, rng):
        counts = rng.multinomial(10_000, np.ones(12) / 12).reshape(3, 4)
        groups = split_counts_into_groups(counts, [4000, 3000, 3000], rng)
        assert groups.shape == (3, 3, 4)
        assert (groups.sum(axis=0) == counts).all()
        assert groups[0].sum() == 4000

    def test_split_rejects_bad_sizes(self, rng):
        counts = np.ones((2, 2), dtype=np.int64)
        with pytest.raises(ConfigurationError):
            split_counts_into_groups(counts, [3, 3], rng)


class TestUnbiasedness:
    """PTJ, PTS and PTS-CP are unbiased; HEC carries the Theorem-4 bias."""

    def test_ptj_unbiased(self, small_dataset):
        fw = PTJFramework(2.0, 3, 8)
        trials = _trials(fw, small_dataset, 80)
        spread = trials.std(axis=0).max() / np.sqrt(80)
        bias = np.abs(trials.mean(axis=0) - small_dataset.pair_counts())
        assert bias.max() < 6 * spread

    def test_pts_unbiased(self, small_dataset):
        fw = PTSFramework(2.0, 3, 8)
        trials = _trials(fw, small_dataset, 80)
        spread = trials.std(axis=0).max() / np.sqrt(80)
        bias = np.abs(trials.mean(axis=0) - small_dataset.pair_counts())
        assert bias.max() < 6 * spread

    def test_pts_cp_unbiased(self, small_dataset):
        fw = PTSCPFramework(2.0, 3, 8)
        trials = _trials(fw, small_dataset, 80)
        spread = trials.std(axis=0).max() / np.sqrt(80)
        bias = np.abs(trials.mean(axis=0) - small_dataset.pair_counts())
        assert bias.max() < 6 * spread

    def test_hec_bias_matches_theorem4(self, small_dataset):
        """HEC's deniability bias is (N - n_C)/d per cell of class C."""
        fw = HECFramework(2.0, 3, 8)
        trials = _trials(fw, small_dataset, 120)
        observed_bias = trials.mean(axis=0) - small_dataset.pair_counts()
        n_total = small_dataset.n_users
        expected = (n_total - small_dataset.class_counts()) / small_dataset.n_items
        spread = trials.std(axis=0).max() / np.sqrt(120)
        assert np.abs(observed_bias - expected[:, None]).max() < 6 * spread


class TestModesAgree:
    """The protocol path and the simulate path induce the same estimates
    in distribution (mean agreement on a small dataset)."""

    @pytest.mark.parametrize("name", ["hec", "ptj", "pts", "pts-cp"])
    def test_mean_agreement(self, name, rng):
        counts = rng.multinomial(1200, np.ones(6) / 6).reshape(2, 3)
        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        sim = make_framework(name, epsilon=2.0, n_classes=2, n_items=3, mode="simulate")
        proto = make_framework(name, epsilon=2.0, n_classes=2, n_items=3, mode="protocol")
        sim_trials = _trials(sim, data, 120)
        proto_trials = _trials(proto, data, 40, seed0=9000)
        sigma = np.sqrt(
            sim_trials.var(axis=0) / 120 + proto_trials.var(axis=0) / 40
        )
        diff = np.abs(sim_trials.mean(axis=0) - proto_trials.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()


class TestUtilityOrdering:
    def test_hec_is_worst(self, small_dataset):
        """Fig. 6's headline: PTJ and PTS beat HEC decisively."""
        errors = {}
        for name in ("hec", "ptj", "pts"):
            fw = make_framework(name, epsilon=1.0, n_classes=3, n_items=8)
            trials = _trials(fw, small_dataset, 20)
            errors[name] = np.mean(
                [rmse(t, small_dataset.pair_counts()) for t in trials]
            )
        assert errors["hec"] > errors["ptj"]
        assert errors["hec"] > errors["pts"]

    def test_cp_beats_pts_at_small_epsilon_with_structure(self, rng):
        """With class-concentrated items and a small budget, correlated
        perturbation reduces the cross-class noise PTS suffers."""
        # Each class has its own disjoint popular items.
        counts = np.zeros((4, 40), dtype=np.int64)
        for c in range(4):
            counts[c, c * 10 : (c + 1) * 10] = 2500
        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        pts = PTSFramework(0.5, 4, 40)
        cp = PTSCPFramework(0.5, 4, 40)
        pts_err = np.mean([rmse(t, counts) for t in _trials(pts, data, 25)])
        cp_err = np.mean([rmse(t, counts) for t in _trials(cp, data, 25)])
        assert cp_err < pts_err


class TestCommunication:
    def test_ptj_costs_more_than_pts(self):
        """Table II: PTJ's joint OUE report dominates the per-user cost."""
        ptj = PTJFramework(1.0, 10, 1000)
        pts = PTSFramework(1.0, 10, 1000)
        assert ptj.communication_bits_per_user() > pts.communication_bits_per_user()

    def test_hec_adaptive_selection(self):
        small = HECFramework(1.0, 2, 4)
        large = HECFramework(1.0, 2, 4096)
        assert small.oracle_name == "grr"
        assert large.oracle_name == "oue"
