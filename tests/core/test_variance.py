"""Closed-form utility theory: Theorems 4-10 and Table I."""

import numpy as np
import pytest

from repro.core.variance import (
    CPProbabilities,
    TABLE1_EPSILONS,
    cp_estimate_variance,
    ldp_count_moments,
    ldp_invalid_noise,
    pts_estimate_variance,
    table1,
    table1_coefficients,
    theorem10_gap_lower_bound,
    vp_count_moments,
    vp_invalid_noise,
    vp_vs_ldp_variance_gap,
)
from repro.exceptions import DomainError

P, Q = 0.5, 0.2


class TestInvalidNoise:
    def test_theorem4_formulas(self):
        e, v = ldp_invalid_noise(m=1000, d=10, p=P, q=Q)
        assert e == pytest.approx(1000 * Q + 100 * (P - Q))
        assert v == pytest.approx(1000 * Q * (1 - Q) + 100 * (P - Q) * (1 - P - Q))

    def test_theorem5_formulas(self):
        e, v = vp_invalid_noise(m=1000, p=P, q=Q)
        assert e == pytest.approx(1000 * Q * (1 - P))
        assert v == pytest.approx(1000 * (Q * (1 - Q) - P * Q * (1 + P * Q - 2 * Q)))

    def test_vp_noise_always_smaller(self):
        """Theorem 5 < Theorem 4 across budgets and domain sizes."""
        from repro.mechanisms.ue import oue_probabilities

        for eps in (0.5, 1.0, 2.0, 4.0):
            p, q = oue_probabilities(eps)
            for d in (2, 10, 100, 10_000):
                e_ldp, _ = ldp_invalid_noise(1000, d, p, q)
                e_vp, _ = vp_invalid_noise(1000, p, q)
                assert e_vp < e_ldp

    def test_rejects_bad_domain(self):
        with pytest.raises(DomainError):
            ldp_invalid_noise(10, 0, P, Q)


class TestCountMoments:
    def test_theorem6_expectation(self):
        e, _ = ldp_count_moments(n1=100, n2=800, m=100, d=10, p=P, q=Q)
        expected = 100 * P + 800 * Q + 100 * Q + 10 * (P - Q)
        assert e == pytest.approx(expected)

    def test_theorem7_expectation_is_bernoulli_sums(self):
        e, v = vp_count_moments(n1=100, n2=800, m=100, p=P, q=Q)
        probs = (P * (1 - Q), Q * (1 - Q), Q * (1 - P))
        counts = (100, 800, 100)
        assert e == pytest.approx(sum(n * pr for n, pr in zip(counts, probs)))
        assert v == pytest.approx(
            sum(n * pr * (1 - pr) for n, pr in zip(counts, probs))
        )

    def test_variance_gap_identity(self):
        """The closing identity of Section V-B equals Var_VP - Var_LDP
        and is negative."""
        n1, n2, m, d = 100, 800, 100, 10
        _, v_ldp = ldp_count_moments(n1, n2, m, d, P, Q)
        _, v_vp = vp_count_moments(n1, n2, m, P, Q)
        gap = vp_vs_ldp_variance_gap(n1, n2, m, d, P, Q)
        assert gap == pytest.approx(v_vp - v_ldp)
        assert gap < 0

    def test_gap_negative_across_regimes(self):
        from repro.mechanisms.ue import oue_probabilities

        for eps in (0.5, 1.0, 2.0, 4.0):
            p, q = oue_probabilities(eps)
            for m_frac in (0.1, 0.5, 0.9):
                n = 10_000
                m = int(n * m_frac)
                gap = vp_vs_ldp_variance_gap(n - m - 100, 100, m, 50, p, q)
                assert gap < 0


class TestCPProbabilities:
    def test_from_budgets(self):
        probs = CPProbabilities.from_budgets(1.0, 1.0, 4)
        assert 0 < probs.q1 < probs.p1 <= 1
        assert probs.p2 == 0.5

    def test_pass_probabilities_ordering(self):
        probs = CPProbabilities.from_budgets(1.0, 1.0, 4)
        # True cell passes more often than same-class noise, which passes
        # more often than other-class noise.
        assert probs.pass_true > probs.pass_same_class > probs.pass_other_class


class TestTable1:
    # The paper's printed Table I (c = 4, even split).
    PAPER_N = [213.8, 58.9, 22.8, 10.5, 5.4, 3.0, 1.8, 1.1]
    PAPER_BIG_N = [441.8, 53.3, 12.0, 3.6, 1.3, 0.5, 0.2, 0.1]
    PAPER_F = [87.4, 32.9, 17.1, 10.3, 6.8, 4.9, 3.7, 2.9]

    def test_n_column_matches_paper_exactly(self):
        rows = table1()
        assert np.allclose(np.round(rows["n"], 1), self.PAPER_N)

    def test_big_n_column_matches_paper_exactly(self):
        rows = table1()
        assert np.allclose(np.round(rows["N"], 1), self.PAPER_BIG_N)

    def test_f_column_matches_paper_within_15_percent(self):
        """The paper's printed f-coefficients deviate from Eq. (5)'s
        grouping by ~10% (see EXPERIMENTS.md); our closed form stays
        within 15% of the printed values at every ε."""
        rows = table1()
        ratio = rows["f(C,I)"] / np.asarray(self.PAPER_F)
        assert (np.abs(ratio - 1.0) < 0.15).all()

    def test_all_coefficients_decrease_in_epsilon(self):
        rows = table1()
        for key in ("f(C,I)", "n", "N"):
            values = rows[key]
            assert (np.diff(values) < 0).all()

    def test_coefficients_positive(self):
        for eps in TABLE1_EPSILONS:
            assert all(c > 0 for c in table1_coefficients(eps))


class TestTheorem8And10:
    def test_cp_variance_linear_in_n(self):
        """Section V-C: Var is affine-increasing in the class amount n
        with f and N fixed (the Fig. 5b effect)."""
        base = dict(f=1e4, n_total=4e6, p1=0.6, q1=0.2, p2=0.5, q2=0.2)
        grid = (5e5, 1e6, 1.5e6, 2e6)
        variances = [cp_estimate_variance(n=n, **base) for n in grid]
        assert variances == sorted(variances)
        increments = np.diff(variances)
        # Equal n steps give equal variance steps (affine dependence).
        assert np.allclose(increments, increments[0], rtol=1e-6)

    def test_cp_variance_insensitive_to_f(self):
        """Section V-C: with f(C,I) << n, N (the realistic regime), the
        f coefficient cannot offset n and N — variance barely moves."""
        base = dict(n=2e6, n_total=4e6, p1=0.6, q1=0.2, p2=0.5, q2=0.2)
        lo = cp_estimate_variance(f=1e2, **base)
        hi = cp_estimate_variance(f=1e4, **base)
        assert hi == pytest.approx(lo, rel=0.05)

    def test_theorem10_gap_positive(self):
        """CP strictly beats GRR+OUE on the pair estimate."""
        from repro.mechanisms.grr import grr_probabilities
        from repro.mechanisms.ue import oue_probabilities

        for eps in (0.5, 1.0, 2.0, 4.0):
            p1, q1 = grr_probabilities(eps / 2, 4)
            p2, q2 = oue_probabilities(eps / 2)
            gap = theorem10_gap_lower_bound(
                f=1e3, n=1e5, n_total=1e6, f_item=5e3, p1=p1, q1=q1, p2=p2, q2=q2
            )
            assert gap > 0

    def test_pts_variance_exceeds_cp_variance(self):
        """The actual variance difference respects the Theorem 10 bound's
        sign: Var_PTS > Var_CP in every tested regime."""
        from repro.mechanisms.grr import grr_probabilities
        from repro.mechanisms.ue import oue_probabilities

        for eps in (0.5, 1.0, 2.0, 4.0):
            p1, q1 = grr_probabilities(eps / 2, 4)
            p2, q2 = oue_probabilities(eps / 2)
            args = dict(f=1e3, n=1e5, n_total=1e6, p1=p1, q1=q1, p2=p2, q2=q2)
            v_pts = pts_estimate_variance(f_item=5e3, **args)
            v_cp = cp_estimate_variance(**args)
            assert v_pts > v_cp


class TestVarianceMatrices:
    """Vectorised plug-in variance bounds behind estimate_variance()."""

    def test_ldp_matrix_matches_the_closed_form(self):
        from repro.core.variance import ldp_variance_matrix

        est = np.array([[100.0, 0.0], [250.0, 50.0]])
        out = ldp_variance_matrix(est, n_total=1000.0, p=P, q=Q)
        expected = (est * P * (1 - P) + (1000.0 - est) * Q * (1 - Q)) / (P - Q) ** 2
        np.testing.assert_allclose(out, expected)

    def test_ldp_matrix_clips_out_of_range_plug_ins(self):
        from repro.core.variance import ldp_variance_matrix

        # Calibration noise can push cells below 0 or above N; the
        # plug-in must clip so the variance stays a valid (positive)
        # binomial bound.
        est = np.array([[-40.0, 2000.0]])
        out = ldp_variance_matrix(est, n_total=1000.0, p=P, q=Q)
        assert (out > 0).all()
        np.testing.assert_allclose(
            out,
            ldp_variance_matrix(
                np.array([[0.0, 1000.0]]), n_total=1000.0, p=P, q=Q
            ),
        )

    def test_hec_matrix_scales_with_group_rescaling(self):
        from repro.core.variance import hec_variance_matrix

        est = np.full((2, 3), 50.0)
        sizes = np.array([800.0, 200.0])
        out = hec_variance_matrix(est, sizes, n_total=1000.0, p=P, q=Q)
        assert out.shape == (2, 3)
        # The smaller group's N/n_g rescaling amplifies its noise.
        assert (out[1] > out[0]).all()

    def test_hec_matrix_rejects_empty_groups(self):
        from repro.core.variance import hec_variance_matrix

        with pytest.raises(DomainError):
            hec_variance_matrix(
                np.ones((2, 2)), np.array([10.0, 0.0]),
                n_total=10.0, p=P, q=Q,
            )

    def test_pts_matrix_matches_scalar_cells(self):
        from repro.core.variance import pts_variance_matrix
        from repro.mechanisms.grr import grr_probabilities
        from repro.mechanisms.ue import oue_probabilities

        p1, q1 = grr_probabilities(1.0, 3)
        p2, q2 = oue_probabilities(1.0)
        est = np.array([[400.0, 100.0], [50.0, 250.0], [10.0, 90.0]])
        sizes = est.sum(axis=1)
        out = pts_variance_matrix(
            est, sizes, n_total=float(est.sum()),
            p1=p1, q1=q1, p2=p2, q2=q2,
        )
        f_item = est.sum(axis=0)
        for c in range(3):
            for i in range(2):
                expected = pts_estimate_variance(
                    f=est[c, i], n=sizes[c], n_total=float(est.sum()),
                    f_item=f_item[i], p1=p1, q1=q1, p2=p2, q2=q2,
                )
                assert out[c, i] == pytest.approx(expected)

    def test_cp_matrix_matches_scalar_cells(self):
        from repro.core.variance import cp_variance_matrix
        from repro.mechanisms.grr import grr_probabilities
        from repro.mechanisms.ue import oue_probabilities

        p1, q1 = grr_probabilities(1.0, 3)
        p2, q2 = oue_probabilities(1.0)
        est = np.array([[400.0, 100.0], [50.0, 250.0], [10.0, 90.0]])
        sizes = est.sum(axis=1)
        out = cp_variance_matrix(
            est, sizes, n_total=float(est.sum()),
            p1=p1, q1=q1, p2=p2, q2=q2,
        )
        for c in range(3):
            for i in range(2):
                expected = cp_estimate_variance(
                    f=est[c, i], n=sizes[c], n_total=float(est.sum()),
                    p1=p1, q1=q1, p2=p2, q2=q2,
                )
                assert out[c, i] == pytest.approx(expected)

    @pytest.mark.parametrize("framework", ["ptj", "pts", "pts-cp"])
    def test_session_variance_bound_covers_observed_error(self, framework):
        """End-to-end sanity: across repeated runs the realised squared
        error of each cell stays within a few multiples of the session's
        own variance bound (it is a bound evaluated at a plug-in, not an
        exact moment)."""
        from repro.stream import make_session

        rng = np.random.default_rng(7)
        c, d, n = 2, 8, 20_000
        truth = rng.dirichlet(np.ones(c * d)) * n
        labels, items = np.divmod(
            rng.choice(c * d, size=n, p=truth / truth.sum()), d
        )
        errors, bounds = [], []
        for run in range(5):
            session = make_session(
                framework, epsilon=2.0, n_classes=c, n_items=d,
                mode="simulate", rng=np.random.default_rng(100 + run),
            )
            session.ingest_batch((labels, items))
            err = (session.estimate() - truth.reshape(c, d)) ** 2
            errors.append(err)
            bounds.append(session.estimate_variance())
        mean_err = np.mean(errors, axis=0)
        bound = np.mean(bounds, axis=0)
        assert (bound > 0).all()
        # Mean squared error within 8x the bound per cell (loose: 5 runs).
        assert (mean_err <= 8.0 * bound + 1e-9).all()
