"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import calibrate_cp, calibrate_ptj, calibrate_pts
from repro.core.topk import assign_buckets, bits_needed, extend_prefixes, top_indices
from repro.core.variance import cp_estimate_variance, vp_vs_ldp_variance_gap
from repro.mechanisms import (
    GeneralizedRandomResponse,
    OptimizedUnaryEncoding,
    ValidityPerturbation,
    split_budget,
    ue_epsilon,
)
from repro.mechanisms.grr import grr_probabilities
from repro.mechanisms.ue import oue_probabilities

EPSILONS = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
DOMAINS = st.integers(min_value=2, max_value=200)


class TestMechanismProperties:
    @given(eps=EPSILONS, d=DOMAINS)
    @settings(max_examples=60, deadline=None)
    def test_grr_probabilities_are_valid(self, eps, d):
        p, q = grr_probabilities(eps, d)
        assert 0 < q < p <= 1
        assert p + (d - 1) * q == float_close(1.0)
        assert p / q == float_close(math.exp(eps), rel=1e-9)

    @given(eps=EPSILONS)
    @settings(max_examples=60, deadline=None)
    def test_oue_satisfies_configured_epsilon(self, eps):
        p, q = oue_probabilities(eps)
        assert ue_epsilon(p, q) == float_close(eps, rel=1e-9)

    @given(eps=EPSILONS, d=DOMAINS, value=st.integers(min_value=0, max_value=199))
    @settings(max_examples=40, deadline=None)
    def test_grr_report_stays_in_domain(self, eps, d, value):
        value = value % d
        mech = GeneralizedRandomResponse(eps, d, rng=np.random.default_rng(0))
        assert 0 <= mech.privatize(value) < d

    @given(eps=EPSILONS, d=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_oue_report_is_bits(self, eps, d):
        mech = OptimizedUnaryEncoding(eps, d, rng=np.random.default_rng(1))
        report = mech.privatize(d - 1)
        assert report.shape == (d,)
        assert set(np.unique(report)) <= {0, 1}

    @given(
        eps=EPSILONS,
        counts=st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=20),
        m=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_vp_simulate_support_bounds(self, eps, counts, m):
        counts = np.asarray(counts, dtype=np.int64)
        mech = ValidityPerturbation(eps, counts.size, rng=np.random.default_rng(2))
        support = mech.simulate_support(counts, n_invalid=m)
        n = counts.sum() + m
        assert support.shape == (counts.size + 1,)
        assert (support >= 0).all()
        assert (support <= n).all()

    @given(eps=EPSILONS, fraction=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_budget_split_sums(self, eps, fraction):
        e1, e2 = split_budget(eps, fraction)
        assert e1 > 0 and e2 > 0
        assert e1 + e2 == float_close(eps, rel=1e-9)


class TestCalibrationProperties:
    @given(
        eps=EPSILONS,
        c=st.integers(min_value=2, max_value=6),
        d=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cp_calibration_inverts_expectation(self, eps, c, d, seed):
        """Eq. (4) is the exact inverse of the CP expectation model for
        arbitrary pair-count matrices."""
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 1000, size=(c, d)).astype(np.float64)
        p1, q1 = grr_probabilities(eps / 2, c)
        p2, q2 = oue_probabilities(eps / 2)
        n_total = truth.sum()
        sizes = truth.sum(axis=1)
        support = (
            truth * p1 * (1 - q2) * p2
            + (sizes[:, None] - truth) * p1 * (1 - q2) * q2
            + (n_total - sizes)[:, None] * q1 * (1 - p2) * q2
        )
        labels = sizes * p1 + (n_total - sizes) * q1
        estimate = calibrate_cp(support, labels, int(n_total), p1, q1, p2, q2)
        assert np.allclose(estimate, truth, atol=1e-6)

    @given(
        eps=EPSILONS,
        c=st.integers(min_value=2, max_value=6),
        d=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_pts_calibration_inverts_expectation(self, eps, c, d, seed):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 1000, size=(c, d)).astype(np.float64)
        p1, q1 = grr_probabilities(eps / 2, c)
        p2, q2 = oue_probabilities(eps / 2)
        n_total = truth.sum()
        sizes = truth.sum(axis=1)
        item_totals = truth.sum(axis=0)
        support = (
            truth * (p1 - q1) * (p2 - q2)
            + sizes[:, None] * q2 * (p1 - q1)
            + item_totals[None, :] * q1 * (p2 - q2)
            + n_total * q1 * q2
        )
        labels = sizes * p1 + (n_total - sizes) * q1
        estimate = calibrate_pts(support, labels, int(n_total), p1, q1, p2, q2)
        assert np.allclose(estimate, truth, atol=1e-6)

    @given(
        p=st.floats(min_value=0.11, max_value=0.99),
        q_fraction=st.floats(min_value=0.01, max_value=0.9),
        c=st.integers(min_value=2, max_value=8),
        d=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_ptj_calibration_inverts_expectation(self, p, q_fraction, c, d, seed):
        q = p * q_fraction
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 100, size=c * d).astype(np.float64)
        n = truth.sum()
        support = truth * p + (n - truth) * q
        estimate = calibrate_ptj(support, int(n), p, q, c)
        assert np.allclose(estimate.ravel(), truth, atol=1e-6)


class TestTheoryProperties:
    @given(
        eps=EPSILONS,
        n1=st.integers(min_value=0, max_value=10_000),
        n2=st.integers(min_value=0, max_value=10_000),
        m=st.integers(min_value=1, max_value=10_000),
        d=st.integers(min_value=2, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_vp_variance_gap_always_negative(self, eps, n1, n2, m, d):
        """Section V-B: the VP-vs-LDP gap is negative in every regime."""
        p, q = oue_probabilities(eps)
        assert vp_vs_ldp_variance_gap(n1, n2, m, d, p, q) < 0

    @given(
        eps=EPSILONS,
        f=st.floats(min_value=0, max_value=1e4),
        n_extra=st.floats(min_value=0, max_value=1e6),
        big_extra=st.floats(min_value=0, max_value=1e6),
        c=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_cp_variance_positive(self, eps, f, n_extra, big_extra, c):
        n = f + n_extra
        n_total = n + big_extra
        p1, q1 = grr_probabilities(eps / 2, c)
        p2, q2 = oue_probabilities(eps / 2)
        assert cp_estimate_variance(f, n, n_total, p1, q1, p2, q2) >= 0


class TestTopkProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        buckets=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_buckets_partition_candidates(self, n, buckets, seed):
        assignment = assign_buckets(np.arange(n), buckets, seed)
        sizes = assignment.bucket_sizes()
        assert sizes.sum() == n
        assert sizes.max() - sizes.min() <= 1

    @given(
        values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100),
        k=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_indices_sorted_by_value(self, values, k):
        support = np.asarray(values)
        out = top_indices(support, k)
        assert out.size == min(k, support.size)
        picked = support[out]
        assert (np.diff(picked) <= 0).all()
        if out.size < support.size:
            rest = np.delete(support, out)
            assert picked.min() >= rest.max()

    @given(
        prefixes=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16, unique=True),
        bits=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_extend_prefixes_count_and_uniqueness(self, prefixes, bits):
        out = extend_prefixes(np.asarray(prefixes), bits)
        assert out.size == len(prefixes) << bits
        assert np.unique(out).size == out.size

    @given(d=st.integers(min_value=1, max_value=1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_bits_needed_bounds(self, d):
        bits = bits_needed(d)
        assert (1 << bits) >= d
        assert bits == 1 or (1 << (bits - 1)) < d


def float_close(value: float, rel: float = 1e-12):
    """Tiny pytest.approx stand-in usable inside hypothesis asserts."""
    import pytest

    return pytest.approx(value, rel=rel)
