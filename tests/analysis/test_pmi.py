"""Pointwise mutual information."""

import numpy as np
import pytest

from repro.analysis import pmi, pmi_matrix
from repro.exceptions import DomainError


class TestPMIMatrix:
    def test_independent_gives_zero(self):
        # Independent joint: counts = outer product of marginals.
        counts = np.outer([2, 3], [1, 4]) * 10
        matrix = pmi_matrix(counts)
        assert np.allclose(matrix, 0.0)

    def test_perfect_correlation_positive(self):
        counts = np.asarray([[100, 0], [0, 100]])
        matrix = pmi_matrix(counts)
        assert matrix[0, 0] == pytest.approx(1.0)  # log2(0.5/(0.5*0.5))
        assert matrix[0, 1] == -np.inf

    def test_monotone_in_pair_count_with_fixed_marginals(self):
        """PMI ∝ f(C, I) when marginals are fixed (Section V-C)."""
        weak = np.asarray([[10, 90], [90, 810]])   # independent
        strong = np.asarray([[40, 60], [60, 840]])  # same marginals, corr.
        assert pmi(strong, 0, 0) > pmi(weak, 0, 0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(DomainError):
            pmi_matrix(np.ones(4))
        with pytest.raises(DomainError):
            pmi_matrix(np.zeros((2, 2)))

    def test_single_cell_lookup_validates(self):
        counts = np.ones((2, 2))
        with pytest.raises(DomainError):
            pmi(counts, 2, 0)
        with pytest.raises(DomainError):
            pmi(counts, 0, 5)
